//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning the zone, trace, and simulation layers.

use ldplayer::trace::{capture, stream, Direction, Protocol, TraceRecord};
use ldplayer::wire::{Message, Name, RrType};
use ldplayer::zone::{master, LookupOutcome, Zone};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('x'), Just('3')],
        1..8,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..4)
        .prop_map(|labels| Name::parse(&labels.join(".")).expect("generated labels are valid"))
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        any::<u32>(),
        any::<[u8; 4]>(),
        1024u16..65535,
        arb_name(),
        prop_oneof![Just(RrType::A), Just(RrType::Aaaa), Just(RrType::Ns)],
        prop_oneof![
            Just(Protocol::Udp),
            Just(Protocol::Tcp),
            Just(Protocol::Tls)
        ],
    )
        .prop_map(|(t, ip, port, qname, qtype, protocol)| {
            let mut rec =
                TraceRecord::udp_query(t as u64, std::net::IpAddr::from(ip), port, qname, qtype);
            rec.protocol = protocol;
            rec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any trace survives capture-format round-trips byte-exactly.
    #[test]
    fn capture_roundtrip(records in proptest::collection::vec(arb_record(), 0..40)) {
        let bytes = capture::to_bytes(&records).unwrap();
        let back = capture::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, records);
    }

    /// Any trace survives stream-format round-trips (modulo the dropped
    /// destination, which the format intentionally omits).
    #[test]
    fn stream_roundtrip(records in proptest::collection::vec(arb_record(), 0..40)) {
        let bytes = stream::to_bytes(&records).unwrap();
        let back = stream::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), records.len());
        for (b, r) in back.iter().zip(&records) {
            prop_assert_eq!(b.time_us, r.time_us);
            prop_assert_eq!(b.src, r.src);
            prop_assert_eq!(b.src_port, r.src_port);
            prop_assert_eq!(b.protocol, r.protocol);
            prop_assert_eq!(&b.message, &r.message);
            prop_assert_eq!(b.direction, Direction::Query);
        }
    }

    /// A zone built from arbitrary A records answers every inserted name
    /// and NXDOMAINs everything else; master-file round-trips preserve it.
    #[test]
    fn zone_lookup_total(names in proptest::collection::vec(arb_name(), 1..20)) {
        let origin = Name::parse("test").unwrap();
        let mut zone = Zone::with_fake_soa(origin.clone());
        let mut inserted = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let full = name.concat(&origin).unwrap();
            let rec = ldplayer::wire::Record::new(
                full.clone(),
                60,
                ldplayer::wire::RData::A(std::net::Ipv4Addr::from(i as u32 + 1)),
            );
            if zone.add(rec).is_ok() {
                inserted.push(full);
            }
        }
        for name in &inserted {
            match zone.lookup(name, RrType::A, false) {
                LookupOutcome::Answer { records, .. } => prop_assert!(!records.is_empty()),
                other => prop_assert!(false, "expected answer for {name}, got {other:?}"),
            }
        }
        // Round-trip through master format preserves every lookup.
        let text = master::serialize_zone(&zone);
        let zone2 = master::parse_zone(&origin, &text).unwrap();
        for name in &inserted {
            // prop_assert! stringifies its expression into a format string,
            // so `{ .. }` patterns must live outside the macro call.
            let answered = matches!(
                zone2.lookup(name, RrType::A, false),
                LookupOutcome::Answer { .. }
            );
            prop_assert!(answered, "lookup lost after master round-trip");
        }
        // A name disjoint from everything inserted is NXDOMAIN.
        let absent = Name::parse("zz-definitely-absent.test").unwrap();
        if !inserted.iter().any(|n| absent.is_subdomain_of(n) || n.is_subdomain_of(&absent)) {
            let nx = matches!(
                zone.lookup(&absent, RrType::A, false),
                LookupOutcome::NxDomain { .. }
            );
            prop_assert!(nx, "absent name must be NXDOMAIN");
        }
    }

    /// Wire messages embedded in trace records always re-encode (no
    /// panics, no size explosions beyond the 64 KiB cap).
    #[test]
    fn trace_messages_reencode(records in proptest::collection::vec(arb_record(), 1..20)) {
        for rec in &records {
            let bytes = rec.message.to_bytes().unwrap();
            prop_assert!(bytes.len() <= u16::MAX as usize);
            let decoded = Message::from_bytes(&bytes).unwrap();
            prop_assert_eq!(&decoded, &rec.message);
        }
    }
}

/// Simulation determinism as a property: any small trace replayed twice
/// gives identical outcomes (seeded loss included).
#[test]
fn sim_determinism_with_loss() {
    use ldplayer::netsim::loss::{LossModel, LossScope};
    use ldplayer::netsim::{Sim, SimDuration, SimTime, TcpConfig};
    use ldplayer::replay::simclient::SimQuerier;
    use ldplayer::server::resource::ResourceModel;
    use ldplayer::server::sim::AuthServerNode;
    use std::sync::Arc;

    let run = || {
        let trace = ldplayer::workload::BRootConfig {
            duration_s: 2.0,
            mean_rate_qps: 200.0,
            clients: 50,
            seed: 12,
            ..Default::default()
        }
        .generate();
        let mut zones = ldplayer::zone::ZoneSet::new();
        zones.insert(ldplayer::workload::zones::synthetic_root_zone(10));
        let engine = Arc::new(ldplayer::server::auth::AuthEngine::with_zones(Arc::new(
            zones,
        )));
        let mut sim = Sim::new();
        sim.set_loss(LossModel::random(0.1, LossScope::UdpOnly, 99));
        let q = sim.add_node(Box::new(SimQuerier::new(
            "10.0.0.1".parse().unwrap(),
            "192.0.2.53".parse().unwrap(),
            TcpConfig::default(),
            trace,
        )));
        let s = sim.add_node(Box::new(AuthServerNode::new(
            "192.0.2.53".parse().unwrap(),
            engine,
            TcpConfig::default(),
            ResourceModel::default(),
        )));
        sim.bind("10.0.0.1".parse().unwrap(), q);
        sim.bind("192.0.2.53".parse().unwrap(), s);
        sim.set_pair_delay(q, s, SimDuration::from_millis(3));
        sim.run_until(SimTime::from_secs(10));
        sim.node_as::<SimQuerier>(q).unwrap().outcomes.clone()
    };
    assert_eq!(run(), run());
}
