//! Cross-crate integration tests: the full LDplayer loops the paper's
//! sections describe, exercised through the public `ldplayer` facade.

use ldplayer::metrics::Summary;
use ldplayer::trace::{mutate, Mutation, Protocol, QueryMutator};
use ldplayer::workload::BRootConfig;
use ldplayer::SimExperiment;

fn small_cfg() -> BRootConfig {
    BRootConfig {
        duration_s: 5.0,
        mean_rate_qps: 400.0,
        clients: 500,
        seed: 3,
        ..BRootConfig::default()
    }
}

#[test]
fn replay_is_deterministic_across_runs() {
    // The §2.1 repeatability requirement, end to end: identical
    // trace + config ⇒ identical per-query outcomes and samples.
    let run = || {
        SimExperiment::root_server(small_cfg().generate())
            .rtt_ms(10)
            .tcp_idle_timeout_s(20)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.response_bytes, b.response_bytes);
}

#[test]
fn udp_tcp_tls_resource_ordering() {
    // §5.2's core ordering: memory(UDP) < memory(TCP) < memory(TLS),
    // and every variant still answers everything.
    let run = |m: Option<fn(u64) -> QueryMutator>| {
        let mut trace = small_cfg().generate();
        if let Some(f) = m {
            f(9).apply_all(&mut trace);
        }
        SimExperiment::root_server(trace)
            .rtt_ms(10)
            .tcp_idle_timeout_s(20)
            .run()
    };
    let udp = run(Some(|s| {
        QueryMutator::new(s).push(Mutation::SetProtocol(Protocol::Udp))
    }));
    let tcp = run(Some(mutate::all_tcp));
    let tls = run(Some(mutate::all_tls));
    for (label, r) in [("udp", &udp), ("tcp", &tcp), ("tls", &tls)] {
        assert!(
            r.answer_rate() > 0.99,
            "{label} answer rate {}",
            r.answer_rate()
        );
    }
    assert!(udp.final_memory_gb() < tcp.final_memory_gb());
    assert!(tcp.final_memory_gb() < tls.final_memory_gb());
    assert_eq!(udp.usage.tcp_handshakes, 0);
    assert!(tls.usage.tls_handshakes > 0);
}

#[test]
fn dnssec_mutation_grows_traffic() {
    // §5.1 end to end: same workload, signed zone, DO share 0 → 1 grows
    // response bytes substantially.
    use ldplayer::zone::dnssec::SigningConfig;
    let base = small_cfg();
    let run = |do_fraction: f64| {
        let mut trace = base.generate();
        QueryMutator::new(4)
            .push(Mutation::ClearDoBit)
            .push(Mutation::SetDoBit {
                fraction: do_fraction,
            })
            .apply_all(&mut trace);
        SimExperiment::signed_root(trace, SigningConfig::zsk2048())
            .rtt_ms(1)
            .run()
    };
    let plain = run(0.0);
    let signed = run(1.0);
    assert!(plain.answer_rate() > 0.99 && signed.answer_rate() > 0.99);
    let growth = signed.response_bytes as f64 / plain.response_bytes as f64;
    assert!(
        growth > 1.5,
        "all-DO traffic should far exceed no-DO: growth {growth}"
    );
}

#[test]
fn latency_scales_with_rtt_for_udp() {
    let run = |rtt: u64| {
        let mut trace = small_cfg().generate();
        QueryMutator::new(1)
            .push(Mutation::SetProtocol(Protocol::Udp))
            .apply_all(&mut trace);
        let result = SimExperiment::root_server(trace).rtt_ms(rtt).run();
        Summary::compute(&result.latencies_ms()).unwrap().median
    };
    assert_eq!(run(10), 10.0);
    assert_eq!(run(80), 80.0);
}

#[test]
fn timeout_sweep_changes_connection_footprint() {
    // Figure 13's mechanism at test scale: larger idle timeout ⇒ more
    // established connections at end of run.
    let run = |timeout: u64| {
        let mut trace = BRootConfig {
            duration_s: 100.0,
            mean_rate_qps: 100.0,
            clients: 3_000,
            seed: 5,
            ..BRootConfig::default()
        }
        .generate();
        mutate::all_tcp(2).apply_all(&mut trace);
        SimExperiment::root_server(trace)
            .rtt_ms(1)
            .tcp_idle_timeout_s(timeout)
            .run()
    };
    let short = run(5);
    let long = run(40);
    assert!(
        long.final_tcp.established > short.final_tcp.established,
        "40s: {} !> 5s: {}",
        long.final_tcp.established,
        short.final_tcp.established
    );
    assert!(short.final_tcp.idle_closed > long.final_tcp.idle_closed);
}

#[test]
fn trace_survives_all_three_formats_then_replays() {
    // §2.5 pipeline integrity: capture → text → stream, then replay the
    // stream and answer everything.
    use ldplayer::trace::{capture, stream, text};
    let records = small_cfg().generate();
    let captured = capture::from_bytes(&capture::to_bytes(&records).unwrap()).unwrap();
    assert_eq!(captured, records);

    let mut text_bytes = Vec::new();
    text::write_text(&mut text_bytes, &captured).unwrap();
    let reparsed = text::read_text(std::io::Cursor::new(text_bytes)).unwrap();
    assert_eq!(reparsed.len(), records.len());

    let streamed = stream::from_bytes(&stream::to_bytes(&reparsed).unwrap()).unwrap();
    let result = SimExperiment::root_server(streamed).rtt_ms(5).run();
    assert!(result.answer_rate() > 0.99, "rate {}", result.answer_rate());
}

#[test]
fn zonegen_round_trip_through_master_files() {
    // §2.3: zones built from harvested traffic survive serialization to
    // master files and reload into an equivalent hierarchy.
    use ldplayer::server::auth::AuthEngine;
    use ldplayer::server::recursive::{ResolverConfig, ResolverCore, ResolverStep};
    use ldplayer::wire::{Message, Name, RrType};
    use ldplayer::zone::master;
    use ldplayer::zonegen::ZoneConstructor;

    // Harvest from the synthetic root hierarchy: ask for a few names.
    let mut zones = ldplayer::zone::ZoneSet::new();
    zones.insert(ldplayer::workload::zones::synthetic_root_zone(20));
    let internet = AuthEngine::with_zones(std::sync::Arc::new(zones));
    let root_addr: std::net::IpAddr = "198.41.0.4".parse().unwrap();

    let mut constructor = ZoneConstructor::new();
    let mut resolver = ResolverCore::new(vec![root_addr], ResolverConfig::default());
    for name in ["www.x.com", "a.b.net", "c.org"] {
        let q = Message::query(1, Name::parse(name).unwrap(), RrType::A);
        let mut steps = resolver.on_client_query("10.0.0.1:1".parse().unwrap(), &q, 0);
        for _ in 0..8 {
            match steps.pop() {
                Some(ResolverStep::Ask { server, message }) => {
                    let resp = internet.respond(server, &message, false);
                    constructor.ingest_response(server, &resp);
                    steps = resolver.on_upstream_response(&resp, 0);
                }
                _ => break,
            }
        }
    }
    // Root-NS probe (recover missing data).
    let probe = Message::query(2, Name::root(), RrType::Ns);
    constructor.ingest_response(root_addr, &internet.respond(root_addr, &probe, false));

    let built = constructor.build();
    assert!(built.stats.zones_built >= 1);
    for (file, text) in built.to_master_files() {
        let origin = if file == "root.zone" {
            Name::root()
        } else {
            Name::parse(&file.trim_end_matches(".zone").replace('_', ".")).unwrap()
        };
        let reparsed = master::parse_zone(&origin, &text).expect("master file reloads");
        assert!(reparsed.validate().is_ok(), "{file} invalid after reload");
    }
}

#[test]
fn failure_injection_udp_loss_reduces_answers_only() {
    // Packet loss on UDP must lower the answer rate without wedging the
    // experiment or panicking anything.
    use ldplayer::netsim::loss::{LossModel, LossScope};
    use ldplayer::netsim::{Sim, SimDuration, SimTime, TcpConfig};
    use ldplayer::replay::simclient::SimQuerier;
    use ldplayer::server::resource::ResourceModel;
    use ldplayer::server::sim::AuthServerNode;

    let mut trace = small_cfg().generate();
    QueryMutator::new(1)
        .push(Mutation::SetProtocol(Protocol::Udp))
        .apply_all(&mut trace);
    let n_queries = trace.len();

    let mut zones = ldplayer::zone::ZoneSet::new();
    zones.insert(ldplayer::workload::zones::synthetic_root_zone(50));
    let engine = std::sync::Arc::new(ldplayer::server::auth::AuthEngine::with_zones(
        std::sync::Arc::new(zones),
    ));

    let mut sim = Sim::new();
    sim.set_loss(LossModel::random(0.3, LossScope::UdpOnly, 7));
    let q = sim.add_node(Box::new(SimQuerier::new(
        "10.0.0.1".parse().unwrap(),
        "192.0.2.53".parse().unwrap(),
        TcpConfig::default(),
        trace,
    )));
    let s = sim.add_node(Box::new(AuthServerNode::new(
        "192.0.2.53".parse().unwrap(),
        engine,
        TcpConfig::default(),
        ResourceModel::default(),
    )));
    sim.bind("10.0.0.1".parse().unwrap(), q);
    sim.bind("192.0.2.53".parse().unwrap(), s);
    sim.set_pair_delay(q, s, SimDuration::from_millis(5));
    sim.run_until(SimTime::from_secs(30));

    let querier: &SimQuerier = sim.node_as(q).unwrap();
    assert_eq!(querier.outcomes.len(), n_queries, "every query attempted");
    let rate = querier.answer_rate();
    // 30% loss each way ⇒ ~49% answered.
    assert!(
        (0.35..0.65).contains(&rate),
        "expected ~49% answered under 30% bidirectional loss, got {rate}"
    );
    assert!(sim.dropped_packets > 0);
}
