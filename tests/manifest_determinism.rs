//! Manifest determinism, end to end: a fixed-seed simulated replay must
//! produce a byte-identical run manifest every time it is built, and the
//! artifact is written to `target/test-manifests/` so CI can double-run
//! the suite and diff the two copies to catch nondeterminism that unit
//! tests miss (iteration-order leaks, uninitialized stats, wall-clock
//! contamination).
//!
//! Manifests here must stay timestamp-free: no throughput series, no
//! wall-clock extras (see `ldp_obs::RunManifest` docs). The v2
//! `timeseries` section is exercised with sim-time samples (tick = sample
//! index), which are deterministic by construction — the same contract
//! the live sampler honors by indexing on ticks instead of wall clocks.

use std::collections::BTreeMap;

use ldp_obs::RunManifest;
use ldplayer::workload::BRootConfig;
use ldplayer::SimExperiment;
use serde::Serialize;

/// Seed for the simulated run; `LDP_SEED` overrides so CI can pin it
/// explicitly across double runs.
fn seed() -> u64 {
    std::env::var("LDP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn build_manifest() -> RunManifest {
    let cfg = BRootConfig {
        duration_s: 4.0,
        mean_rate_qps: 500.0,
        clients: 400,
        seed: seed(),
        ..BRootConfig::default()
    };
    let result = SimExperiment::root_server(cfg.generate())
        .rtt_ms(15)
        .grace_s(2)
        .run();
    assert!(
        result.latency_hist.count() > 0,
        "sim run must answer queries"
    );
    // Sim-time server samples as a v2 timeseries section: tick-indexed,
    // so the bytes depend only on the seed.
    let mut series: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
    for (i, s) in result.samples.iter().enumerate() {
        let tick = i as u64;
        series
            .entry("sim_server_established".to_string())
            .or_default()
            .push((tick, s.established as f64));
        series
            .entry("sim_server_response_mbps".to_string())
            .or_default()
            .push((tick, s.response_mbps));
    }
    let ticks = result.samples.len() as u64;
    RunManifest::new("sim_determinism")
        .seed(seed())
        .scale(1.0)
        .stage("latency", &result.latency_hist)
        .timeseries(ldp_telemetry::sampler::manifest_section(&series, ticks))
}

#[test]
fn fixed_seed_manifest_is_byte_identical() {
    let a = serde_json::to_string_pretty(&build_manifest().to_json_value()).expect("serializes");
    let b = serde_json::to_string_pretty(&build_manifest().to_json_value()).expect("serializes");
    assert_eq!(
        a, b,
        "two identical sim runs must serialize to identical manifests"
    );

    // Leave the artifact where CI's double-run step can diff it. The
    // write goes through RunManifest::write so the on-disk form is the
    // same one benches emit.
    let dir = std::path::Path::new("target/test-manifests");
    let path = build_manifest().write(dir, "sim").expect("manifest write");
    let on_disk = std::fs::read_to_string(&path).expect("manifest readable");
    assert_eq!(on_disk, a, "on-disk manifest matches the in-memory form");
}
