//! Integration tests for the live (real-socket) path: LiveServer +
//! LiveReplay over loopback, the §4 experimental setup in miniature.

use std::sync::Arc;

use ldplayer::replay::{LiveReplay, ReplayMode};
use ldplayer::server::auth::AuthEngine;
use ldplayer::server::live::LiveServer;
use ldplayer::trace::{Protocol, TraceRecord};
use ldplayer::wire::{Name, RrType};
use ldplayer::workload::zones::{synthetic_root_zone, wildcard_example_zone};
use ldplayer::workload::SyntheticConfig;
use ldplayer::zone::ZoneSet;

fn engine() -> Arc<AuthEngine> {
    let mut set = ZoneSet::new();
    set.insert(wildcard_example_zone());
    set.insert(synthetic_root_zone(20));
    Arc::new(AuthEngine::with_zones(Arc::new(set)))
}

#[tokio::test(flavor = "multi_thread")]
async fn timed_replay_preserves_interarrival_distribution() {
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    // syn-2 shape: 10 ms fixed gaps for 3 seconds.
    let trace = SyntheticConfig {
        interarrival_us: 10_000,
        duration_s: 3,
        clients: 30,
        domain: "example.com",
    }
    .generate();
    let original: Vec<f64> = trace
        .windows(2)
        .map(|w| (w[1].time_us - w[0].time_us) as f64 / 1e6)
        .collect();
    let report = LiveReplay::new(server.addr).run(trace).await.unwrap();
    assert_eq!(report.sent, 300);
    assert!(report.answered as f64 / report.sent as f64 > 0.97);

    // KS distance is meaningless against a point-mass original (any µs of
    // send jitter splits the CDF at the atom), so compare quantiles: the
    // replayed distribution must sit tightly around the 10 ms gap, the way
    // Figure 7's curves hug each other.
    let replayed = ldplayer::metrics::Cdf::new(&report.replayed_interarrivals_s());
    let orig_gap = original[0];
    for q in [0.1, 0.5, 0.9] {
        let v = replayed.quantile(q).unwrap();
        assert!(
            (v - orig_gap).abs() < 0.004,
            "quantile {q}: replayed {v}s vs original {orig_gap}s"
        );
    }

    // Figure 6's bound, generous for shared-core CI: quartile error < 5 ms.
    let errors = report.timing_errors_ms();
    let s = ldplayer::metrics::Summary::compute(&errors).unwrap();
    assert!(s.q1.abs() < 5.0 && s.q3.abs() < 5.0, "quartiles {s:?}");
}

#[tokio::test(flavor = "multi_thread")]
async fn speed_scaling_halves_wall_time() {
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let trace = SyntheticConfig {
        interarrival_us: 20_000,
        duration_s: 2,
        clients: 10,
        domain: "example.com",
    }
    .generate();
    let mut replay = LiveReplay::new(server.addr);
    replay.mode = ReplayMode::Timed { speed: 0.5 }; // double speed
    let t0 = std::time::Instant::now();
    let report = replay.run(trace).await.unwrap();
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(report.sent, 100);
    assert!(elapsed < 1.9, "2s trace at 2x speed took {elapsed}s");
}

#[tokio::test(flavor = "multi_thread")]
async fn mixed_udp_tcp_trace_over_loopback() {
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let mut trace: Vec<TraceRecord> = (0..200u64)
        .map(|i| {
            TraceRecord::udp_query(
                i * 1_000,
                format!("10.3.0.{}", 1 + i % 8).parse().unwrap(),
                (2000 + i) as u16,
                Name::parse(&format!("m{i}.example.com")).unwrap(),
                RrType::A,
            )
        })
        .collect();
    for (i, r) in trace.iter_mut().enumerate() {
        if i % 10 == 0 {
            r.protocol = Protocol::Tcp;
        }
    }
    let mut replay = LiveReplay::new(server.addr);
    replay.mode = ReplayMode::Fast;
    let report = replay.run(trace).await.unwrap();
    assert_eq!(report.sent, 200);
    assert!(report.answered >= 190, "answered {}", report.answered);
    let tcp_sent = report
        .outcomes
        .iter()
        .filter(|o| o.protocol == Protocol::Tcp)
        .count();
    assert_eq!(tcp_sent, 20);
    // Both transports answered.
    assert!(report
        .outcomes
        .iter()
        .any(|o| o.protocol == Protocol::Tcp && o.latency_us.is_some()));
    assert!(report
        .outcomes
        .iter()
        .any(|o| o.protocol == Protocol::Udp && o.latency_us.is_some()));
}

#[tokio::test(flavor = "multi_thread")]
async fn root_trace_replay_referrals_and_nxdomains() {
    // Replay root-style queries (referrals + NXDOMAIN junk) over UDP and
    // check the server served them all.
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let trace = ldplayer::workload::BRootConfig {
        duration_s: 2.0,
        mean_rate_qps: 300.0,
        clients: 100,
        seed: 8,
        tcp_fraction: 0.0,
        ..Default::default()
    }
    .generate();
    let n = trace.len() as u64;
    let mut replay = LiveReplay::new(server.addr);
    replay.mode = ReplayMode::Fast;
    let report = replay.run(trace).await.unwrap();
    assert_eq!(report.sent, n);
    assert!(
        report.answered as f64 / n as f64 > 0.97,
        "answered {}/{n}",
        report.answered
    );
    assert_eq!(
        server
            .stats
            .udp_queries
            .load(std::sync::atomic::Ordering::Relaxed),
        n
    );
}
