//! Offline stub of `serde`: serialization is modeled as conversion to a
//! JSON value tree (`serde::value::Value`, re-exported by the `serde_json`
//! stub). This collapses serde's Serializer abstraction to the single
//! backend this workspace uses (JSON) while keeping call sites —
//! `#[derive(Serialize)]`, `serde_json::to_string_pretty`, `json!` —
//! source-compatible.

pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// Types convertible to a JSON value tree.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Types reconstructible from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_json_value(value: Value) -> Result<Self, String>;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: Value) -> Result<Value, String> {
        Ok(value)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($t:ident/$i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_json_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (T0/0)
    (T0/0, T1/1)
    (T0/0, T1/1, T2/2)
    (T0/0, T1/1, T2/2, T3/3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_json_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
