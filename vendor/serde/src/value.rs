//! The JSON value model shared by the `serde` and `serde_json` stubs.
//! Objects preserve insertion order (a `Vec` of pairs, like serde_json's
//! `preserve_order` feature).

use std::fmt;

/// A JSON number: integer representations are kept exact so `u64`
/// microsecond timestamps survive serialization.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn from_i64(v: i64) -> Number {
        Number::I64(v)
    }

    pub fn from_u64(v: u64) -> Number {
        Number::U64(v)
    }

    pub fn from_f64(v: f64) -> Number {
        Number::F64(v)
    }

    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        })
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            Number::F64(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= 0.0 && v < 1.9e19 => Some(v as u64),
            Number::F64(_) => None,
        }
    }

    pub fn is_f64(&self) -> bool {
        matches!(self, Number::F64(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => {
                if v.fract() == 0.0 && v.abs() < 1e16 {
                    // Keep a ".0" so the value re-parses as a float.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no NaN/Inf; serde_json serializes them as null.
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.get_from(self)
    }
}

/// Indexing into arrays (`usize`) and objects (`&str`).
pub trait ValueIndex {
    fn get_from<'v>(&self, value: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for usize {
    fn get_from<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        match value {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

impl ValueIndex for &str {
    fn get_from<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        match value {
            Value::Object(o) => o.iter().find(|(k, _)| k == self).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl ValueIndex for String {
    fn get_from<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        self.as_str().get_from(value)
    }
}

const NULL: Value = Value::Null;

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;

    fn index(&self, index: I) -> &Value {
        index.get_from(self).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

#[doc(hidden)]
pub fn escape_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => {
                let mut out = String::new();
                escape_json_string(s, &mut out);
                f.write_str(&out)
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut key = String::new();
                    escape_json_string(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}
