//! Offline stub of `libc`: just enough for `getrusage` on Linux x86_64.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type time_t = i64;
pub type suseconds_t = i64;

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timeval {
    pub tv_sec: time_t,
    pub tv_usec: suseconds_t,
}

/// `struct rusage` from `<sys/resource.h>` (Linux x86_64 layout).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct rusage {
    pub ru_utime: timeval,
    pub ru_stime: timeval,
    pub ru_maxrss: c_long,
    pub ru_ixrss: c_long,
    pub ru_idrss: c_long,
    pub ru_isrss: c_long,
    pub ru_minflt: c_long,
    pub ru_majflt: c_long,
    pub ru_nswap: c_long,
    pub ru_inblock: c_long,
    pub ru_oublock: c_long,
    pub ru_msgsnd: c_long,
    pub ru_msgrcv: c_long,
    pub ru_nsignals: c_long,
    pub ru_nvcsw: c_long,
    pub ru_nivcsw: c_long,
}

pub const RUSAGE_SELF: c_int = 0;
pub const RUSAGE_CHILDREN: c_int = -1;

extern "C" {
    pub fn getrusage(who: c_int, usage: *mut rusage) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn getrusage_self_reports_nonzero_rss() {
        // SAFETY: getrusage with a zeroed out-param is the documented usage.
        let rss = unsafe {
            let mut usage: rusage = std::mem::zeroed();
            assert_eq!(getrusage(RUSAGE_SELF, &mut usage), 0);
            usage.ru_maxrss
        };
        assert!(rss > 0, "ru_maxrss should be positive, got {rss}");
    }
}
