//! Offline stub of `serde_derive`: `#[derive(Serialize)]` for non-generic
//! structs with named fields (the only shape this workspace derives).
//! Token-level parsing, no syn/quote.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error tokens"),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Find `struct <Name>`, then the brace group of fields.
    let struct_pos = tokens
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "struct"))
        .ok_or("derive(Serialize) stub supports structs only")?;
    let name = match tokens.get(struct_pos + 1) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected struct name".to_string()),
    };
    if matches!(tokens.get(struct_pos + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("derive(Serialize) stub does not support generics".to_string());
    }
    let fields_group = tokens[struct_pos..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g),
            _ => None,
        })
        .ok_or("derive(Serialize) stub supports named-field structs only")?;

    let fields = field_names(fields_group.stream())?;

    let mut pushes = String::new();
    for field in &fields {
        pushes.push_str(&format!(
            "entries.push(({:?}.to_string(), ::serde::Serialize::to_json_value(&self.{field})));\n",
            field
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{\n\
                 let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(entries)\n\
             }}\n\
         }}"
    );
    out.parse().map_err(|e| format!("derive expansion failed: {e:?}"))
}

/// Field names from a named-field body: the last ident before each
/// top-level `:` (skips visibility modifiers and `#[...]` attributes).
fn field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut current_idents: Vec<String> = Vec::new();
    let mut in_type = false;
    let mut pending_attr = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => pending_attr = true,
            TokenTree::Group(_) if pending_attr => pending_attr = false,
            TokenTree::Punct(p) if p.as_char() == ':' && !in_type => {
                let field = current_idents
                    .last()
                    .cloned()
                    .ok_or("field name expected before ':'")?;
                names.push(field);
                current_idents.clear();
                in_type = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth_is_zero(p) => {
                // Top-level comma: commas inside generic types live in
                // `<...>` which are *not* groups — track via in_type reset
                // below instead.
                in_type = false;
            }
            TokenTree::Ident(i) if !in_type => {
                let s = i.to_string();
                if s != "pub" {
                    current_idents.push(s);
                }
            }
            _ => {}
        }
    }
    Ok(names)
}

/// Commas inside `Vec<Vec<Value>>`-style types would confuse a naive
/// splitter — but those appear only while `in_type` is set, and we only
/// treat a comma as a separator to clear `in_type`. A comma inside angle
/// brackets also clears it, which is still correct: the next `:` at field
/// level re-enters type position only after a new field name ident, and
/// idents inside type position are ignored until then. The one pattern
/// this would misparse is an associated-type path segment containing
/// `ident :` right after a comma inside generics (e.g. `Fn(A) -> B`
/// bounds) — none of the derived structs use such types.
fn angle_depth_is_zero(_p: &proc_macro::Punct) -> bool {
    true
}
