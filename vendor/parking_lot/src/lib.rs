//! Offline stub of `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, backed by `std::sync`. A poisoned std lock (a writer
//! panicked) is treated as still-usable, matching parking_lot semantics.

use std::fmt;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
