//! Offline stub of `criterion`: same API shape, much simpler measurement —
//! a fixed warmup pass then a timed loop, reporting mean ns/iter to
//! stdout. No statistics, no HTML reports. Good enough to keep `cargo
//! bench` runnable and relative comparisons meaningful.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone, Copy, Default)]
pub enum BatchSize {
    #[default]
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Accepts `&str` or `BenchmarkId` wherever criterion does.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

pub struct Bencher {
    /// Nanoseconds per iteration, recorded by the last `iter*` call.
    ns_per_iter: f64,
}

const WARMUP_ITERS: u64 = 3;
const TARGET_TIME: Duration = Duration::from_millis(300);

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        // Size the timed loop from a single-iteration estimate.
        let probe = Instant::now();
        black_box(routine());
        let per_iter = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let probe_input = setup();
        let probe = Instant::now();
        black_box(routine(probe_input));
        let per_iter = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
        // Pre-build inputs so setup cost stays outside the timed region.
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| { routine(&mut input); }, size);
    }
}

fn run_one(full_name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { ns_per_iter: 0.0 };
    f(&mut bencher);
    let ns = bencher.ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  {:>10.0} elem/s", n as f64 / ns * 1e9)
        }
        _ => String::new(),
    };
    println!("bench: {full_name:<50} {ns:>12.1} ns/iter{rate}");
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.id, None, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
