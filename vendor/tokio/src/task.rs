//! Task spawning: every task is an OS thread (see crate docs).

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::mpsc as std_mpsc;
use std::task::{Context, Poll};

/// Error returned when a joined task panicked.
pub struct JoinError {
    panic: Box<dyn std::any::Any + Send + 'static>,
}

impl JoinError {
    pub fn is_panic(&self) -> bool {
        true
    }

    pub fn into_panic(self) -> Box<dyn std::any::Any + Send + 'static> {
        self.panic
    }
}

impl fmt::Debug for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JoinError::Panic({})", panic_message(&self.panic))
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task panicked: {}", panic_message(&self.panic))
    }
}

impl std::error::Error for JoinError {}

fn panic_message<'a>(payload: &'a Box<dyn std::any::Any + Send + 'static>) -> &'a str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Handle to a spawned task. Awaiting it blocks until the task finishes.
///
/// `abort` detaches the task instead of cancelling it (a thread blocked in
/// a syscall cannot be interrupted portably); the task dies with the
/// process. Do not await a handle after aborting it.
pub struct JoinHandle<T> {
    rx: std_mpsc::Receiver<std::thread::Result<T>>,
}

impl<T> JoinHandle<T> {
    pub fn abort(&self) {
        // Detach-only: see type docs.
    }

    pub fn is_finished(&self) -> bool {
        // Non-destructive check is not possible with a oneshot receiver;
        // report false ("still running") which is always safe for callers.
        false
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Blocking join: the awaiting task owns its thread.
        match self.rx.recv() {
            Ok(Ok(v)) => Poll::Ready(Ok(v)),
            Ok(Err(panic)) => Poll::Ready(Err(JoinError { panic })),
            Err(_) => {
                // Sender dropped without a result: the task thread was
                // killed mid-flight (process teardown). Surface as panic.
                Poll::Ready(Err(JoinError {
                    panic: Box::new("task disappeared"),
                }))
            }
        }
    }
}

/// Spawns `fut` on a dedicated thread driving it to completion.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let (tx, rx) = std_mpsc::sync_channel(1);
    std::thread::Builder::new()
        .name("tokio-stub-task".to_string())
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::exec::block_on(fut)
            }));
            let _ = tx.send(result);
        })
        .expect("spawn task thread");
    JoinHandle { rx }
}

/// Runs a blocking closure on a dedicated thread.
pub fn spawn_blocking<F, R>(f: F) -> JoinHandle<R>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let (tx, rx) = std_mpsc::sync_channel(1);
    std::thread::Builder::new()
        .name("tokio-stub-blocking".to_string())
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let _ = tx.send(result);
        })
        .expect("spawn blocking thread");
    JoinHandle { rx }
}

/// Cooperatively yields: wakes itself, reports `Pending` once, and also
/// yields the OS thread so sibling tasks pinned to the same core can run.
pub async fn yield_now() {
    struct YieldNow {
        yielded: bool,
    }

    impl Future for YieldNow {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                std::thread::yield_now();
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    YieldNow { yielded: false }.await
}
