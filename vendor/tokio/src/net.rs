//! Async-looking sockets over blocking std types (safe in the
//! thread-per-task model; see crate docs).

use std::io;
use std::net::SocketAddr;
use std::net::ToSocketAddrs;
use std::sync::Arc;

/// Test-only fault injection for the socket stubs: arm N transient
/// failures and the next N matching operations fail with a synthetic
/// error, then everything recovers. Process-global (the stubs have no
/// per-runtime state), so tests that arm faults must serialize against
/// other socket-creating tests. Disarmed (the default) costs one relaxed
/// atomic load per operation.
pub mod fault {
    use std::io;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static UDP_BIND_FAULTS: AtomicUsize = AtomicUsize::new(0);
    static TCP_CONNECT_FAULTS: AtomicUsize = AtomicUsize::new(0);

    /// Arms `n` transient failures for upcoming `UdpSocket::bind` calls.
    pub fn inject_udp_bind_failures(n: usize) {
        UDP_BIND_FAULTS.store(n, Ordering::SeqCst);
    }

    /// Arms `n` transient failures for upcoming `TcpStream::connect` calls.
    pub fn inject_tcp_connect_failures(n: usize) {
        TCP_CONNECT_FAULTS.store(n, Ordering::SeqCst);
    }

    /// Disarms all pending socket faults.
    pub fn clear() {
        UDP_BIND_FAULTS.store(0, Ordering::SeqCst);
        TCP_CONNECT_FAULTS.store(0, Ordering::SeqCst);
    }

    fn take(counter: &AtomicUsize) -> bool {
        if counter.load(Ordering::Relaxed) == 0 {
            return false;
        }
        counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }

    pub(crate) fn udp_bind_fault() -> Option<io::Error> {
        take(&UDP_BIND_FAULTS)
            .then(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "injected udp bind fault"))
    }

    pub(crate) fn tcp_connect_fault() -> Option<io::Error> {
        take(&TCP_CONNECT_FAULTS).then(|| {
            io::Error::new(io::ErrorKind::ConnectionRefused, "injected tcp connect fault")
        })
    }
}

/// UDP socket; `&self` methods are safe to share across tasks via `Arc`
/// exactly like real tokio (std sockets allow concurrent send/recv).
#[derive(Debug)]
pub struct UdpSocket {
    inner: std::net::UdpSocket,
}

impl UdpSocket {
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        if let Some(e) = fault::udp_bind_fault() {
            return Err(e);
        }
        let inner = std::net::UdpSocket::bind(addr)?;
        grow_udp_buffers(&inner);
        Ok(UdpSocket { inner })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub async fn send_to<A: ToSocketAddrs>(&self, buf: &[u8], target: A) -> io::Result<usize> {
        self.inner.send_to(buf, target)
    }

    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.inner.recv_from(buf)
    }

    pub async fn connect<A: ToSocketAddrs>(&self, addr: A) -> io::Result<()> {
        self.inner.connect(addr)
    }

    pub async fn send(&self, buf: &[u8]) -> io::Result<usize> {
        self.inner.send(buf)
    }

    pub async fn recv(&self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.recv(buf)
    }

    /// Sends each buffer as one datagram to `target`, batching up to
    /// [`mmsg::MAX_BATCH`] datagrams per `sendmmsg(2)` kernel entry on
    /// Linux (one `send_to` each elsewhere). Returns how many datagrams
    /// the kernel accepted; a short count means it refused the tail
    /// (e.g. buffer pressure) and the caller may retry the remainder.
    pub async fn send_many_to(&self, bufs: &[&[u8]], target: SocketAddr) -> io::Result<usize> {
        #[cfg(target_os = "linux")]
        {
            mmsg::send_many(&self.inner, bufs, Some(target))
        }
        #[cfg(not(target_os = "linux"))]
        {
            let mut sent = 0;
            for buf in bufs {
                self.inner.send_to(buf, target)?;
                sent += 1;
            }
            Ok(sent)
        }
    }

    /// Like [`UdpSocket::send_many_to`], but each datagram carries its own
    /// destination (a server answering a batch of distinct peers).
    pub async fn send_many_to_each(&self, msgs: &[(&[u8], SocketAddr)]) -> io::Result<usize> {
        #[cfg(target_os = "linux")]
        {
            mmsg::send_many_each(&self.inner, msgs)
        }
        #[cfg(not(target_os = "linux"))]
        {
            let mut sent = 0;
            for (buf, target) in msgs {
                self.inner.send_to(buf, *target)?;
                sent += 1;
            }
            Ok(sent)
        }
    }

    /// Receives up to `bufs.len()` datagrams with one `recvmmsg(2)` kernel
    /// entry on Linux: blocks until at least one arrives, then drains
    /// whatever else is already queued without further syscalls. Datagram
    /// `i` lands in `bufs[i]`; the return value gives `(length, peer)` per
    /// received datagram, in order. Falls back to a single `recv_from`
    /// elsewhere.
    pub async fn recv_many(&self, bufs: &mut [Vec<u8>]) -> io::Result<Vec<(usize, SocketAddr)>> {
        #[cfg(target_os = "linux")]
        {
            mmsg::recv_many(&self.inner, bufs)
        }
        #[cfg(not(target_os = "linux"))]
        {
            let Some(first) = bufs.first_mut() else {
                return Ok(Vec::new());
            };
            let (len, peer) = self.inner.recv_from(first)?;
            Ok(vec![(len, peer)])
        }
    }
}

/// Batched UDP syscalls (`sendmmsg`/`recvmmsg`): one kernel entry moves a
/// whole batch of datagrams, which is the difference between syscall-bound
/// and CPU-bound replay on a single core. Declared directly (like
/// `setsockopt` above) so the std-only build needs no libc crate.
#[cfg(target_os = "linux")]
mod mmsg {
    use std::io;
    use std::net::{SocketAddr, UdpSocket};
    use std::os::fd::AsRawFd;

    /// Datagrams per kernel entry (Linux caps msgvec at UIO_MAXIOV).
    pub const MAX_BATCH: usize = 1024;

    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    /// recvmmsg: block for the first datagram, then return what's queued.
    const MSG_WAITFORONE: i32 = 0x10000;

    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    /// glibc x86-64 `struct msghdr` layout; repr(C) reproduces the padding
    /// after `namelen` and `flags`.
    #[repr(C)]
    struct MsgHdr {
        name: *mut u8,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    extern "C" {
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut u8,
        ) -> i32;
    }

    /// Raw sockaddr storage: sized for sockaddr_in6, the larger of the two.
    const SOCKADDR_LEN: usize = 28;

    fn encode_sockaddr(target: SocketAddr) -> ([u8; SOCKADDR_LEN], u32) {
        let mut out = [0u8; SOCKADDR_LEN];
        match target {
            SocketAddr::V4(v4) => {
                out[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                out[2..4].copy_from_slice(&v4.port().to_be_bytes());
                out[4..8].copy_from_slice(&v4.ip().octets());
                (out, 16)
            }
            SocketAddr::V6(v6) => {
                out[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                out[2..4].copy_from_slice(&v6.port().to_be_bytes());
                out[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
                out[8..24].copy_from_slice(&v6.ip().octets());
                out[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                (out, 28)
            }
        }
    }

    fn decode_sockaddr(raw: &[u8; SOCKADDR_LEN]) -> Option<SocketAddr> {
        let family = u16::from_ne_bytes([raw[0], raw[1]]);
        let port = u16::from_be_bytes([raw[2], raw[3]]);
        if family == AF_INET {
            let ip: [u8; 4] = raw[4..8].try_into().ok()?;
            Some(SocketAddr::from((ip, port)))
        } else if family == AF_INET6 {
            let ip: [u8; 16] = raw[8..24].try_into().ok()?;
            Some(SocketAddr::from((ip, port)))
        } else {
            None
        }
    }

    pub fn send_many(socket: &UdpSocket, bufs: &[&[u8]], target: Option<SocketAddr>) -> io::Result<usize> {
        let (mut name, namelen) = match target {
            Some(t) => encode_sockaddr(t),
            None => ([0u8; SOCKADDR_LEN], 0),
        };
        let fd = socket.as_raw_fd();
        let mut sent = 0usize;
        for chunk in bufs.chunks(MAX_BATCH) {
            let mut iovs: Vec<IoVec> = chunk
                .iter()
                .map(|b| IoVec {
                    base: b.as_ptr() as *mut u8,
                    len: b.len(),
                })
                .collect();
            let mut msgs: Vec<MMsgHdr> = (0..iovs.len())
                .map(|i| MMsgHdr {
                    hdr: MsgHdr {
                        name: if namelen == 0 {
                            std::ptr::null_mut()
                        } else {
                            name.as_mut_ptr()
                        },
                        namelen,
                        iov: &mut iovs[i],
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                })
                .collect();
            // SAFETY: every pointer in msgvec (iovecs, buffers, the shared
            // sockaddr) outlives the call; vlen matches the vector length.
            let n = unsafe { sendmmsg(fd, msgs.as_mut_ptr(), msgs.len() as u32, 0) };
            if n < 0 {
                if sent > 0 {
                    return Ok(sent);
                }
                return Err(io::Error::last_os_error());
            }
            sent += n as usize;
            if (n as usize) < chunk.len() {
                return Ok(sent);
            }
        }
        Ok(sent)
    }

    pub fn send_many_each(socket: &UdpSocket, msgs_in: &[(&[u8], SocketAddr)]) -> io::Result<usize> {
        let fd = socket.as_raw_fd();
        let mut sent = 0usize;
        for chunk in msgs_in.chunks(MAX_BATCH) {
            let mut names: Vec<([u8; SOCKADDR_LEN], u32)> =
                chunk.iter().map(|(_, t)| encode_sockaddr(*t)).collect();
            let mut iovs: Vec<IoVec> = chunk
                .iter()
                .map(|(b, _)| IoVec {
                    base: b.as_ptr() as *mut u8,
                    len: b.len(),
                })
                .collect();
            let mut msgs: Vec<MMsgHdr> = (0..iovs.len())
                .map(|i| MMsgHdr {
                    hdr: MsgHdr {
                        name: names[i].0.as_mut_ptr(),
                        namelen: names[i].1,
                        iov: &mut iovs[i],
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                })
                .collect();
            // SAFETY: as in send_many; each message's sockaddr storage
            // lives in `names` for the duration of the call.
            let n = unsafe { sendmmsg(fd, msgs.as_mut_ptr(), msgs.len() as u32, 0) };
            if n < 0 {
                if sent > 0 {
                    return Ok(sent);
                }
                return Err(io::Error::last_os_error());
            }
            sent += n as usize;
            if (n as usize) < chunk.len() {
                return Ok(sent);
            }
        }
        Ok(sent)
    }

    pub fn recv_many(socket: &UdpSocket, bufs: &mut [Vec<u8>]) -> io::Result<Vec<(usize, SocketAddr)>> {
        if bufs.is_empty() {
            return Ok(Vec::new());
        }
        let count = bufs.len().min(MAX_BATCH);
        let fd = socket.as_raw_fd();
        let mut names: Vec<[u8; SOCKADDR_LEN]> = vec![[0u8; SOCKADDR_LEN]; count];
        let mut iovs: Vec<IoVec> = bufs[..count]
            .iter_mut()
            .map(|b| IoVec {
                base: b.as_mut_ptr(),
                len: b.len(),
            })
            .collect();
        let mut msgs: Vec<MMsgHdr> = (0..count)
            .map(|i| MMsgHdr {
                hdr: MsgHdr {
                    name: names[i].as_mut_ptr(),
                    namelen: SOCKADDR_LEN as u32,
                    iov: &mut iovs[i],
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            })
            .collect();
        // SAFETY: all buffers, iovecs and sockaddr slots outlive the call;
        // MSG_WAITFORONE blocks for the first datagram only.
        let n = unsafe {
            recvmmsg(
                fd,
                msgs.as_mut_ptr(),
                count as u32,
                MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        let mut out = Vec::with_capacity(n as usize);
        for i in 0..n as usize {
            let Some(peer) = decode_sockaddr(&names[i]) else {
                continue;
            };
            out.push((msgs[i].len as usize, peer));
        }
        Ok(out)
    }
}

/// Best-effort SO_RCVBUF/SO_SNDBUF bump. Real tokio drains sockets from an
/// epoll loop fast enough that default buffers suffice; this stub's
/// thread-per-task receivers can lag a burst of blocking sends, so give the
/// kernel room to absorb it. Failure is fine — the socket still works.
#[cfg(unix)]
fn grow_udp_buffers(socket: &std::net::UdpSocket) {
    use std::os::fd::AsRawFd;

    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    const SO_SNDBUF: i32 = 7;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }

    let size: i32 = 4 * 1024 * 1024;
    let ptr = &size as *const i32 as *const core::ffi::c_void;
    let len = std::mem::size_of::<i32>() as u32;
    let fd = socket.as_raw_fd();
    // SAFETY: fd is a live socket owned by `socket`; optval points at a
    // properly-sized i32 that outlives the call.
    unsafe {
        setsockopt(fd, SOL_SOCKET, SO_RCVBUF, ptr, len);
        setsockopt(fd, SOL_SOCKET, SO_SNDBUF, ptr, len);
    }
}

#[cfg(not(unix))]
fn grow_udp_buffers(_socket: &std::net::UdpSocket) {}

#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        Ok(TcpListener {
            inner: std::net::TcpListener::bind(addr)?,
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, peer) = self.inner.accept()?;
        Ok((TcpStream { inner: stream }, peer))
    }
}

#[derive(Debug)]
pub struct TcpStream {
    pub(crate) inner: std::net::TcpStream,
}

impl TcpStream {
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        if let Some(e) = fault::tcp_connect_fault() {
            return Err(e);
        }
        Ok(TcpStream {
            inner: std::net::TcpStream::connect(addr)?,
        })
    }

    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Splits into owned read/write halves (each a dup'd fd, as in tokio).
    pub fn into_split(self) -> (tcp::OwnedReadHalf, tcp::OwnedWriteHalf) {
        let stream = Arc::new(self.inner);
        (
            tcp::OwnedReadHalf {
                inner: stream.clone(),
            },
            tcp::OwnedWriteHalf { inner: stream },
        )
    }
}

pub mod tcp {
    use std::sync::Arc;

    #[derive(Debug)]
    pub struct OwnedReadHalf {
        pub(crate) inner: Arc<std::net::TcpStream>,
    }

    #[derive(Debug)]
    pub struct OwnedWriteHalf {
        pub(crate) inner: Arc<std::net::TcpStream>,
    }
}
