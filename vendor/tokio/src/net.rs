//! Async-looking sockets over blocking std types (safe in the
//! thread-per-task model; see crate docs).

use std::io;
use std::net::SocketAddr;
use std::net::ToSocketAddrs;
use std::sync::Arc;

/// UDP socket; `&self` methods are safe to share across tasks via `Arc`
/// exactly like real tokio (std sockets allow concurrent send/recv).
#[derive(Debug)]
pub struct UdpSocket {
    inner: std::net::UdpSocket,
}

impl UdpSocket {
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        let inner = std::net::UdpSocket::bind(addr)?;
        grow_udp_buffers(&inner);
        Ok(UdpSocket { inner })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub async fn send_to<A: ToSocketAddrs>(&self, buf: &[u8], target: A) -> io::Result<usize> {
        self.inner.send_to(buf, target)
    }

    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.inner.recv_from(buf)
    }

    pub async fn connect<A: ToSocketAddrs>(&self, addr: A) -> io::Result<()> {
        self.inner.connect(addr)
    }

    pub async fn send(&self, buf: &[u8]) -> io::Result<usize> {
        self.inner.send(buf)
    }

    pub async fn recv(&self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.recv(buf)
    }
}

/// Best-effort SO_RCVBUF/SO_SNDBUF bump. Real tokio drains sockets from an
/// epoll loop fast enough that default buffers suffice; this stub's
/// thread-per-task receivers can lag a burst of blocking sends, so give the
/// kernel room to absorb it. Failure is fine — the socket still works.
#[cfg(unix)]
fn grow_udp_buffers(socket: &std::net::UdpSocket) {
    use std::os::fd::AsRawFd;

    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    const SO_SNDBUF: i32 = 7;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }

    let size: i32 = 4 * 1024 * 1024;
    let ptr = &size as *const i32 as *const core::ffi::c_void;
    let len = std::mem::size_of::<i32>() as u32;
    let fd = socket.as_raw_fd();
    // SAFETY: fd is a live socket owned by `socket`; optval points at a
    // properly-sized i32 that outlives the call.
    unsafe {
        setsockopt(fd, SOL_SOCKET, SO_RCVBUF, ptr, len);
        setsockopt(fd, SOL_SOCKET, SO_SNDBUF, ptr, len);
    }
}

#[cfg(not(unix))]
fn grow_udp_buffers(_socket: &std::net::UdpSocket) {}

#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        Ok(TcpListener {
            inner: std::net::TcpListener::bind(addr)?,
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, peer) = self.inner.accept()?;
        Ok((TcpStream { inner: stream }, peer))
    }
}

#[derive(Debug)]
pub struct TcpStream {
    pub(crate) inner: std::net::TcpStream,
}

impl TcpStream {
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        Ok(TcpStream {
            inner: std::net::TcpStream::connect(addr)?,
        })
    }

    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Splits into owned read/write halves (each a dup'd fd, as in tokio).
    pub fn into_split(self) -> (tcp::OwnedReadHalf, tcp::OwnedWriteHalf) {
        let stream = Arc::new(self.inner);
        (
            tcp::OwnedReadHalf {
                inner: stream.clone(),
            },
            tcp::OwnedWriteHalf { inner: stream },
        )
    }
}

pub mod tcp {
    use std::sync::Arc;

    #[derive(Debug)]
    pub struct OwnedReadHalf {
        pub(crate) inner: Arc<std::net::TcpStream>,
    }

    #[derive(Debug)]
    pub struct OwnedWriteHalf {
        pub(crate) inner: Arc<std::net::TcpStream>,
    }
}
