//! Offline stub of `tokio`: a thread-per-task runtime exposing the subset
//! of the tokio 1.x API this workspace uses.
//!
//! Model: `spawn` starts an OS thread that drives the future to completion
//! with a park/unpark executor; async I/O primitives perform *blocking*
//! syscalls inside `poll` (safe because every task owns its thread). This
//! preserves tokio's observable semantics for the patterns in this repo —
//! channel backpressure, task fan-out/join, socket concurrency via `Arc` —
//! with two caveats documented in vendor/README.md: `JoinHandle::abort`
//! detaches instead of cancelling, and a blocked I/O call cannot be raced
//! against a timer (no `select!`).

pub mod io;
pub mod net;
pub mod runtime;
pub mod signal;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
/// `#[tokio::main]` / `#[tokio::test]` attribute macros.
pub use tokio_macros::{main, test};

pub(crate) mod exec {
    use std::future::Future;
    use std::pin::pin;
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};
    use std::thread::Thread;

    struct ThreadWaker(Thread);

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.0.unpark();
        }
    }

    /// Drives `fut` to completion on the current thread.
    pub(crate) fn block_on<F: Future>(fut: F) -> F::Output {
        let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
        let mut cx = Context::from_waker(&waker);
        let mut fut = pin!(fut);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                // Parking races are benign: a wake between poll and park
                // leaves a token that makes the next park return at once.
                Poll::Pending => std::thread::park(),
            }
        }
    }
}
