//! Runtime handle: `block_on` drives a future on the calling thread;
//! spawned tasks are independent OS threads, so the runtime itself owns no
//! worker pool.

use std::future::Future;

#[derive(Debug)]
pub struct Runtime {
    _priv: (),
}

impl Runtime {
    pub fn new() -> std::io::Result<Runtime> {
        Ok(Runtime { _priv: () })
    }

    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        crate::exec::block_on(fut)
    }
}

/// Builder accepted for source compatibility; every configuration yields
/// the same thread-per-task runtime.
#[derive(Debug, Default)]
pub struct Builder {
    _priv: (),
}

impl Builder {
    pub fn new_multi_thread() -> Builder {
        Builder::default()
    }

    pub fn new_current_thread() -> Builder {
        Builder::default()
    }

    pub fn worker_threads(&mut self, _n: usize) -> &mut Builder {
        self
    }

    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    pub fn build(&mut self) -> std::io::Result<Runtime> {
        Runtime::new()
    }
}
