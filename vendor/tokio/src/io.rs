//! `AsyncReadExt`/`AsyncWriteExt`: async-signature wrappers over blocking
//! std I/O, implemented directly on the stub's socket types.

use std::io::{Read, Write};

use crate::net::tcp::{OwnedReadHalf, OwnedWriteHalf};
use crate::net::TcpStream;

pub trait AsyncReadExt {
    fn read_exact(
        &mut self,
        buf: &mut [u8],
    ) -> impl std::future::Future<Output = std::io::Result<usize>> + Send;

    fn read(
        &mut self,
        buf: &mut [u8],
    ) -> impl std::future::Future<Output = std::io::Result<usize>> + Send;
}

pub trait AsyncWriteExt {
    fn write_all(
        &mut self,
        buf: &[u8],
    ) -> impl std::future::Future<Output = std::io::Result<()>> + Send;

    fn flush(&mut self) -> impl std::future::Future<Output = std::io::Result<()>> + Send;

    fn shutdown(&mut self) -> impl std::future::Future<Output = std::io::Result<()>> + Send;
}

macro_rules! impl_async_read {
    ($ty:ty, |$self_:ident| $reader:expr) => {
        impl AsyncReadExt for $ty {
            async fn read_exact(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let $self_ = self;
                Read::read_exact($reader, buf)?;
                Ok(buf.len())
            }

            async fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let $self_ = self;
                Read::read($reader, buf)
            }
        }
    };
}

macro_rules! impl_async_write {
    ($ty:ty, |$self_:ident| $writer:expr) => {
        impl AsyncWriteExt for $ty {
            async fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
                let $self_ = self;
                Write::write_all($writer, buf)
            }

            async fn flush(&mut self) -> std::io::Result<()> {
                let $self_ = self;
                Write::flush($writer)
            }

            async fn shutdown(&mut self) -> std::io::Result<()> {
                let $self_ = self;
                let stream: &std::net::TcpStream = $writer;
                stream.shutdown(std::net::Shutdown::Write)
            }
        }
    };
}

impl_async_read!(TcpStream, |s| &mut s.inner);
impl_async_read!(OwnedReadHalf, |s| &mut (&*s.inner));
impl_async_write!(TcpStream, |s| &mut s.inner);
impl_async_write!(OwnedWriteHalf, |s| &mut (&*s.inner));
