//! Signal handling stub: `ctrl_c` parks the calling task forever. The
//! process default SIGINT disposition (terminate) is untouched, so the
//! observable behavior of "run until Ctrl-C" call sites is preserved.

pub async fn ctrl_c() -> std::io::Result<()> {
    loop {
        std::thread::park();
    }
}
