//! `tokio::sync` subset: bounded mpsc channels over `std::sync::mpsc`.
//! Sends/receives block the calling task's thread, which reproduces
//! tokio's backpressure semantics in the thread-per-task model.

pub mod mpsc {
    use std::sync::mpsc as std_mpsc;

    pub mod error {
        /// Channel closed with the value that could not be delivered.
        #[derive(Debug, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }

        impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}
    }

    pub use error::SendError;

    #[derive(Debug)]
    pub struct Sender<T> {
        inner: std_mpsc::SyncSender<T>,
    }

    // Derived Clone would require T: Clone; the sender itself never clones T.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }

        pub fn blocking_send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }

        pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.try_send(value).map_err(|e| match e {
                std_mpsc::TrySendError::Full(v) | std_mpsc::TrySendError::Disconnected(v) => {
                    SendError(v)
                }
            })
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: std_mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub async fn recv(&mut self) -> Option<T> {
            self.inner.recv().ok()
        }

        pub fn blocking_recv(&mut self) -> Option<T> {
            self.inner.recv().ok()
        }

        pub fn try_recv(&mut self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// Bounded channel: senders block when `capacity` messages are queued.
    pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std_mpsc::sync_channel(capacity);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}
