//! Timers: blocking sleeps (each task owns its thread).

use std::time::Duration;

/// Mirror of `tokio::time::Instant`: convertible from/to `std::time::Instant`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Instant(std::time::Instant);

impl Instant {
    pub fn now() -> Instant {
        Instant(std::time::Instant::now())
    }

    pub fn into_std(self) -> std::time::Instant {
        self.0
    }

    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

impl From<std::time::Instant> for Instant {
    fn from(i: std::time::Instant) -> Instant {
        Instant(i)
    }
}

impl From<Instant> for std::time::Instant {
    fn from(i: Instant) -> std::time::Instant {
        i.0
    }
}

pub async fn sleep(duration: Duration) {
    std::thread::sleep(duration);
}

pub async fn sleep_until(deadline: Instant) {
    let now = std::time::Instant::now();
    if let Some(remaining) = deadline.0.checked_duration_since(now) {
        std::thread::sleep(remaining);
    }
}
