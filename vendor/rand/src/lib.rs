//! Offline stub of `rand` 0.8: the `Rng`/`SeedableRng`/`StdRng` subset this
//! workspace uses. `StdRng` is xoshiro256** seeded through splitmix64 —
//! statistically solid for simulation workloads and fully deterministic
//! given a seed (the repeatability requirement of LDplayer §2.1), though
//! *not* cryptographically secure like the real `StdRng`.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a range (`gen_range`).
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Modulo bias is ≤ span/2^64, negligible for simulation use.
                let offset = (rng.next_u64() as u128) % span;
                (low as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Types producible by `Rng::gen` (the `Standard` distribution).
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// The user-facing sampling API (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    fn gen_range<T: SampleUniform, B: Into<RangeBounds<T>>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        let RangeBounds { low, high } = range.into();
        T::sample_from(self, low, high)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Normalized half-open range passed to `gen_range`.
pub struct RangeBounds<T> {
    low: T,
    high: T,
}

impl<T: SampleUniform> From<std::ops::Range<T>> for RangeBounds<T> {
    fn from(r: std::ops::Range<T>) -> Self {
        RangeBounds { low: r.start, high: r.end }
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl From<std::ops::RangeInclusive<$t>> for RangeBounds<$t> {
            fn from(r: std::ops::RangeInclusive<$t>) -> Self {
                // Widen by one; saturate at the type max (half-open internal form).
                RangeBounds { low: *r.start(), high: r.end().saturating_add(1) }
            }
        }
    )*};
}

impl_inclusive_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        // Offline stub: derive "entropy" from the monotonic clock; callers
        // needing repeatability use seed_from_u64 (all in-repo callers do).
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(t)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — the stub's stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small and standard generators coincide in the stub.
    pub type SmallRng = StdRng;
}

/// `rand::thread_rng()` stand-in (time-seeded, non-cryptographic).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
