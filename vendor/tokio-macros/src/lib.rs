//! Offline stub of `tokio-macros`: `#[tokio::main]` and `#[tokio::test]`.
//!
//! Both transforms are purely token-level (no syn/quote): strip the `async`
//! keyword from the item, wrap the body in
//! `tokio::runtime::Runtime::new().block_on(async move { ... })`, and for
//! `test` prepend `#[test]`. Attribute arguments (`flavor`,
//! `worker_threads`, ...) are accepted and ignored — the stub runtime is
//! thread-per-task, so every flavor is "multi thread".

use proc_macro::{Delimiter, Group, Ident, Punct, Spacing, Span, TokenStream, TokenTree};

#[proc_macro_attribute]
pub fn main(_args: TokenStream, item: TokenStream) -> TokenStream {
    match rewrite(item, false) {
        Ok(ts) => ts,
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_attribute]
pub fn test(_args: TokenStream, item: TokenStream) -> TokenStream {
    match rewrite(item, true) {
        Ok(ts) => ts,
        Err(msg) => compile_error(&msg),
    }
}

fn rewrite(item: TokenStream, is_test: bool) -> Result<TokenStream, String> {
    let mut tokens: Vec<TokenTree> = item.into_iter().collect();

    // Drop the first top-level `async` keyword (it must precede `fn`).
    let async_pos = tokens
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "async"))
        .ok_or_else(|| "#[tokio::main]/#[tokio::test] requires an async fn".to_string())?;
    tokens.remove(async_pos);

    // The final token must be the function body block.
    let body = match tokens.pop() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        _ => return Err("expected a function body block".to_string()),
    };

    // { tokio::runtime::Runtime::new().expect("runtime").block_on(async move <body>) }
    let mut wrapped = TokenStream::new();
    wrapped.extend(path(&["tokio", "runtime", "Runtime", "new"]));
    wrapped.extend([
        group(Delimiter::Parenthesis, TokenStream::new()),
        punct('.'),
        ident("expect"),
        group(Delimiter::Parenthesis, literal_str("tokio stub runtime")),
        punct('.'),
        ident("block_on"),
    ]);
    let mut block_on_arg = TokenStream::new();
    block_on_arg.extend([ident("async"), ident("move"), TokenTree::Group(body)]);
    wrapped.extend([group(Delimiter::Parenthesis, block_on_arg)]);

    let mut out = TokenStream::new();
    if is_test {
        // #[::core::prelude::v1::test]
        out.extend([punct('#')]);
        let mut attr = TokenStream::new();
        attr.extend(colon_colon());
        attr.extend(path_raw(&["core", "prelude", "v1", "test"]));
        out.extend([group(Delimiter::Bracket, attr)]);
    }
    out.extend(tokens);
    out.extend([group(Delimiter::Brace, wrapped)]);
    Ok(out)
}

fn ident(name: &str) -> TokenTree {
    TokenTree::Ident(Ident::new(name, Span::call_site()))
}

fn punct(c: char) -> TokenTree {
    TokenTree::Punct(Punct::new(c, Spacing::Alone))
}

/// A `::` path separator: the first colon must be `Joint` or the parser
/// sees two lone colons instead of one separator.
fn colon_colon() -> [TokenTree; 2] {
    [
        TokenTree::Punct(Punct::new(':', Spacing::Joint)),
        TokenTree::Punct(Punct::new(':', Spacing::Alone)),
    ]
}

fn group(delim: Delimiter, inner: TokenStream) -> TokenTree {
    TokenTree::Group(Group::new(delim, inner))
}

fn literal_str(s: &str) -> TokenStream {
    format!("{s:?}").parse().expect("string literal tokens")
}

/// `a::b::c` path segments joined by `::` (leading `::` not included).
fn path_raw(segments: &[&str]) -> TokenStream {
    let mut ts = TokenStream::new();
    for (i, seg) in segments.iter().enumerate() {
        if i > 0 {
            ts.extend(colon_colon());
        }
        ts.extend([ident(seg)]);
    }
    ts
}

fn path(segments: &[&str]) -> TokenStream {
    path_raw(segments)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error tokens")
}
