//! Offline stub of `serde_json` over the `serde` stub's value model:
//! `Value`, the `json!` macro, pretty/compact serialization, and a strict
//! recursive-descent parser.

pub use serde::value::{Number, Value};

mod parse;

pub use parse::ParseError;

/// Error type covering both serialization (infallible here) and parsing.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_json_value()
}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_string())
}

pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse::parse(input).map_err(|e| Error(e.to_string()))?;
    T::from_json_value(value).map_err(Error)
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, indent + STEP, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                serde::value::escape_json_string(k, out);
                out.push_str(": ");
                write_pretty(v, indent + STEP, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Builds a [`Value`] from JSON-ish syntax. Supports object/array literals,
/// `null`, and arbitrary Rust expressions whose types implement
/// `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_items!(items; $($tt)*);
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        let mut entries: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_entries!(entries; $($tt)*);
        $crate::Value::Object(entries)
    }};
    ($($expr:tt)+) => { $crate::to_value(&($($expr)+)) };
}

/// Internal: array elements — accumulate tokens up to each top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($items:ident;) => {};
    ($items:ident; $($val:tt)+) => {
        $crate::json_items_acc!($items; () $($val)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_items_acc {
    ($items:ident; ($($acc:tt)+)) => {
        $items.push($crate::json!($($acc)+));
    };
    ($items:ident; ($($acc:tt)+) , $($rest:tt)*) => {
        $items.push($crate::json!($($acc)+));
        $crate::json_items!($items; $($rest)*);
    };
    ($items:ident; ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_items_acc!($items; ($($acc)* $next) $($rest)*);
    };
}

/// Internal: object entries — `key: value` pairs, string-literal or ident
/// keys, values accumulated up to each top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($entries:ident;) => {};
    ($entries:ident; $key:tt : $($rest:tt)+) => {
        $crate::json_entries_acc!($entries; $key () $($rest)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_entries_acc {
    ($entries:ident; $key:tt ($($acc:tt)+)) => {
        $entries.push(($crate::json_key!($key), $crate::json!($($acc)+)));
    };
    ($entries:ident; $key:tt ($($acc:tt)+) , $($rest:tt)*) => {
        $entries.push(($crate::json_key!($key), $crate::json!($($acc)+)));
        $crate::json_entries!($entries; $($rest)*);
    };
    ($entries:ident; $key:tt ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_entries_acc!($entries; $key ($($acc)* $next) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_key {
    ($key:literal) => {
        ($key).to_string()
    };
    ($key:ident) => {
        stringify!($key).to_string()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_documents() {
        let title = String::from("t");
        let v = json!({
            "title": title,
            "n": 3,
            "arr": [1, 2.5, "x", null],
            "nested": { "a": true },
        });
        assert_eq!(v["title"], "t");
        assert_eq!(v["n"].as_i64(), Some(3));
        assert_eq!(v["arr"][1].as_f64(), Some(2.5));
        assert!(v["arr"][3].is_null());
        assert_eq!(v["nested"]["a"].as_bool(), Some(true));
    }

    #[test]
    fn json_macro_accepts_method_call_values() {
        let xs = [1.0f64, 2.0];
        let v = json!({ "mean": xs.iter().sum::<f64>() / xs.len() as f64 });
        assert_eq!(v["mean"].as_f64(), Some(1.5));
    }

    #[test]
    fn pretty_roundtrips_through_parser() {
        let v = json!({ "a": [1, 2], "b": { "c": "d\n\"quoted\"" }, "e": 1.25 });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_render_exact_and_floats_keep_point() {
        assert_eq!(json!(15).to_string(), "15");
        assert_eq!(json!(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(json!(2.0).to_string(), "2.0");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{ \"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
