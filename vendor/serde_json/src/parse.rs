//! Strict recursive-descent JSON parser (RFC 8259 subset: no comments, no
//! trailing commas). Depth-limited so adversarial inputs cannot blow the
//! stack.

use serde::value::{Number, Value};

#[derive(Debug)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 128;

pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected '{word}')")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be
                            // followed by a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c =
                                        0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::from_f64(v)))
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
