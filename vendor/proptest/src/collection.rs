//! Collection strategies: `proptest::collection::vec(elem, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification accepted by [`vec`]: a fixed size, `lo..hi`, or
/// `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
