//! Test execution support: configuration, the deterministic RNG, and the
//! failure-reporting drop guard used by the `proptest!` expansion.

/// Subset of proptest's config: only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Accepted for source compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// splitmix64: deterministic, seedable, fast — ideal for reproducible
/// property tests (identical sequences in debug and release).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Seed for one test case: FNV-1a over the test name, mixed with the case
/// index. Stable across runs, platforms, and optimization levels.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash ^ (u64::from(case).wrapping_mul(0x9E3779B97F4A7C15))
}

/// Prints the failing case's coordinates if the test body panics, then
/// lets the original panic propagate (no shrinking in the stub).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    seed: u64,
    armed: bool,
}

impl CaseGuard {
    pub fn arm(name: &'static str, case: u32, seed: u64) -> CaseGuard {
        CaseGuard {
            name,
            case,
            seed,
            armed: true,
        }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest stub: {} failed at case {} (seed {:#x}); \
                 cases are deterministic — rerun to reproduce",
                self.name, self.case, self.seed
            );
        }
    }
}
