//! Offline stub of `proptest`: the strategy/macro subset this workspace
//! uses, with two deliberate simplifications:
//!
//! * **Deterministic seeding.** Each test's RNG seed derives from the test
//!   name and case index, so runs are exactly reproducible in debug and
//!   release alike (no persistence files, no wall-clock entropy). The
//!   `*.proptest-regressions` mechanism is unnecessary and unread.
//! * **No shrinking.** A failing case reports its case index and seed (via
//!   a drop guard) plus the panicking assertion; it is not minimized.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Map, Strategy, Union};
pub use test_runner::{CaseGuard, ProptestConfig, TestRng};

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
    /// `prop::` namespace alias used by some call sites
    /// (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Supported grammar (the subset proptest's own
/// macro accepts that this repo uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($args:tt)* ) $body:block )* ) => {
        $(
            $crate::__proptest_args! {
                ($cfg) $(#[$meta])* fn $name [] ( $($args)* ) $body
            }
        )*
    };
}

/// Arg-list muncher: normalizes `x in strat` / `mut x in strat` into
/// accumulated `(ident, strat)` pairs, then expands the test fn. A plain
/// `$(mut)? $arg:ident` matcher is ambiguous (the `ident` fragment also
/// matches the `mut` keyword), so the two spellings need separate arms.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    // `mut x in strat, ...`
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident [$($acc:tt)*]
      ( mut $arg:ident in $strat:expr $(, $($rest:tt)*)? ) $body:block ) => {
        $crate::__proptest_args! {
            ($cfg) $(#[$meta])* fn $name [$($acc)* ($arg, $strat)]
            ( $($($rest)*)? ) $body
        }
    };
    // `x in strat, ...`
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident [$($acc:tt)*]
      ( $arg:ident in $strat:expr $(, $($rest:tt)*)? ) $body:block ) => {
        $crate::__proptest_args! {
            ($cfg) $(#[$meta])* fn $name [$($acc)* ($arg, $strat)]
            ( $($($rest)*)? ) $body
        }
    };
    // All args consumed: emit the test function.
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident [$(($arg:ident, $strat:expr))*]
      () $body:block ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Hold strategies across cases so expensive constructions
            // (precomputed tables etc.) run once per test.
            $(let $arg = $strat;)*
            let __strats = ($(&$arg,)*);
            for __case in 0..config.cases {
                let __seed = $crate::test_runner::case_seed(stringify!($name), __case);
                let mut __rng = $crate::TestRng::from_seed(__seed);
                let __guard =
                    $crate::CaseGuard::arm(stringify!($name), __case, __seed);
                {
                    let ($($arg,)*) = __strats;
                    // Always-`mut` bindings make `mut x in strat` args
                    // work; harmless for the rest.
                    $(#[allow(unused_mut)] let mut $arg =
                        $crate::Strategy::generate($arg, &mut __rng);)*
                    $body
                }
                __guard.disarm();
            }
        }
    };
}

/// Asserts inside property tests. The stub panics immediately (no
/// shrinking), so these are `assert!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The stub cannot re-draw rejected cases; treat assumptions as hard
/// assertions (strategies in this repo are constructive, so rejection
/// should be rare to nonexistent).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => { assert!($cond, "prop_assume! rejected (stub treats as failure)") };
}

/// Chooses among strategies, uniformly (`a, b, c`) or weighted
/// (`2 => a, 1 => b`).
#[macro_export]
macro_rules! prop_oneof {
    ($( $weight:literal => $strat:expr ),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($( $strat:expr ),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Composes named strategies into a derived value:
///
/// ```ignore
/// prop_compose! {
///     fn arb_point()(x in 0i32..10, y in 0i32..10) -> Point {
///         Point { x, y }
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($params:tt)*)
            ( $($arg:ident in $strat:expr),* $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::Strategy<Value = $ret> {
            let strategies = ($($strat,)*);
            $crate::Map::new(strategies, move |($($arg,)*)| $body)
        }
    };
}
