//! Value-generation strategies (no shrink trees — see crate docs).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

// The `Fn` bound on `new` (not just the `Strategy` impl) is what lets
// closure-argument types infer at the construction site in
// `prop_compose!` expansions.
impl<S, O, F> Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    pub fn new(inner: S, f: F) -> Map<S, F> {
        Map { inner, f }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Bounded rejection sampling; a filter that rejects 1000 straight
        // draws is a bug in the strategy, not bad luck.
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 consecutive draws", self.reason);
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    pub fn weighted(options: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, strat) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick < total_weight by construction")
    }
}

/// Types with a canonical "arbitrary" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + (rng.next_u64() % 95) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary_value(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary_value(rng))
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(offset) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let offset = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident/$v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (S1/s1)
    (S1/s1, S2/s2)
    (S1/s1, S2/s2, S3/s3)
    (S1/s1, S2/s2, S3/s3, S4/s4)
    (S1/s1, S2/s2, S3/s3, S4/s4, S5/s5)
    (S1/s1, S2/s2, S3/s3, S4/s4, S5/s5, S6/s6)
    (S1/s1, S2/s2, S3/s3, S4/s4, S5/s5, S6/s6, S7/s7)
    (S1/s1, S2/s2, S3/s3, S4/s4, S5/s5, S6/s6, S7/s7, S8/s8)
    (S1/s1, S2/s2, S3/s3, S4/s4, S5/s5, S6/s6, S7/s7, S8/s8, S9/s9)
    (S1/s1, S2/s2, S3/s3, S4/s4, S5/s5, S6/s6, S7/s7, S8/s8, S9/s9, S10/s10)
    (S1/s1, S2/s2, S3/s3, S4/s4, S5/s5, S6/s6, S7/s7, S8/s8, S9/s9, S10/s10, S11/s11)
    (S1/s1, S2/s2, S3/s3, S4/s4, S5/s5, S6/s6, S7/s7, S8/s8, S9/s9, S10/s10, S11/s11, S12/s12)
}
