//! Workspace-root package hosting the integration tests and examples.
#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub use ldplayer::*;
