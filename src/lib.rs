//! Workspace-root package hosting the integration tests and examples.
pub use ldplayer::*;
