#!/usr/bin/env sh
# Scrape smoke: a timed replay with `--metrics-addr` must serve a live
# Prometheus endpoint carrying the per-shard replay families, and
# `ldplayer top --raw` (the std-only curl substitute) must scrape it.
# The replay target is the discard port — nothing answers, which is fine:
# the smoke checks the telemetry plane, not the replay outcome.
set -eu

DIR="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

cargo build -q --release -p ldplayer
LDPLAYER="${CARGO_TARGET_DIR:-target}/release/ldplayer"

# A ~12 s timed trace keeps the endpoint alive long past the scrape.
"$LDPLAYER" generate syn --level 2 --duration 12 -o "$DIR/t.ldps"
"$LDPLAYER" replay "$DIR/t.ldps" --server 127.0.0.1:9 \
    --metrics-addr 127.0.0.1:0 >"$DIR/replay.out" 2>&1 &
PID=$!

# The replay prints the bound endpoint; poll for it (port 0 = ephemeral).
ADDR=""
i=0
while [ "$i" -lt 50 ]; do
    ADDR="$(sed -n 's#.*metrics on http://\([0-9.:]*\)/metrics.*#\1#p' "$DIR/replay.out")"
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || {
        echo "scrape smoke: replay exited early:" >&2
        cat "$DIR/replay.out" >&2
        exit 1
    }
    sleep 0.2
    i=$((i + 1))
done
[ -n "$ADDR" ] || {
    echo "scrape smoke: metrics endpoint never came up" >&2
    exit 1
}

# Give the shards a beat to register their counters, then scrape once.
sleep 1
"$LDPLAYER" top --metrics-addr "$ADDR" --iterations 1 --raw >"$DIR/scrape.txt"
for fam in ldp_replay_sent_total ldp_replay_queue_depth \
    ldp_replay_in_flight ldp_replay_timeouts_total; do
    grep -q "$fam" "$DIR/scrape.txt" || {
        echo "scrape smoke: family $fam missing from exposition:" >&2
        cat "$DIR/scrape.txt" >&2
        exit 1
    }
done

echo "scrape smoke: endpoint served $(grep -c '^ldp_' "$DIR/scrape.txt") samples, required families present."
