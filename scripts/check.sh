#!/usr/bin/env sh
# Full local gate: formatting, clippy wall, invariant linter, tests.
# Run from the repo root. Fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo ldp-lint"
cargo ldp-lint

echo "==> cargo test"
cargo test --workspace -q

echo "All checks passed."
