#!/usr/bin/env sh
# Full local gate: formatting, clippy wall, invariant linter, tests.
# Run from the repo root. Fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo ldp-lint"
cargo ldp-lint

echo "==> cargo test"
cargo test --workspace -q

echo "==> chaos smoke (lossy replay must recover via retries)"
cargo run -q --release -p ldp-bench --bin chaos_smoke

echo "==> bench smoke (fig09 on a tiny trace)"
LDP_SCALE=0.05 LDP_RESULTS=results cargo run -q --release -p ldp-bench --bin fig09_throughput
test -s results/BENCH_fig09.json || {
    echo "bench smoke failed: results/BENCH_fig09.json missing or empty" >&2
    exit 1
}

echo "All checks passed."
