#!/usr/bin/env sh
# Full local gate: formatting, clippy wall, invariant linter, tests.
# Run from the repo root. Fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo ldp-lint"
cargo ldp-lint

echo "==> cargo test"
cargo test --workspace -q

echo "==> chaos smoke (lossy replay must recover via retries)"
cargo run -q --release -p ldp-bench --bin chaos_smoke

echo "==> scrape smoke (--metrics-addr endpoint + ldplayer top)"
sh scripts/scrape_smoke.sh

echo "==> bench smoke (fig09 on a tiny trace) + throughput gate"
# The smoke run writes to a scratch dir so it never clobbers the committed
# baseline; bench_gate then compares the fresh record against it. Records
# taken at different LDP_SCALE are incomparable and the gate skips itself,
# so run with LDP_SCALE=0.3 to exercise the real regression check.
SMOKE_RESULTS="$(mktemp -d)"
trap 'rm -rf "$SMOKE_RESULTS"' EXIT
LDP_SCALE="${LDP_SCALE:-0.05}" LDP_RESULTS="$SMOKE_RESULTS" \
    cargo run -q --release -p ldp-bench --bin fig09_throughput
test -s "$SMOKE_RESULTS/BENCH_fig09.json" || {
    echo "bench smoke failed: BENCH_fig09.json missing or empty" >&2
    exit 1
}
test -s "$SMOKE_RESULTS/fig09_throughput.manifest.json" || {
    echo "bench smoke failed: fig09 run manifest missing or empty" >&2
    exit 1
}
cargo run -q --release -p ldp-bench --bin bench_gate -- \
    results/BENCH_fig09.json "$SMOKE_RESULTS/BENCH_fig09.json"

echo "All checks passed."
