//! The paper's headline what-if (§5.2): what happens to a root server if
//! *all* queries arrive over TCP, or over TLS, instead of mostly UDP?
//!
//! Replays the same B-Root-like trace three ways and prints the
//! resource/latency comparison the paper's Figures 11/13/14/15 break out.
//!
//! Run with: `cargo run --release --example what_if_tcp`

use ldplayer::metrics::Summary;
use ldplayer::trace::mutate;
use ldplayer::workload::BRootConfig;
use ldplayer::SimExperiment;

fn main() {
    let cfg = BRootConfig {
        duration_s: 120.0,
        mean_rate_qps: 300.0,
        clients: 9_000,
        ..Default::default()
    };

    println!(
        "{:<20} {:>9} {:>11} {:>10} {:>10} {:>12} {:>12}",
        "workload", "answered", "handshakes", "establ.", "TIME_WAIT", "memory (GB)", "median (ms)"
    );
    for (label, mutator) in [
        ("original (3% TCP)", None),
        ("all-TCP", Some(mutate::all_tcp(7))),
        ("all-TLS", Some(mutate::all_tls(7))),
    ] {
        let mut trace = cfg.generate();
        if let Some(m) = mutator {
            let mut m = m;
            m.apply_all(&mut trace);
        }
        let result = SimExperiment::root_server(trace)
            .rtt_ms(20)
            .tcp_idle_timeout_s(20)
            .run();
        let median = Summary::compute(&result.latencies_ms())
            .map(|s| s.median)
            .unwrap_or(f64::NAN);
        println!(
            "{:<20} {:>8.1}% {:>11} {:>10} {:>10} {:>12.2} {:>12.1}",
            label,
            result.answer_rate() * 100.0,
            result.usage.tcp_handshakes + result.usage.tls_handshakes,
            result.final_tcp.established,
            result.final_tcp.time_wait,
            result.final_memory_gb(),
            median,
        );
    }
    println!(
        "\npaper shapes: TCP/TLS memory ≫ UDP baseline; TLS ≈ +30% over TCP; \
         median latency stays near 1 RTT thanks to connection reuse"
    );
}
