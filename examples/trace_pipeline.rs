//! The trace-mutation pipeline (§2.5, Figure 3 of the paper): binary
//! capture → editable plain text → (sed-style edit) → internal binary
//! stream → live replay over real sockets.
//!
//! Run with: `cargo run --release --example trace_pipeline`

use std::sync::Arc;

use ldplayer::replay::{LiveReplay, ReplayMode};
use ldplayer::server::auth::AuthEngine;
use ldplayer::server::live::LiveServer;
use ldplayer::trace::{capture, stream, text};
use ldplayer::workload::zones::wildcard_example_zone;
use ldplayer::workload::SyntheticConfig;
use ldplayer::zone::ZoneSet;

#[tokio::main]
async fn main() -> std::io::Result<()> {
    // A fixed-interval synthetic trace (Table 1's syn-2 shape, shortened).
    let records = SyntheticConfig {
        interarrival_us: 10_000,
        duration_s: 3,
        clients: 50,
        domain: "example.com",
    }
    .generate();
    println!("source trace: {} queries over udp", records.len());

    // 1. Write the "network capture" (pcap steads-in).
    let capture_bytes = capture::to_bytes(&records).expect("capture encodes");
    println!("capture format:  {} bytes", capture_bytes.len());

    // 2. Convert to plain text — the human-editable stage.
    let mut text_bytes = Vec::new();
    text::write_text(&mut text_bytes, &records).expect("text encodes");
    let text_form = String::from_utf8(text_bytes).expect("ascii");
    println!("text format:     {} bytes; first line:", text_form.len());
    println!("    {}", text_form.lines().next().unwrap());

    // 3. Edit with a plain string replacement — the whole point of the
    //    text stage: any tool can rewrite the trace. Here: all → TCP.
    let edited = text_form.replace(" udp ", " tcp ");

    // 4. Parse back and pre-convert to the fast binary stream.
    let mutated =
        text::read_text(std::io::Cursor::new(edited.into_bytes())).expect("edited text parses");
    assert!(mutated
        .iter()
        .all(|r| r.protocol == ldplayer::trace::Protocol::Tcp));
    let stream_bytes = stream::to_bytes(&mutated).expect("stream encodes");
    println!(
        "binary stream:   {} bytes ({}% of capture)",
        stream_bytes.len(),
        stream_bytes.len() * 100 / capture_bytes.len()
    );

    // 5. Replay the stream over real sockets against a live server.
    let replayable = stream::from_bytes(&stream_bytes).expect("stream decodes");
    let mut zones = ZoneSet::new();
    zones.insert(wildcard_example_zone());
    let server = LiveServer::spawn(
        Arc::new(AuthEngine::with_zones(Arc::new(zones))),
        "127.0.0.1:0".parse().unwrap(),
    )
    .await?;
    let replay = LiveReplay {
        mode: ReplayMode::Fast,
        ..LiveReplay::new(server.addr)
    };
    let report = replay.run(replayable).await?;
    println!(
        "replayed {} queries over TCP: {} answered, {} connections at the server",
        report.sent,
        report.answered,
        server
            .stats
            .tcp_connections
            .load(std::sync::atomic::Ordering::Relaxed)
    );
    Ok(())
}
