//! Hierarchy emulation end-to-end (§2.3 + §2.4 of the paper):
//!
//! 1. "Capture" a trace by running a cold-cache recursive walk against an
//!    origin hierarchy and harvesting every authoritative response.
//! 2. Feed the captured responses to the **zone constructor**, which
//!    rebuilds root/com/example.com zone files and binds them to their
//!    nameservers' public addresses.
//! 3. Serve all rebuilt zones from ONE meta-DNS-server behind the
//!    OQDA-rewriting **proxy pair**, and resolve a stub query through the
//!    full root → TLD → SLD walk inside the network simulator.
//!
//! Run with: `cargo run --release --example hierarchy_emulation`

use std::net::{IpAddr, SocketAddr};
use std::sync::Arc;

use ldplayer::netsim::{
    Ctx, Node, NodeEvent, Packet, Payload, Sim, SimDuration, SimTime, TcpConfig,
};
use ldplayer::proxy::ProxyNode;
use ldplayer::server::auth::AuthEngine;
use ldplayer::server::recursive::{ResolverConfig, ResolverCore, ResolverStep};
use ldplayer::server::resource::ResourceModel;
use ldplayer::server::sim::{AuthServerNode, RecursiveNode};
use ldplayer::wire::{Message, Name, RData, Record, RrType};
use ldplayer::zone::{ViewTable, Zone};
use ldplayer::zonegen::ZoneConstructor;

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

fn ip(s: &str) -> IpAddr {
    s.parse().unwrap()
}

/// The "real Internet" hierarchy the one-time zone construction queries.
fn origin_hierarchy() -> AuthEngine {
    let mut root = Zone::with_fake_soa(Name::root());
    root.add(Record::new(
        Name::root(),
        518400,
        RData::Ns(n("a.root-servers.net")),
    ))
    .unwrap();
    root.add(Record::new(
        n("a.root-servers.net"),
        518400,
        RData::A("198.41.0.4".parse().unwrap()),
    ))
    .unwrap();
    root.add(Record::new(
        n("com"),
        172800,
        RData::Ns(n("a.gtld-servers.net")),
    ))
    .unwrap();
    root.add(Record::new(
        n("a.gtld-servers.net"),
        172800,
        RData::A("192.5.6.30".parse().unwrap()),
    ))
    .unwrap();

    let mut com = Zone::with_fake_soa(n("com"));
    com.add(Record::new(
        n("com"),
        172800,
        RData::Ns(n("a.gtld-servers.net")),
    ))
    .unwrap();
    com.add(Record::new(
        n("example.com"),
        172800,
        RData::Ns(n("ns1.example.com")),
    ))
    .unwrap();
    com.add(Record::new(
        n("ns1.example.com"),
        172800,
        RData::A("192.0.2.53".parse().unwrap()),
    ))
    .unwrap();

    let mut sld = Zone::with_fake_soa(n("example.com"));
    sld.add(Record::new(
        n("example.com"),
        3600,
        RData::Ns(n("ns1.example.com")),
    ))
    .unwrap();
    sld.add(Record::new(
        n("ns1.example.com"),
        3600,
        RData::A("192.0.2.53".parse().unwrap()),
    ))
    .unwrap();
    sld.add(Record::new(
        n("www.example.com"),
        300,
        RData::A("192.0.2.80".parse().unwrap()),
    ))
    .unwrap();
    sld.add(Record::new(
        n("mail.example.com"),
        300,
        RData::A("192.0.2.25".parse().unwrap()),
    ))
    .unwrap();

    AuthEngine::with_views(ViewTable::from_nameserver_map(vec![
        (ip("198.41.0.4"), root),
        (ip("192.5.6.30"), com),
        (ip("192.0.2.53"), sld),
    ]))
}

/// Step 1+2: one-time queries against the "Internet", harvesting responses
/// into the zone constructor (§2.3's cold-cache walk).
fn construct_zones() -> ldplayer::zonegen::BuiltZones {
    let internet = origin_hierarchy();
    let mut constructor = ZoneConstructor::new();
    let mut resolver = ResolverCore::new(vec![ip("198.41.0.4")], ResolverConfig::default());

    for qname in ["www.example.com", "mail.example.com"] {
        let q = Message::query(1, n(qname), RrType::A);
        let mut steps = resolver.on_client_query("10.0.0.9:5353".parse().unwrap(), &q, 0);
        while let Some(step) = steps.pop() {
            match step {
                ResolverStep::Respond { .. } => break,
                ResolverStep::Ask { server, message } => {
                    let response = internet.respond(server, &message, false);
                    // The §2.3 capture point: the recursive's upstream
                    // interface sees this response from `server`.
                    constructor.ingest_response(server, &response);
                    steps = resolver.on_upstream_response(&response, 0);
                }
            }
        }
    }

    // §2.3 "Recover Missing Data": referral responses never carry the
    // *root's own* NS rrset, so the root zone would go undiscovered — the
    // paper "explicitly fetch[es] NS records if they are missing". One
    // probe to the hints address supplies the apex NS set plus glue.
    let probe = Message::query(2, Name::root(), RrType::Ns);
    let response = internet.respond(ip("198.41.0.4"), &probe, false);
    constructor.ingest_response(ip("198.41.0.4"), &response);

    constructor.build()
}

/// Stub client node used in step 3.
struct Stub {
    addr: SocketAddr,
    resolver: SocketAddr,
    query: Message,
    response: Option<Message>,
}

impl Node for Stub {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.send(Packet::udp(
            self.addr,
            self.resolver,
            self.query.to_bytes().unwrap(),
        ));
    }
    fn on_event(&mut self, _ctx: &mut Ctx, event: NodeEvent) {
        if let NodeEvent::Packet(p) = event {
            if let Payload::Udp(data) = &p.payload {
                self.response = Message::from_bytes(data).ok();
            }
        }
    }
}

fn main() {
    // Steps 1–2: build zones from the captured walk.
    let built = construct_zones();
    println!("zone constructor: {:?}", built.stats);
    for (file, text) in built.to_master_files() {
        println!("--- {file} ({} lines) ---", text.lines().count());
        for line in text.lines().take(4) {
            println!("    {line}");
        }
    }
    let bindings = built.bindings.clone();
    println!("\nnameserver bindings (OQDA → zone):");
    for (addr, origin) in &bindings {
        println!("    {addr} → {origin}");
    }

    // Step 3: one meta-DNS-server + proxy pair + recursive + stub.
    let views = built.into_view_table();
    let mut sim = Sim::new();
    let stub = sim.add_node(Box::new(Stub {
        addr: "10.0.0.1:5353".parse().unwrap(),
        resolver: "10.0.0.2:53".parse().unwrap(),
        query: Message::query(7, n("www.example.com"), RrType::A),
        response: None,
    }));
    let rec = sim.add_node(Box::new(RecursiveNode::new(
        ip("10.0.0.2"),
        ResolverCore::new(vec![ip("198.41.0.4")], ResolverConfig::default()),
    )));
    let proxy = sim.add_node(Box::new(ProxyNode::new(ip("10.0.0.3"), ip("10.0.0.2"))));
    let meta = sim.add_node(Box::new(AuthServerNode::new(
        ip("10.0.0.3"),
        Arc::new(AuthEngine::with_views(views)),
        TcpConfig::default(),
        ResourceModel::default(),
    )));
    sim.bind(ip("10.0.0.1"), stub);
    sim.bind(ip("10.0.0.2"), rec);
    sim.bind(ip("10.0.0.3"), meta);
    for (addr, _) in &bindings {
        sim.bind(*addr, proxy); // the TUN capture: every OQDA routes here
    }
    sim.set_default_delay(SimDuration::from_millis(1));
    sim.run_until(SimTime::from_secs(5));

    let stub_ref: &Stub = sim.node_as(stub).unwrap();
    let resp = stub_ref.response.as_ref().expect("stub answered");
    println!("\nstub query www.example.com A →");
    for rec in &resp.answers {
        println!("    {rec}");
    }
    let rec_ref: &RecursiveNode = sim.node_as(rec).unwrap();
    let proxy_ref: &ProxyNode = sim.node_as(proxy).unwrap();
    let meta_ref: &AuthServerNode = sim.node_as(meta).unwrap();
    println!(
        "\nhierarchy walk: {} iterative queries through the proxy ({} forwarded, {} answered by ONE server instance)",
        rec_ref.core.upstream_queries, proxy_ref.queries_forwarded(), meta_ref.usage.udp_queries
    );
    assert_eq!(rec_ref.core.upstream_queries, 3, "root → com → example.com");
}
