//! Quickstart: generate a root-server workload, mutate it to all-TCP, and
//! replay it against an emulated root server — the core LDplayer loop in
//! ~30 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use ldplayer::trace::mutate;
use ldplayer::workload::BRootConfig;
use ldplayer::SimExperiment;

fn main() {
    // 1. A synthetic B-Root-like trace: 10 seconds at ~500 q/s, a
    //    heavy-tailed client population, the observed DO/TCP mixes.
    let mut trace = BRootConfig {
        duration_s: 10.0,
        mean_rate_qps: 500.0,
        clients: 2_000,
        ..Default::default()
    }
    .generate();
    println!("generated {} queries from {} clients", trace.len(), 2_000);

    // 2. The what-if mutation: every query over TCP (§5.2 of the paper).
    mutate::all_tcp(42).apply_all(&mut trace);

    // 3. Replay against a synthetic root server, 20 ms client RTT, 20 s
    //    connection idle timeout.
    let result = SimExperiment::root_server(trace)
        .rtt_ms(20)
        .tcp_idle_timeout_s(20)
        .run();

    // 4. The numbers the paper's §5.2 experiments report.
    println!("answer rate:        {:.2}%", result.answer_rate() * 100.0);
    println!("TCP handshakes:     {}", result.usage.tcp_handshakes);
    println!(
        "established (end):  {}   TIME_WAIT: {}",
        result.final_tcp.established, result.final_tcp.time_wait
    );
    println!("server memory:      {:.2} GB", result.final_memory_gb());
    if let Some(s) = ldplayer::metrics::Summary::compute(&result.latencies_ms()) {
        println!(
            "latency (ms):       median {:.1}  q3 {:.1}  p95 {:.1}",
            s.median, s.q3, s.p95
        );
    }
}
