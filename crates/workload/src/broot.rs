//! B-Root-like and recursive-style trace generators.
//!
//! [`BRootConfig`] produces the workload shape of the paper's B-Root DITL
//! traces (Table 1): Poisson arrivals around a slowly-modulated mean rate,
//! a Zipf client population (Figure 15c), mostly-UDP transport with the
//! observed ~3% TCP share, and ~72.3% of queries carrying the DO bit.
//!
//! [`RecConfig`] produces a Rec-17-style departmental recursive workload:
//! two orders of magnitude slower, few clients, names spread over hundreds
//! of zones.

use ldp_trace::{Protocol, TraceRecord};
use ldp_wire::Edns;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::names::{client_addr, sample_qtype, sample_root_qname};
use crate::zipf::ZipfSampler;

/// Configuration for a B-Root-like trace.
#[derive(Debug, Clone, Copy)]
pub struct BRootConfig {
    /// Trace duration in seconds (the paper uses 60 min / 20 min cuts).
    pub duration_s: f64,
    /// Mean query rate (q/s). B-Root-16 ran ≈38 k q/s; scale down for
    /// in-memory experiments — every consumer takes the rate as a knob.
    pub mean_rate_qps: f64,
    /// Client population size.
    pub clients: usize,
    /// Zipf skew for the client population (≈1.3 matches Figure 15c).
    pub zipf_alpha: f64,
    /// Fraction of queries with the EDNS DO bit (2016: 0.723).
    pub do_fraction: f64,
    /// Fraction of queries over TCP (observed: 0.03).
    pub tcp_fraction: f64,
    /// Fraction of junk qnames that NXDOMAIN at the root.
    pub junk_fraction: f64,
    /// Amplitude of the slow sinusoidal rate modulation (0 = flat).
    pub rate_swing: f64,
    pub seed: u64,
}

impl Default for BRootConfig {
    fn default() -> Self {
        BRootConfig {
            duration_s: 60.0,
            mean_rate_qps: 2_000.0,
            clients: 20_000,
            zipf_alpha: 1.3,
            do_fraction: 0.723,
            tcp_fraction: 0.03,
            junk_fraction: 0.35,
            rate_swing: 0.15,
            seed: 1,
        }
    }
}

impl BRootConfig {
    /// A 20-minute-style cut (the B-Root-17b shape) at a given scale.
    pub fn b17b_scaled(mean_rate_qps: f64, clients: usize, seed: u64) -> BRootConfig {
        BRootConfig {
            duration_s: 1200.0,
            mean_rate_qps,
            clients,
            seed,
            ..BRootConfig::default()
        }
    }

    /// Generates the trace (time-ordered).
    pub fn generate(&self) -> Vec<TraceRecord> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sampler = ZipfSampler::new(self.clients.max(1), self.zipf_alpha);
        let mut out = Vec::with_capacity((self.duration_s * self.mean_rate_qps) as usize);
        let mut t = 0.0f64;
        let mut index = 0u64;
        while t < self.duration_s {
            // Poisson arrivals with sinusoidal rate modulation: the local
            // rate λ(t) wanders around the mean like real diurnal traffic.
            let phase = (t / self.duration_s) * std::f64::consts::TAU;
            let rate = self.mean_rate_qps * (1.0 + self.rate_swing * phase.sin());
            let gap = -rng.gen::<f64>().max(1e-12).ln() / rate.max(1e-9);
            t += gap;
            if t >= self.duration_s {
                break;
            }
            let rank = sampler.sample(&mut rng);
            let mut rec = TraceRecord::udp_query(
                (t * 1e6) as u64,
                client_addr(rank),
                // Source port varies per query; the replay engine maps
                // (address) → querier and (address, port) → socket.
                rng.gen_range(1024..65535),
                sample_root_qname(&mut rng, self.junk_fraction),
                sample_qtype(&mut rng),
            );
            rec.message.header.id = (index % 65_536) as u16;
            if rng.gen::<f64>() < self.tcp_fraction {
                rec.protocol = Protocol::Tcp;
            }
            if rng.gen::<f64>() < self.do_fraction {
                rec.message.edns = Some(Edns::with_do());
            } else if rng.gen::<f64>() < 0.5 {
                // Plenty of non-DO queries still carry EDNS.
                rec.message.edns = Some(Edns::default());
            }
            index += 1;
            out.push(rec);
        }
        out
    }
}

/// Configuration for a Rec-17-style recursive trace.
#[derive(Debug, Clone, Copy)]
pub struct RecConfig {
    pub duration_s: f64,
    /// Mean rate; Table 1's Rec-17 is ≈5.5 q/s (20 k queries over an hour).
    pub mean_rate_qps: f64,
    /// Tiny client population (Table 1: 91 clients).
    pub clients: usize,
    /// Number of distinct second-level zones queried (≈549 in the paper).
    pub zones: usize,
    pub seed: u64,
}

impl Default for RecConfig {
    fn default() -> Self {
        RecConfig {
            duration_s: 3600.0,
            mean_rate_qps: 5.5,
            clients: 91,
            zones: 549,
            seed: 1,
        }
    }
}

impl RecConfig {
    /// Generates the trace.
    pub fn generate(&self) -> Vec<TraceRecord> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Zone popularity is itself skewed.
        let zone_sampler = ZipfSampler::new(self.zones.max(1), 1.0);
        let client_sampler = ZipfSampler::new(self.clients.max(1), 0.9);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        while t < self.duration_s {
            let gap = -rng.gen::<f64>().max(1e-12).ln() / self.mean_rate_qps;
            t += gap;
            if t >= self.duration_s {
                break;
            }
            let zone = zone_sampler.sample(&mut rng);
            let host = match rng.gen_range(0..4) {
                0 => "www",
                1 => "mail",
                2 => "api",
                _ => "cdn",
            };
            let qname =
                ldp_wire::Name::parse(&format!("{host}.zone{zone:04}.example")).expect("name");
            let mut rec = TraceRecord::udp_query(
                (t * 1e6) as u64,
                client_addr(client_sampler.sample(&mut rng)),
                rng.gen_range(1024..65535),
                qname,
                sample_qtype(&mut rng),
            );
            rec.message.header.recursion_desired = true;
            out.push(rec);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_trace::TraceStats;
    use std::collections::HashMap;

    #[test]
    fn rate_close_to_target() {
        let cfg = BRootConfig {
            duration_s: 30.0,
            mean_rate_qps: 1000.0,
            ..BRootConfig::default()
        };
        let trace = cfg.generate();
        let rate = trace.len() as f64 / 30.0;
        assert!((rate - 1000.0).abs() < 100.0, "rate {rate}");
        // Time-ordered.
        for w in trace.windows(2) {
            assert!(w[0].time_us <= w[1].time_us);
        }
    }

    #[test]
    fn protocol_and_do_mixes() {
        let cfg = BRootConfig {
            duration_s: 20.0,
            mean_rate_qps: 2000.0,
            ..BRootConfig::default()
        };
        let trace = cfg.generate();
        let tcp = trace.iter().filter(|r| r.protocol == Protocol::Tcp).count() as f64
            / trace.len() as f64;
        let do_share = trace.iter().filter(|r| r.dnssec_ok()).count() as f64 / trace.len() as f64;
        assert!((tcp - 0.03).abs() < 0.01, "tcp share {tcp}");
        assert!((do_share - 0.723).abs() < 0.02, "do share {do_share}");
    }

    #[test]
    fn client_distribution_heavy_tailed() {
        let cfg = BRootConfig {
            duration_s: 60.0,
            mean_rate_qps: 5000.0,
            clients: 10_000,
            ..BRootConfig::default()
        };
        let trace = cfg.generate();
        let mut per_client: HashMap<std::net::IpAddr, u64> = HashMap::new();
        for r in &trace {
            *per_client.entry(r.src).or_default() += 1;
        }
        let mut counts: Vec<u64> = per_client.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top1pct: u64 = counts.iter().take(per_client.len() / 100).sum();
        assert!(
            top1pct as f64 / total as f64 > 0.5,
            "top 1% share {}",
            top1pct as f64 / total as f64
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = BRootConfig {
            duration_s: 5.0,
            ..BRootConfig::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        let c = BRootConfig {
            seed: 2,
            duration_s: 5.0,
            ..BRootConfig::default()
        }
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn rec_trace_matches_table1_shape() {
        let trace = RecConfig {
            duration_s: 600.0,
            ..RecConfig::default()
        }
        .generate();
        let stats = TraceStats::compute(&trace);
        assert!(stats.client_ips <= 91);
        assert!(stats.interarrival_mean_s > 0.05, "slow trace expected");
        // Names spread across many zones.
        let zones: std::collections::HashSet<_> = trace
            .iter()
            .filter_map(|r| r.qname().and_then(|n| n.ancestor(2)))
            .collect();
        assert!(zones.len() > 100, "only {} zones", zones.len());
    }
}
