//! Zipf-distributed sampling for heavy-tailed client populations.
//!
//! Root-server clients are extremely skewed (Figure 15c; also Castro et
//! al.'s "A Day at the Root"): a handful of big recursive farms generate
//! most queries while most clients appear a few times. A Zipf(α) rank
//! distribution with α ≈ 1.3 over the client population reproduces both
//! headline statistics the paper reports.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples ranks `0..n` with probability ∝ (rank+1)^(−α).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative weights, normalized to end at 1.0.
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler (O(n) precompute, O(log n) per sample).
    pub fn new(n: usize, alpha: f64) -> ZipfSampler {
        assert!(n > 0, "population must be non-empty");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += ((rank + 1) as f64).powf(-alpha);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }

    /// Exact probability mass of a rank (for tests).
    pub fn mass(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[rank] - self.cumulative[rank - 1]
        }
    }
}

/// Convenience: draws `samples` ranks and returns per-rank counts.
pub fn sample_counts(n: usize, alpha: f64, samples: usize, seed: u64) -> Vec<u64> {
    let sampler = ZipfSampler::new(n, alpha);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0u64; n];
    for _ in 0..samples {
        counts[sampler.sample(&mut rng)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_sums_to_one() {
        let s = ZipfSampler::new(100, 1.3);
        let total: f64 = (0..100).map(|r| s.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_most_likely() {
        let s = ZipfSampler::new(1000, 1.3);
        assert!(s.mass(0) > s.mass(1));
        assert!(s.mass(1) > s.mass(100));
    }

    #[test]
    fn sampling_matches_mass() {
        let counts = sample_counts(50, 1.3, 100_000, 7);
        let s = ZipfSampler::new(50, 1.3);
        let observed = counts[0] as f64 / 100_000.0;
        assert!(
            (observed - s.mass(0)).abs() < 0.01,
            "{observed} vs {}",
            s.mass(0)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            sample_counts(100, 1.3, 10_000, 9),
            sample_counts(100, 1.3, 10_000, 9)
        );
        assert_ne!(
            sample_counts(100, 1.3, 10_000, 9),
            sample_counts(100, 1.3, 10_000, 10)
        );
    }

    #[test]
    fn heavy_tail_shape_matches_figure_15c() {
        // With α≈1.3 over 20k clients and 40 queries/client average, the
        // top 1% of clients should carry well over half the load and most
        // clients should stay under 10 queries — the Figure 15c shape.
        let n = 20_000;
        let counts = sample_counts(n, 1.3, 800_000, 42);
        let mut sorted: Vec<u64> = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sorted.iter().sum();
        let top1pct: u64 = sorted.iter().take(n / 100).sum();
        let share = top1pct as f64 / total as f64;
        assert!(share > 0.55, "top-1% share {share} too small");
        let quiet = counts.iter().filter(|&&c| c < 10).count() as f64 / n as f64;
        assert!(quiet > 0.6, "quiet-client fraction {quiet} too small");
    }

    #[test]
    #[should_panic]
    fn empty_population_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
