//! Fixed-interval synthetic traces — syn-0 … syn-4 of Table 1.
//!
//! Each trace has a fixed query inter-arrival (1 s down to 0.1 ms), runs
//! for a fixed duration, and gives every query a unique name so replayed
//! queries can be matched to originals after the fact (§4.1).

use ldp_trace::TraceRecord;
use ldp_wire::RrType;

use crate::names::{client_addr, unique_qname};

/// Configuration for a fixed-interval trace.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Fixed inter-arrival between queries, microseconds.
    pub interarrival_us: u64,
    /// Trace duration, seconds.
    pub duration_s: u64,
    /// Number of distinct client addresses to rotate through.
    pub clients: usize,
    /// Domain under which unique names are generated (the server hosts
    /// this with a wildcard, §4.2).
    pub domain: &'static str,
}

impl SyntheticConfig {
    /// The Table 1 syn-N trace: `syn(0)` = 1 s inter-arrival …
    /// `syn(4)` = 0.1 ms.
    pub fn syn(level: u32) -> SyntheticConfig {
        let interarrival_us = match level {
            0 => 1_000_000,
            1 => 100_000,
            2 => 10_000,
            3 => 1_000,
            4 => 100,
            other => panic!("syn-{other} is not defined by the paper"),
        };
        // Table 1 client counts: 3k for syn-0, ~10k beyond.
        let clients = match level {
            0 => 3_000,
            1 => 9_700,
            _ => 10_000,
        };
        SyntheticConfig {
            interarrival_us,
            // Table 1: the syn traces run for 60 minutes.
            duration_s: 3600,
            clients,
            domain: "example.com",
        }
    }

    /// Expected number of queries.
    pub fn expected_queries(&self) -> u64 {
        self.duration_s * 1_000_000 / self.interarrival_us
    }

    /// Generates the trace.
    pub fn generate(&self) -> Vec<TraceRecord> {
        let total = self.expected_queries();
        let mut out = Vec::with_capacity(total as usize);
        for i in 0..total {
            let rank = (i as usize) % self.clients.max(1);
            let mut rec = TraceRecord::udp_query(
                i * self.interarrival_us,
                client_addr(rank),
                (10_000 + (i % 50_000)) as u16,
                unique_qname(i, self.domain),
                RrType::A,
            );
            rec.message.header.id = (i % 65_536) as u16;
            out.push(rec);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_trace::TraceStats;

    #[test]
    fn syn_levels_match_table1() {
        assert_eq!(SyntheticConfig::syn(0).interarrival_us, 1_000_000);
        assert_eq!(SyntheticConfig::syn(4).interarrival_us, 100);
        assert_eq!(SyntheticConfig::syn(0).expected_queries(), 3_600);
        assert_eq!(SyntheticConfig::syn(2).expected_queries(), 360_000);
        assert_eq!(SyntheticConfig::syn(4).expected_queries(), 36_000_000);
    }

    #[test]
    fn generated_trace_has_fixed_interarrival() {
        let trace = SyntheticConfig::syn(1).generate();
        assert_eq!(trace.len(), 36_000);
        let stats = TraceStats::compute(&trace);
        assert!((stats.interarrival_mean_s - 0.1).abs() < 1e-9);
        assert!(stats.interarrival_stddev_s < 1e-9);
    }

    #[test]
    fn names_are_unique() {
        let trace = SyntheticConfig {
            duration_s: 60,
            ..SyntheticConfig::syn(1)
        }
        .generate();
        let mut names = std::collections::HashSet::new();
        for rec in &trace {
            assert!(names.insert(rec.qname().unwrap().clone()));
        }
    }

    #[test]
    fn clients_rotate() {
        let cfg = SyntheticConfig {
            interarrival_us: 1000,
            duration_s: 1,
            clients: 7,
            domain: "example.com",
        };
        let trace = cfg.generate();
        let distinct: std::collections::HashSet<_> = trace.iter().map(|r| r.src).collect();
        assert_eq!(distinct.len(), 7);
    }

    #[test]
    #[should_panic]
    fn syn5_undefined() {
        SyntheticConfig::syn(5);
    }
}
