//! Synthetic zones backing the workload generators.
//!
//! The paper replays root traffic against "a real DNS root zone file".
//! That file is public but changes daily; for reproducibility this module
//! synthesizes a root zone with the same structure — NS delegations plus
//! glue for every TLD the workload can query — and an `example.com` zone
//! with wildcards for the unique-name synthetic traces (§4.2).

use std::net::{IpAddr, Ipv4Addr};

use ldp_wire::{Name, RData, Record};
use ldp_zone::dnssec::{sign_zone, SigningConfig};
use ldp_zone::Zone;

use crate::names::COMMON_TLDS;

/// Builds a root-like zone delegating every TLD in the pool (plus `extra`
/// additional invented TLDs for bulk), with two nameservers and glue per
/// delegation — the record shape of a real root referral.
pub fn synthetic_root_zone(extra_tlds: usize) -> Zone {
    let mut zone = Zone::with_fake_soa(Name::root());
    // Root's own NS set.
    for i in 0..13u8 {
        let ns = Name::parse(&format!("{}.root-servers.net", (b'a' + i) as char)).unwrap();
        zone.add(Record::new(Name::root(), 518400, RData::Ns(ns.clone())))
            .unwrap();
        zone.add(Record::new(
            ns,
            518400,
            RData::A(Ipv4Addr::new(198, 41, i, 4)),
        ))
        .unwrap();
    }
    let tlds: Vec<String> = COMMON_TLDS
        .iter()
        .map(|s| s.to_string())
        .chain((0..extra_tlds).map(|i| format!("tld{i:04}")))
        .collect();
    for (idx, tld) in tlds.iter().enumerate() {
        let owner = Name::parse(tld).unwrap();
        for k in 0..2u8 {
            let ns = Name::parse(&format!("ns{k}.{tld}-servers.net")).unwrap();
            zone.add(Record::new(owner.clone(), 172_800, RData::Ns(ns.clone())))
                .unwrap();
            zone.add(Record::new(
                ns,
                172_800,
                RData::A(Ipv4Addr::new(
                    192,
                    (idx / 200) as u8 + 10,
                    (idx % 200) as u8,
                    10 + k,
                )),
            ))
            .unwrap();
        }
        // DS so signed referrals grow under DO (Figure 10's mechanism).
        zone.add(Record::new(
            owner,
            86_400,
            RData::Ds {
                key_tag: idx as u16,
                algorithm: 8,
                digest_type: 2,
                digest: vec![0xD5; 32],
            },
        ))
        .unwrap();
    }
    zone
}

/// Same zone, DNSSEC-signed with the given config (§5.1 sweeps ZSK sizes).
pub fn signed_root_zone(extra_tlds: usize, config: SigningConfig) -> Zone {
    let mut zone = synthetic_root_zone(extra_tlds);
    sign_zone(&mut zone, config);
    zone
}

/// The wildcard `example.com` zone used by the synthetic-trace replays:
/// answers any name under the domain (§4.2: "host names in example.com
/// with wildcards, so that it can respond all the queries within that
/// domain").
pub fn wildcard_example_zone() -> Zone {
    let mut zone = Zone::with_fake_soa(Name::parse("example.com").unwrap());
    zone.add(Record::new(
        Name::parse("example.com").unwrap(),
        3600,
        RData::Ns(Name::parse("ns1.example.com").unwrap()),
    ))
    .unwrap();
    zone.add(Record::new(
        Name::parse("ns1.example.com").unwrap(),
        3600,
        RData::A(Ipv4Addr::new(192, 0, 2, 53)),
    ))
    .unwrap();
    zone.add(Record::new(
        Name::parse("*.example.com").unwrap(),
        60,
        RData::A(Ipv4Addr::new(192, 0, 2, 80)),
    ))
    .unwrap();
    zone
}

/// The conventional address the wildcard server binds in simulations.
pub fn wildcard_server_addr() -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(192, 0, 2, 53))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::RrType;
    use ldp_zone::LookupOutcome;

    #[test]
    fn root_zone_refers_all_common_tlds() {
        let zone = synthetic_root_zone(0);
        assert!(zone.validate().is_ok());
        for tld in COMMON_TLDS {
            let q = Name::parse(&format!("www.test.{tld}")).unwrap();
            match zone.lookup(&q, RrType::A, false) {
                LookupOutcome::Delegation(r) => {
                    assert_eq!(r.ns_records.len(), 2);
                    assert_eq!(r.glue.len(), 2, "glue for {tld}");
                }
                other => panic!("{tld}: {other:?}"),
            }
        }
    }

    #[test]
    fn junk_tlds_nxdomain() {
        let zone = synthetic_root_zone(0);
        let q = Name::parse("foo.invalid42").unwrap();
        assert!(matches!(
            zone.lookup(&q, RrType::A, false),
            LookupOutcome::NxDomain { .. }
        ));
    }

    #[test]
    fn extra_tlds_scale() {
        let zone = synthetic_root_zone(500);
        let q = Name::parse("x.tld0499").unwrap();
        assert!(matches!(
            zone.lookup(&q, RrType::A, false),
            LookupOutcome::Delegation(_)
        ));
        assert!(zone.record_count() > 1500);
    }

    #[test]
    fn signed_root_has_bigger_referrals() {
        let plain = synthetic_root_zone(0);
        let signed = signed_root_zone(0, SigningConfig::zsk2048());
        let q = Name::parse("www.test.com").unwrap();
        let plain_ref = match plain.lookup(&q, RrType::A, true) {
            LookupOutcome::Delegation(r) => r,
            other => panic!("{other:?}"),
        };
        let signed_ref = match signed.lookup(&q, RrType::A, true) {
            LookupOutcome::Delegation(r) => r,
            other => panic!("{other:?}"),
        };
        let size = |r: &ldp_zone::Referral| -> usize {
            r.ns_records
                .iter()
                .chain(r.glue.iter())
                .chain(r.ds_records.iter())
                .map(|rec| rec.wire_size_estimate())
                .sum()
        };
        assert!(size(&signed_ref) > size(&plain_ref) + 200);
    }

    #[test]
    fn wildcard_zone_answers_anything_under_domain() {
        let zone = wildcard_example_zone();
        for name in [
            "a.example.com",
            "u0000deadbeef.example.com",
            "x.y.example.com",
        ] {
            let q = Name::parse(name).unwrap();
            assert!(
                matches!(
                    zone.lookup(&q, RrType::A, false),
                    LookupOutcome::Answer { .. }
                ),
                "{name}"
            );
        }
    }
}
