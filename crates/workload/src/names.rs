//! Deterministic name and address pools for synthetic traces.

use std::net::{IpAddr, Ipv4Addr};

use ldp_wire::{Name, RrType};
use rand::rngs::StdRng;
use rand::Rng;

/// Realistic TLD label pool: the popular TLDs that dominate root traffic.
pub const COMMON_TLDS: &[&str] = &[
    "com", "net", "org", "arpa", "de", "uk", "cn", "jp", "io", "ru", "nl", "info", "br", "fr",
    "edu", "gov", "au", "it", "pl", "biz",
];

/// Query-type mix observed at roots: A dominates, then AAAA, then the
/// rest. Fractions are cumulative.
const QTYPE_MIX: &[(f64, RrType)] = &[
    (0.55, RrType::A),
    (0.80, RrType::Aaaa),
    (0.88, RrType::Ns),
    (0.93, RrType::Mx),
    (0.96, RrType::Txt),
    (0.99, RrType::Ds),
    (1.00, RrType::Soa),
];

/// Draws a query type from the root-traffic mix.
pub fn sample_qtype(rng: &mut StdRng) -> RrType {
    let u: f64 = rng.gen();
    for &(cum, t) in QTYPE_MIX {
        if u <= cum {
            return t;
        }
    }
    RrType::A
}

/// Generates a qname for root traffic: a blend of names under real TLDs
/// (answerable with a referral) and junk names under nonexistent TLDs
/// (answerable with NXDOMAIN) — roots see a lot of both.
pub fn sample_root_qname(rng: &mut StdRng, junk_fraction: f64) -> Name {
    if rng.gen::<f64>() < junk_fraction {
        // Junk single-label or dotted garbage → NXDOMAIN from the root.
        let label = random_label(rng, 8);
        Name::parse(&format!("{label}.invalid{}", rng.gen_range(0..100))).expect("generated name")
    } else {
        let tld = COMMON_TLDS[rng.gen_range(0..COMMON_TLDS.len())];
        let sld = random_label(rng, 10);
        let host = if rng.gen::<f64>() < 0.5 {
            "www.".to_string()
        } else {
            String::new()
        };
        Name::parse(&format!("{host}{sld}.{tld}")).expect("generated name")
    }
}

/// Generates a qname guaranteed unique across the trace, used by the
/// fidelity experiments to match queries with replies (§4.1: "Each query
/// uses a unique name").
pub fn unique_qname(index: u64, domain: &str) -> Name {
    Name::parse(&format!("u{index:012x}.{domain}")).expect("unique name")
}

/// Deterministic client address pool: maps client ranks to addresses
/// spread over the 10/8 space (plenty for a million clients).
pub fn client_addr(rank: usize) -> IpAddr {
    let r = rank as u32;
    IpAddr::V4(Ipv4Addr::new(
        10,
        (r >> 16) as u8,
        (r >> 8) as u8,
        (r & 0xFF) as u8,
    ))
}

fn random_label(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn qtype_mix_dominated_by_a() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = 0;
        for _ in 0..10_000 {
            if sample_qtype(&mut rng) == RrType::A {
                a += 1;
            }
        }
        let share = a as f64 / 10_000.0;
        assert!((share - 0.55).abs() < 0.03, "{share}");
    }

    #[test]
    fn root_qnames_mix_junk_and_real() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut junk = 0;
        for _ in 0..1000 {
            let name = sample_root_qname(&mut rng, 0.3);
            let tld = name.labels().last().unwrap().to_vec();
            let tld = String::from_utf8(tld).unwrap();
            if tld.starts_with("invalid") {
                junk += 1;
            } else {
                assert!(COMMON_TLDS.contains(&tld.as_str()), "unexpected TLD {tld}");
            }
        }
        assert!((250..350).contains(&junk), "junk count {junk}");
    }

    #[test]
    fn unique_names_unique() {
        let a = unique_qname(1, "example.com");
        let b = unique_qname(2, "example.com");
        assert_ne!(a, b);
        assert!(a.is_subdomain_of(&Name::parse("example.com").unwrap()));
    }

    #[test]
    fn client_addrs_distinct() {
        let mut seen = std::collections::HashSet::new();
        for rank in 0..100_000 {
            assert!(seen.insert(client_addr(rank)), "duplicate at {rank}");
        }
    }
}
