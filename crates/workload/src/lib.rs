//! Synthetic DNS workloads calibrated to the paper's traces (Table 1).
//!
//! The original evaluation used private B-Root DITL captures and a
//! department-level recursive trace. This crate is the documented
//! substitution: generators that reproduce the *distributional* properties
//! those experiments depend on —
//!
//! * heavy-tailed client populations (Figure 15c: ~1% of clients send ~75%
//!   of queries; ~81% of clients send <10 queries) via [`zipf`],
//! * Poisson arrivals around a configurable mean rate with slow rate
//!   modulation (B-Root's rate "varies over time", §4.2),
//! * the observed protocol mix (≈3% TCP) and DNSSEC share (≈72.3% DO),
//! * fixed-interval synthetic traces syn-0…syn-4 with unique query names
//!   (§4.1),
//! * a recursive-style workload spread over hundreds of zones (Rec-17).
//!
//! [`zones`] builds the synthetic root zone (with realistic TLD
//! delegations) that answers root-trace replays, replacing the real root
//! zone file the paper used.

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod broot;
pub mod names;
pub mod synthetic;
pub mod zipf;
pub mod zones;

pub use broot::{BRootConfig, RecConfig};
pub use synthetic::SyntheticConfig;
pub use zipf::ZipfSampler;
