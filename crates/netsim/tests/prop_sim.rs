//! Property tests for the simulator core: per-pair FIFO delivery, clock
//! monotonicity, and bit-for-bit determinism over arbitrary workloads.

use ldp_netsim::{Ctx, Node, NodeEvent, Packet, Payload, Sim, SimDuration, SimTime};
use proptest::prelude::*;
use std::net::SocketAddr;

/// Sends a scripted sequence of numbered datagrams at given times.
struct Scripted {
    addr: SocketAddr,
    target: SocketAddr,
    sends: Vec<(u64, u32)>, // (time µs, sequence number)
}

impl Node for Scripted {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for (i, &(t, _)) in self.sends.iter().enumerate() {
            ctx.set_timer(SimTime::from_micros(t) - SimTime::ZERO, i as u64);
        }
    }
    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
        if let NodeEvent::Timer { token } = event {
            let (_, seq) = self.sends[token as usize];
            ctx.send(Packet::udp(
                self.addr,
                self.target,
                seq.to_be_bytes().to_vec(),
            ));
        }
    }
}

/// Records (arrival time, sequence) for every datagram.
struct Sink {
    received: Vec<(SimTime, u32)>,
}

impl Node for Sink {
    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
        if let NodeEvent::Packet(p) = event {
            if let Payload::Udp(d) = &p.payload {
                let seq = u32::from_be_bytes(d[..4].try_into().unwrap());
                self.received.push((ctx.now(), seq));
            }
        }
    }
}

fn run_world(sends: Vec<(u64, u32)>, delay_us: u64, bandwidth: u64) -> Vec<(SimTime, u32)> {
    let mut sim = Sim::new();
    let tx = sim.add_node(Box::new(Scripted {
        addr: "10.0.0.1:1".parse().unwrap(),
        target: "10.0.0.2:53".parse().unwrap(),
        sends,
    }));
    let rx = sim.add_node(Box::new(Sink { received: vec![] }));
    sim.bind("10.0.0.1".parse().unwrap(), tx);
    sim.bind("10.0.0.2".parse().unwrap(), rx);
    sim.set_pair_delay(tx, rx, SimDuration::from_micros(delay_us));
    sim.set_bandwidth(tx, bandwidth);
    sim.run();
    sim.node_as::<Sink>(rx).unwrap().received.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Everything sent is delivered exactly once, in send order (same
    /// source/destination pair ⇒ FIFO), with monotone arrival times, no
    /// earlier than the link delay allows.
    #[test]
    fn fifo_and_complete_delivery(
        times in proptest::collection::vec(0u64..1_000_000, 1..50),
        delay_us in 1u64..100_000,
        bandwidth in prop_oneof![Just(0u64), Just(1_000_000u64), Just(1_000_000_000u64)],
    ) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let sends: Vec<(u64, u32)> = sorted.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        let received = run_world(sends.clone(), delay_us, bandwidth);
        prop_assert_eq!(received.len(), sends.len(), "no loss, no duplication");
        // Arrival times monotone; sequence order preserved.
        for w in received.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            prop_assert!(w[0].1 < w[1].1, "reordering on one link");
        }
        // No packet arrives before its send time + propagation.
        for (arrival, seq) in &received {
            let sent = sends[*seq as usize].0;
            prop_assert!(
                arrival.as_micros() >= sent + delay_us,
                "seq {seq} arrived at {arrival} < sent {sent} + {delay_us}"
            );
        }
    }

    /// Identical inputs produce identical event histories (determinism).
    #[test]
    fn deterministic_replay(
        times in proptest::collection::vec(0u64..100_000, 1..30),
        delay_us in 1u64..10_000,
    ) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let sends: Vec<(u64, u32)> = sorted.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        let a = run_world(sends.clone(), delay_us, 0);
        let b = run_world(sends, delay_us, 0);
        prop_assert_eq!(a, b);
    }

    /// Serialization delay never *reduces* latency, and at finite
    /// bandwidth arrivals are spaced by at least the transmission time.
    #[test]
    fn bandwidth_only_adds_delay(
        n in 2usize..20,
        delay_us in 1u64..1_000,
    ) {
        let sends: Vec<(u64, u32)> = (0..n).map(|i| (0u64, i as u32)).collect();
        let unlimited = run_world(sends.clone(), delay_us, 0);
        let limited = run_world(sends, delay_us, 8_000_000); // 8 Mb/s
        for (u, l) in unlimited.iter().zip(&limited) {
            prop_assert!(l.0 >= u.0);
        }
        // 4-byte payload + 28-byte headers = 32 B = 32 µs at 8 Mb/s.
        for w in limited.windows(2) {
            let gap = w[1].0 - w[0].0;
            prop_assert!(gap >= SimDuration::from_micros(30), "gap {gap}");
        }
    }
}
