//! Packet loss and jitter injection for failure testing.
//!
//! The simulated links are lossless by default (matching the paper's LAN
//! testbed). Loss and jitter models let tests exercise replay behaviour
//! under degraded networks without touching the protocol state machines.

use std::cell::RefCell;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::{Packet, Payload};
use crate::time::SimDuration;

/// Which packets a loss model may drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossScope {
    /// Drop any packet.
    All,
    /// Drop only UDP datagrams (TCP is modeled without retransmission, so
    /// dropping TCP segments would wedge connections; restrict loss to UDP
    /// unless a test wants exactly that wedging).
    UdpOnly,
}

/// Seeded random loss + jitter model.
#[derive(Debug)]
pub struct LossModel {
    drop_probability: f64,
    jitter_max: SimDuration,
    scope: LossScope,
    rng: RefCell<StdRng>,
}

impl LossModel {
    /// No loss, no jitter.
    pub fn none() -> LossModel {
        LossModel {
            drop_probability: 0.0,
            jitter_max: SimDuration::ZERO,
            scope: LossScope::All,
            rng: RefCell::new(StdRng::seed_from_u64(0)),
        }
    }

    /// Uniform random loss with probability `p` over `scope`.
    pub fn random(p: f64, scope: LossScope, seed: u64) -> LossModel {
        LossModel {
            drop_probability: p.clamp(0.0, 1.0),
            jitter_max: SimDuration::ZERO,
            scope,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Adds uniform random extra delay in `[0, max)` to every delivery.
    pub fn with_jitter(mut self, max: SimDuration) -> LossModel {
        self.jitter_max = max;
        self
    }

    /// Decides whether to drop this packet.
    pub fn drop(&self, packet: &Packet) -> bool {
        if self.drop_probability <= 0.0 {
            return false;
        }
        let in_scope = match self.scope {
            LossScope::All => true,
            LossScope::UdpOnly => matches!(packet.payload, Payload::Udp(_)),
        };
        in_scope && self.rng.borrow_mut().gen::<f64>() < self.drop_probability
    }

    /// Extra delivery delay for the next packet.
    pub fn jitter(&self) -> SimDuration {
        if self.jitter_max == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        SimDuration(self.rng.borrow_mut().gen_range(0..self.jitter_max.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TcpWire;
    use std::net::SocketAddr;

    fn udp_packet() -> Packet {
        let a: SocketAddr = "10.0.0.1:1".parse().unwrap();
        let b: SocketAddr = "10.0.0.2:2".parse().unwrap();
        Packet::udp(a, b, vec![0; 10])
    }

    fn tcp_packet() -> Packet {
        let a: SocketAddr = "10.0.0.1:1".parse().unwrap();
        let b: SocketAddr = "10.0.0.2:2".parse().unwrap();
        Packet::tcp(a, b, TcpWire::Syn)
    }

    #[test]
    fn none_never_drops() {
        let m = LossModel::none();
        for _ in 0..1000 {
            assert!(!m.drop(&udp_packet()));
        }
        assert_eq!(m.jitter(), SimDuration::ZERO);
    }

    #[test]
    fn full_loss_drops_everything_in_scope() {
        let m = LossModel::random(1.0, LossScope::All, 1);
        assert!(m.drop(&udp_packet()));
        assert!(m.drop(&tcp_packet()));
    }

    #[test]
    fn udp_only_scope_spares_tcp() {
        let m = LossModel::random(1.0, LossScope::UdpOnly, 1);
        assert!(m.drop(&udp_packet()));
        assert!(!m.drop(&tcp_packet()));
    }

    #[test]
    fn loss_rate_approximates_probability() {
        let m = LossModel::random(0.3, LossScope::All, 42);
        let drops = (0..10_000).filter(|_| m.drop(&udp_packet())).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn seeded_reproducibility() {
        let m1 = LossModel::random(0.5, LossScope::All, 7);
        let m2 = LossModel::random(0.5, LossScope::All, 7);
        let d1: Vec<bool> = (0..100).map(|_| m1.drop(&udp_packet())).collect();
        let d2: Vec<bool> = (0..100).map(|_| m2.drop(&udp_packet())).collect();
        assert_eq!(d1, d2);
    }

    #[test]
    fn jitter_bounded() {
        let m = LossModel::none().with_jitter(SimDuration::from_millis(5));
        for _ in 0..1000 {
            assert!(m.jitter() < SimDuration::from_millis(5));
        }
    }
}
