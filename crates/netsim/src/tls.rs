//! TLS session emulation over the simulated TCP stream.
//!
//! The paper's TLS experiments (§5.2) measure handshake round trips, record
//! overhead, per-session memory, and crypto CPU cost — never
//! confidentiality. This layer therefore emulates TLS 1.2 *framing*:
//!
//! * a 2-round-trip handshake with realistically-sized flights
//!   (ClientHello ≈ 289 B; ServerHello+Certificate+Done ≈ 3 kB;
//!   ClientKeyExchange+Finished ≈ 196 B; ServerFinished ≈ 51 B), so a TLS
//!   query over a fresh connection costs 4 RTTs total (1 TCP + 2 TLS + 1
//!   query), matching the paper's Figure 15b analysis,
//! * 5-byte record headers plus a 24-byte MAC/padding charge per
//!   application record (bandwidth accounting),
//! * application data queued during the handshake and flushed on
//!   completion.
//!
//! Both endpoints embed a [`TlsEndpoint`] above their `TcpStack`
//! connection; bytes produced here ride as ordinary TCP data.

/// Handshake flight sizes (bytes), modeled on a typical RSA-2048
/// certificate exchange.
pub const CLIENT_HELLO_LEN: usize = 289;
pub const SERVER_HELLO_LEN: usize = 3075;
pub const CLIENT_FINISH_LEN: usize = 196;
pub const SERVER_FINISH_LEN: usize = 51;

/// Per-record overhead: 5-byte header + MAC/padding.
pub const RECORD_OVERHEAD: usize = 29;

/// Which side of the session this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsRole {
    Client,
    Server,
}

/// Outputs from feeding the endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsOutput {
    /// Bytes to write to the underlying TCP connection.
    SendBytes(Vec<u8>),
    /// Handshake finished; application data may now flow.
    HandshakeComplete,
    /// Decrypted (well, unframed) application bytes.
    AppData(Vec<u8>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Client: waiting for TCP connect; Server: waiting for ClientHello.
    Idle,
    /// Client sent ClientHello, awaiting ServerHello flight.
    AwaitServerHello,
    /// Server sent its flight, awaiting ClientKeyExchange+Finished.
    AwaitClientFinish,
    /// Client sent Finished, awaiting ServerFinished.
    AwaitServerFinish,
    Established,
}

/// Wire frame types (1-byte tag + 4-byte length + filler body).
const TAG_CLIENT_HELLO: u8 = 1;
const TAG_SERVER_HELLO: u8 = 2;
const TAG_CLIENT_FINISH: u8 = 3;
const TAG_SERVER_FINISH: u8 = 4;
const TAG_APPDATA: u8 = 5;

/// One endpoint of an emulated TLS session.
#[derive(Debug)]
pub struct TlsEndpoint {
    role: TlsRole,
    state: State,
    /// Reassembly buffer for incoming TCP bytes.
    inbuf: Vec<u8>,
    /// Application writes queued during the handshake.
    queued: Vec<Vec<u8>>,
    /// Bytes of handshake traffic sent (CPU/bandwidth accounting).
    pub handshake_bytes_sent: usize,
}

impl TlsEndpoint {
    pub fn new(role: TlsRole) -> TlsEndpoint {
        TlsEndpoint {
            role,
            state: State::Idle,
            inbuf: Vec::new(),
            queued: Vec::new(),
            handshake_bytes_sent: 0,
        }
    }

    /// True once application data can flow.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// Client-side: the TCP connection is up — send ClientHello.
    pub fn on_tcp_connected(&mut self) -> Vec<TlsOutput> {
        if self.role != TlsRole::Client || self.state != State::Idle {
            return Vec::new();
        }
        self.state = State::AwaitServerHello;
        vec![self.frame_out(TAG_CLIENT_HELLO, CLIENT_HELLO_LEN)]
    }

    /// Queues (or frames) application bytes for sending.
    pub fn write_app_data(&mut self, data: &[u8]) -> Vec<TlsOutput> {
        if self.state == State::Established {
            vec![TlsOutput::SendBytes(frame(TAG_APPDATA, data.to_vec()))]
        } else {
            self.queued.push(data.to_vec());
            Vec::new()
        }
    }

    /// Feeds received TCP bytes; returns handshake progress and app data.
    pub fn on_bytes(&mut self, bytes: &[u8]) -> Vec<TlsOutput> {
        self.inbuf.extend_from_slice(bytes);
        let mut out = Vec::new();
        while let Some((tag, body)) = self.pop_frame() {
            match (self.role, self.state, tag) {
                (TlsRole::Server, State::Idle, TAG_CLIENT_HELLO) => {
                    self.state = State::AwaitClientFinish;
                    out.push(self.frame_out(TAG_SERVER_HELLO, SERVER_HELLO_LEN));
                }
                (TlsRole::Client, State::AwaitServerHello, TAG_SERVER_HELLO) => {
                    self.state = State::AwaitServerFinish;
                    out.push(self.frame_out(TAG_CLIENT_FINISH, CLIENT_FINISH_LEN));
                }
                (TlsRole::Server, State::AwaitClientFinish, TAG_CLIENT_FINISH) => {
                    self.state = State::Established;
                    out.push(self.frame_out(TAG_SERVER_FINISH, SERVER_FINISH_LEN));
                    out.push(TlsOutput::HandshakeComplete);
                    out.extend(self.flush_queued());
                }
                (TlsRole::Client, State::AwaitServerFinish, TAG_SERVER_FINISH) => {
                    self.state = State::Established;
                    out.push(TlsOutput::HandshakeComplete);
                    out.extend(self.flush_queued());
                }
                (_, State::Established, TAG_APPDATA) => {
                    out.push(TlsOutput::AppData(body));
                }
                // Anything else is a protocol violation; in emulation we
                // silently drop the frame (a real stack would alert).
                _ => {}
            }
        }
        out
    }

    fn flush_queued(&mut self) -> Vec<TlsOutput> {
        std::mem::take(&mut self.queued)
            .into_iter()
            .map(|d| TlsOutput::SendBytes(frame(TAG_APPDATA, d)))
            .collect()
    }

    fn frame_out(&mut self, tag: u8, body_len: usize) -> TlsOutput {
        self.handshake_bytes_sent += body_len + 5;
        TlsOutput::SendBytes(frame(tag, vec![0u8; body_len]))
    }

    fn pop_frame(&mut self) -> Option<(u8, Vec<u8>)> {
        if self.inbuf.len() < 5 {
            return None;
        }
        let tag = self.inbuf[0];
        let len = u32::from_be_bytes(self.inbuf[1..5].try_into().unwrap()) as usize;
        if self.inbuf.len() < 5 + len {
            return None;
        }
        let body = self.inbuf[5..5 + len].to_vec();
        self.inbuf.drain(..5 + len);
        Some((tag, body))
    }
}

/// Frames a body with the 1-byte tag + 4-byte length header. Application
/// frames additionally charge [`RECORD_OVERHEAD`] filler to model record
/// MAC/padding on the wire.
fn frame(tag: u8, mut body: Vec<u8>) -> Vec<u8> {
    if tag == TAG_APPDATA {
        body.extend(std::iter::repeat_n(0u8, RECORD_OVERHEAD - 5));
    }
    let mut out = Vec::with_capacity(body.len() + 5);
    out.push(tag);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Strips the record-overhead filler from unframed app data. The payload
/// length is recovered by the application's own framing (DNS's 2-byte
/// length prefix), so the trailing filler is harmless; this helper exists
/// for tests that compare exact payloads.
pub fn strip_record_padding(mut data: Vec<u8>) -> Vec<u8> {
    data.truncate(data.len().saturating_sub(RECORD_OVERHEAD - 5));
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the two endpoints against each other in-memory, counting
    /// half-round-trips until both are established.
    #[test]
    fn handshake_takes_two_round_trips() {
        let mut client = TlsEndpoint::new(TlsRole::Client);
        let mut server = TlsEndpoint::new(TlsRole::Server);

        let mut to_server: Vec<Vec<u8>> = Vec::new();
        let mut to_client: Vec<Vec<u8>> = Vec::new();
        for o in client.on_tcp_connected() {
            if let TlsOutput::SendBytes(b) = o {
                to_server.push(b);
            }
        }
        let mut half_trips = 0;
        while !(client.is_established() && server.is_established()) {
            assert!(half_trips < 10, "handshake did not converge");
            // Deliver client→server flight.
            let batch: Vec<_> = std::mem::take(&mut to_server);
            for b in batch {
                for o in server.on_bytes(&b) {
                    if let TlsOutput::SendBytes(r) = o {
                        to_client.push(r);
                    }
                }
            }
            half_trips += 1;
            if client.is_established() && server.is_established() {
                break;
            }
            let batch: Vec<_> = std::mem::take(&mut to_client);
            for b in batch {
                for o in client.on_bytes(&b) {
                    if let TlsOutput::SendBytes(r) = o {
                        to_server.push(r);
                    }
                }
            }
            half_trips += 1;
        }
        // client→server, server→client, client→server(Finished) establishes
        // the server; final server→client Finished establishes the client:
        // 4 half-trips = 2 RTT.
        assert_eq!(half_trips, 4);
    }

    fn established_pair() -> (TlsEndpoint, TlsEndpoint) {
        let mut client = TlsEndpoint::new(TlsRole::Client);
        let mut server = TlsEndpoint::new(TlsRole::Server);
        let mut c2s: Vec<Vec<u8>> = client
            .on_tcp_connected()
            .into_iter()
            .filter_map(|o| match o {
                TlsOutput::SendBytes(b) => Some(b),
                _ => None,
            })
            .collect();
        for _ in 0..3 {
            let mut s2c = Vec::new();
            for b in c2s.drain(..) {
                for o in server.on_bytes(&b) {
                    if let TlsOutput::SendBytes(r) = o {
                        s2c.push(r);
                    }
                }
            }
            for b in s2c {
                for o in client.on_bytes(&b) {
                    if let TlsOutput::SendBytes(r) = o {
                        c2s.push(r);
                    }
                }
            }
        }
        assert!(client.is_established() && server.is_established());
        (client, server)
    }

    #[test]
    fn app_data_roundtrip() {
        let (mut client, mut server) = established_pair();
        let outs = client.write_app_data(b"\x00\x05query");
        assert_eq!(outs.len(), 1);
        let TlsOutput::SendBytes(wire) = &outs[0] else {
            panic!("expected bytes");
        };
        assert!(
            wire.len() > 7 + RECORD_OVERHEAD - 5,
            "record overhead charged"
        );
        let got = server.on_bytes(wire);
        assert_eq!(got.len(), 1);
        match &got[0] {
            TlsOutput::AppData(data) => {
                assert_eq!(&data[..7], b"\x00\x05query");
            }
            other => panic!("expected app data, got {other:?}"),
        }
    }

    #[test]
    fn early_writes_queued_until_established() {
        let mut client = TlsEndpoint::new(TlsRole::Client);
        assert!(client.write_app_data(b"early").is_empty());
        let mut server = TlsEndpoint::new(TlsRole::Server);
        // Drive the handshake; the queued write must flush with the final
        // client flight.
        let mut c2s: Vec<Vec<u8>> = client
            .on_tcp_connected()
            .into_iter()
            .filter_map(|o| match o {
                TlsOutput::SendBytes(b) => Some(b),
                _ => None,
            })
            .collect();
        let mut app_seen = false;
        for _ in 0..4 {
            let mut s2c = Vec::new();
            for b in c2s.drain(..) {
                for o in server.on_bytes(&b) {
                    match o {
                        TlsOutput::SendBytes(r) => s2c.push(r),
                        TlsOutput::AppData(d) => {
                            assert_eq!(&d[..5], b"early");
                            app_seen = true;
                        }
                        _ => {}
                    }
                }
            }
            for b in s2c {
                for o in client.on_bytes(&b) {
                    if let TlsOutput::SendBytes(r) = o {
                        c2s.push(r);
                    }
                }
            }
        }
        assert!(app_seen, "queued write must arrive after handshake");
    }

    #[test]
    fn split_delivery_reassembles() {
        let (mut client, mut server) = established_pair();
        let outs = client.write_app_data(b"chunked");
        let TlsOutput::SendBytes(wire) = &outs[0] else {
            panic!();
        };
        let mut results = Vec::new();
        for chunk in wire.chunks(3) {
            results.extend(server.on_bytes(chunk));
        }
        assert_eq!(results.len(), 1);
        assert!(matches!(&results[0], TlsOutput::AppData(d) if &d[..7] == b"chunked"));
    }

    #[test]
    fn handshake_bytes_accounted() {
        let (client, server) = established_pair();
        assert_eq!(
            client.handshake_bytes_sent,
            CLIENT_HELLO_LEN + CLIENT_FINISH_LEN + 10
        );
        assert_eq!(
            server.handshake_bytes_sent,
            SERVER_HELLO_LEN + SERVER_FINISH_LEN + 10
        );
    }

    #[test]
    fn out_of_order_handshake_frames_dropped() {
        let mut server = TlsEndpoint::new(TlsRole::Server);
        // An app-data frame before the handshake is dropped silently.
        let junk = frame(TAG_APPDATA, b"junk".to_vec());
        assert!(server.on_bytes(&junk).is_empty());
        assert!(!server.is_established());
    }
}
