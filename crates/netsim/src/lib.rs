//! Discrete-event network simulator — the testbed substrate for the
//! LDplayer reproduction.
//!
//! The paper ran its protocol what-if experiments (DNSSEC bandwidth, all-TCP
//! and all-TLS root service, latency vs RTT) on the DETER testbed with real
//! hosts, kernels, and NICs. This crate replaces that hardware with a
//! deterministic in-process simulation that keeps exactly the state the
//! experiments measure:
//!
//! * [`Sim`] — virtual clock + event queue + address routing; nodes are
//!   state machines implementing [`Node`] and communicate only through
//!   simulated packets and timers,
//! * links with configurable one-way delay (so client↔server RTT is an
//!   experiment parameter, Figure 15) and egress bandwidth with
//!   serialization delay (so response size translates into Mb/s, Figure 10),
//! * [`tcp`] — a per-node TCP stack: 3-way handshake, graceful close,
//!   TIME_WAIT (2·MSL) bookkeeping, idle timeouts, optional Nagle-style
//!   write coalescing, and connection-count/memory snapshots (Figures 13/14),
//! * [`tls`] — a TLS-1.2-style session layer emulating handshake rounds and
//!   record overhead without real cryptography (sizes and round trips are
//!   what the experiments measure),
//! * packet loss/jitter injection for failure testing.
//!
//! Determinism: given the same inputs and seeds, every run produces
//! identical event orders and measurements — the repeatability requirement
//! of §2.1.

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod backoff;
pub mod loss;
pub mod packet;
pub mod quic;
pub mod sim;
pub mod tcp;
pub mod time;
pub mod tls;

pub use backoff::Backoff;
pub use loss::LossModel;
pub use packet::{Packet, Payload, TcpWire};
pub use quic::{QuicFrame, QuicServerSessions};
pub use sim::{Action, Ctx, Node, NodeEvent, NodeId, Sim};
pub use tcp::{ConnKey, TcpConfig, TcpEvent, TcpSnapshot, TcpStack, TcpState};
pub use time::{SimDuration, SimTime};
pub use tls::{TlsEndpoint, TlsOutput, TlsRole};
