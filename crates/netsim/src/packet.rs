//! Simulated packets: addressed payloads carried between nodes.

use std::net::SocketAddr;

/// TCP control/data messages exchanged by [`crate::tcp::TcpStack`]s.
///
/// The simulator models TCP at connection-and-message granularity: sequence
/// numbers, windows, and retransmission are abstracted away (simulated links
/// are lossless for TCP), but everything the paper's experiments measure —
/// handshake round trips, connection state lifecycles, TIME_WAIT
/// accumulation, idle-timeout closes, bytes on the wire — is explicit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpWire {
    Syn,
    SynAck,
    Ack,
    /// A chunk of application stream bytes.
    Data(Vec<u8>),
    Fin,
    /// ACK of a FIN (closing handshake).
    FinAck,
    /// Abortive reset (sent to half-open peers, e.g. after restart).
    Rst,
}

impl TcpWire {
    /// Approximate on-wire size, for bandwidth accounting: 40 bytes of
    /// IP+TCP headers plus payload.
    pub fn wire_size(&self) -> usize {
        40 + match self {
            TcpWire::Data(d) => d.len(),
            _ => 0,
        }
    }
}

/// Transport payload of a simulated packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A UDP datagram (28 bytes of headers + body).
    Udp(Vec<u8>),
    /// A TCP segment.
    Tcp(TcpWire),
}

impl Payload {
    /// On-wire size including network/transport headers.
    pub fn wire_size(&self) -> usize {
        match self {
            Payload::Udp(d) => 28 + d.len(),
            Payload::Tcp(t) => t.wire_size(),
        }
    }
}

/// One packet in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub src: SocketAddr,
    pub dst: SocketAddr,
    pub payload: Payload,
}

impl Packet {
    pub fn udp(src: SocketAddr, dst: SocketAddr, data: Vec<u8>) -> Packet {
        Packet {
            src,
            dst,
            payload: Payload::Udp(data),
        }
    }

    pub fn tcp(src: SocketAddr, dst: SocketAddr, wire: TcpWire) -> Packet {
        Packet {
            src,
            dst,
            payload: Payload::Tcp(wire),
        }
    }

    /// On-wire size for serialization-delay and bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        self.payload.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    #[test]
    fn udp_wire_size_includes_headers() {
        let p = Packet::udp(sa("10.0.0.1:4000"), sa("10.0.0.2:53"), vec![0; 100]);
        assert_eq!(p.wire_size(), 128);
    }

    #[test]
    fn tcp_sizes() {
        assert_eq!(TcpWire::Syn.wire_size(), 40);
        assert_eq!(TcpWire::Data(vec![0; 60]).wire_size(), 100);
        let p = Packet::tcp(sa("10.0.0.1:4000"), sa("10.0.0.2:53"), TcpWire::Fin);
        assert_eq!(p.wire_size(), 40);
    }
}
