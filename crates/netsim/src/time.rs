//! Virtual time: nanosecond-resolution instants and durations.
//!
//! Integer nanoseconds keep event ordering exact and runs reproducible —
//! no floating-point drift between trials (repeatability, §2.1 of the
//! paper).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_secs_f64(s: f64) -> SimTime {
        SimTime((s * 1e9).round() as u64)
    }

    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s * 1e9).round() as u64)
    }

    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whole microseconds (truncating), the histogram tick unit.
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Transmission time of `bytes` at `bits_per_sec`.
    pub fn serialization(bytes: usize, bits_per_sec: u64) -> SimDuration {
        if bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        SimDuration(((bits * 1_000_000_000) / bits_per_sec as u128) as u64)
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    pub fn mul_f64(self, f: f64) -> SimDuration {
        SimDuration((self.0 as f64 * f).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0 + o.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, o: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(o.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).0, 3_000_000);
        assert_eq!(SimTime::from_micros(5).0, 5_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1500));
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        // Saturating subtraction of a later time.
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(2),
            SimDuration::ZERO
        );
        assert_eq!(
            t.since(SimTime::from_secs(1)),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn serialization_delay() {
        // 1250 bytes at 1 Gb/s = 10 µs.
        let d = SimDuration::serialization(1250, 1_000_000_000);
        assert_eq!(d, SimDuration::from_micros(10));
        // Zero bandwidth means "infinite" (no serialization delay modeled).
        assert_eq!(SimDuration::serialization(1250, 0), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }
}
