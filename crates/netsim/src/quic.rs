//! DNS-over-QUIC session emulation (RFC 9250-shaped) — the third leg of
//! the paper's opening question ("What if all DNS requests were made over
//! QUIC, TCP or TLS?"), which its evaluation left for future work.
//!
//! What the emulation keeps, because the experiments measure it:
//!
//! * a **1-RTT** combined transport+crypto handshake (QUIC folds the TLS
//!   exchange into its Initial flight), vs TCP's 1 RTT + TLS's 2 more —
//!   so a fresh-connection query costs 2 RTTs end to end,
//! * anti-amplification padding: the client Initial is padded to 1200
//!   bytes (RFC 9000 §8.1), a real bandwidth cost,
//! * connection IDs instead of 4-tuples: sessions survive port changes
//!   and there is **no TIME_WAIT** — state vanishes at idle timeout,
//! * per-session user-space state only (no kernel socket buffers), so the
//!   memory-per-connection is far below TCP's,
//! * datagram transport: one DNS message per QUIC packet (RFC 9250 maps
//!   each query to its own stream; the simulation's lossless links make
//!   stream-level reliability invisible, so streams are elided).
//!
//! Wire layout inside the UDP payload: `[type u8][conn_id u64][body…]`.

use std::collections::HashMap;

use crate::time::SimTime;

/// Packet types on the emulated QUIC wire.
const TYPE_INITIAL: u8 = 1;
const TYPE_ACCEPT: u8 = 2;
const TYPE_APP: u8 = 3;
/// Connection close (idle timeout or explicit): peer forgets the session.
const TYPE_CLOSE: u8 = 4;

/// The padded size of a client Initial (RFC 9000 §8.1 anti-amplification).
pub const INITIAL_SIZE: usize = 1200;
/// Server handshake flight: certificate + crypto, like the TLS ServerHello.
pub const ACCEPT_SIZE: usize = 1100;
/// Per-packet overhead: QUIC short header + AEAD tag.
pub const PACKET_OVERHEAD: usize = 25;

/// Events surfaced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuicFrame {
    /// Client's padded first flight.
    Initial { conn_id: u64 },
    /// Server's handshake completion; the session is usable 1 RTT in.
    Accept { conn_id: u64 },
    /// One DNS message (RFC 9250: one query per stream ≙ one per packet).
    App { conn_id: u64, data: Vec<u8> },
    /// Session teardown.
    Close { conn_id: u64 },
}

/// Encodes a frame into UDP payload bytes.
pub fn encode(frame: &QuicFrame) -> Vec<u8> {
    match frame {
        QuicFrame::Initial { conn_id } => {
            let mut b = vec![0u8; INITIAL_SIZE];
            b[0] = TYPE_INITIAL;
            b[1..9].copy_from_slice(&conn_id.to_be_bytes());
            b
        }
        QuicFrame::Accept { conn_id } => {
            let mut b = vec![0u8; ACCEPT_SIZE];
            b[0] = TYPE_ACCEPT;
            b[1..9].copy_from_slice(&conn_id.to_be_bytes());
            b
        }
        QuicFrame::App { conn_id, data } => {
            let mut b = Vec::with_capacity(9 + data.len() + PACKET_OVERHEAD);
            b.push(TYPE_APP);
            b.extend_from_slice(&conn_id.to_be_bytes());
            b.extend_from_slice(data);
            b.extend(std::iter::repeat_n(0, PACKET_OVERHEAD));
            b
        }
        QuicFrame::Close { conn_id } => {
            let mut b = vec![0u8; 9];
            b[0] = TYPE_CLOSE;
            b[1..9].copy_from_slice(&conn_id.to_be_bytes());
            b
        }
    }
}

/// Decodes a UDP payload into a frame; `None` for non-QUIC payloads.
pub fn decode(payload: &[u8]) -> Option<QuicFrame> {
    if payload.len() < 9 {
        return None;
    }
    let conn_id = u64::from_be_bytes(payload[1..9].try_into().ok()?);
    match payload[0] {
        TYPE_INITIAL => Some(QuicFrame::Initial { conn_id }),
        TYPE_ACCEPT => Some(QuicFrame::Accept { conn_id }),
        TYPE_APP => {
            let body = &payload[9..payload.len().saturating_sub(PACKET_OVERHEAD)];
            Some(QuicFrame::App {
                conn_id,
                data: body.to_vec(),
            })
        }
        TYPE_CLOSE => Some(QuicFrame::Close { conn_id }),
        _ => None,
    }
}

/// Server-side session table: sessions keyed by connection ID with idle
/// expiry, and the counters the resource model reads.
#[derive(Debug, Default)]
pub struct QuicServerSessions {
    sessions: HashMap<u64, SimTime>,
    pub handshakes: u64,
    pub idle_closed: u64,
}

impl QuicServerSessions {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or refreshes) a session; returns true when new.
    pub fn open(&mut self, conn_id: u64, now: SimTime) -> bool {
        let new = self.sessions.insert(conn_id, now).is_none();
        if new {
            self.handshakes += 1;
        }
        new
    }

    /// True (and refreshes activity) when the session exists.
    pub fn touch(&mut self, conn_id: u64, now: SimTime) -> bool {
        match self.sessions.get_mut(&conn_id) {
            Some(last) => {
                *last = now;
                true
            }
            None => false,
        }
    }

    /// Removes a session (peer close).
    pub fn close(&mut self, conn_id: u64) {
        self.sessions.remove(&conn_id);
    }

    /// Expires sessions idle longer than `timeout`, returning the expired
    /// IDs so the owner can notify peers. No TIME_WAIT: state just goes.
    pub fn expire_idle(&mut self, now: SimTime, timeout: crate::time::SimDuration) -> Vec<u64> {
        let expired: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, &last)| now.since(last) >= timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            self.sessions.remove(id);
            self.idle_closed += 1;
        }
        expired
    }

    /// Live session count (the memory-model input).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn frames_roundtrip() {
        for frame in [
            QuicFrame::Initial { conn_id: 7 },
            QuicFrame::Accept { conn_id: 8 },
            QuicFrame::App {
                conn_id: 9,
                data: b"\x00\x05query".to_vec(),
            },
            QuicFrame::Close { conn_id: 10 },
        ] {
            let bytes = encode(&frame);
            assert_eq!(decode(&bytes), Some(frame));
        }
    }

    #[test]
    fn initial_is_padded_to_1200() {
        assert_eq!(
            encode(&QuicFrame::Initial { conn_id: 1 }).len(),
            INITIAL_SIZE
        );
    }

    #[test]
    fn app_carries_record_overhead() {
        let bytes = encode(&QuicFrame::App {
            conn_id: 1,
            data: vec![1, 2, 3],
        });
        assert_eq!(bytes.len(), 9 + 3 + PACKET_OVERHEAD);
    }

    #[test]
    fn garbage_decodes_to_none() {
        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&[99; 20]), None);
        assert_eq!(decode(&[1, 2]), None);
    }

    #[test]
    fn session_lifecycle() {
        let mut s = QuicServerSessions::new();
        assert!(s.open(1, SimTime::ZERO));
        assert!(!s.open(1, SimTime::from_secs(1)), "reopen is refresh");
        assert_eq!(s.handshakes, 1);
        assert!(s.touch(1, SimTime::from_secs(2)));
        assert!(!s.touch(2, SimTime::ZERO));
        assert_eq!(s.len(), 1);
        s.close(1);
        assert!(s.is_empty());
    }

    #[test]
    fn idle_expiry_no_time_wait() {
        let mut s = QuicServerSessions::new();
        s.open(1, SimTime::ZERO);
        s.open(2, SimTime::from_secs(15));
        let expired = s.expire_idle(SimTime::from_secs(20), SimDuration::from_secs(20));
        assert_eq!(expired, vec![1]);
        assert_eq!(s.len(), 1, "state gone immediately — no lingering socket");
        assert_eq!(s.idle_closed, 1);
        // Touching keeps the survivor alive.
        s.touch(2, SimTime::from_secs(30));
        assert!(s
            .expire_idle(SimTime::from_secs(40), SimDuration::from_secs(20))
            .is_empty());
    }
}
