//! Deterministic backoff and fault-decision model, shared by the
//! simulator's loss machinery and the live replay engine's retry path.
//!
//! Everything here is a pure function of a seed and a key — no RNG state,
//! no locks — so concurrent callers (a timeout sweeper racing a send path,
//! or a server deciding packet fates in arrival order) get the *same*
//! decisions regardless of interleaving. That is what makes chaos runs
//! reproducible under a fixed seed (the repeatability requirement of
//! LDplayer §2.1) even over real sockets.

use std::time::Duration;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash step.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes a byte string under `seed` (FNV-style fold, SplitMix finalize).
/// Used to key fault decisions on packet *content*, so the decision for a
/// given wire image is independent of arrival order.
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    splitmix64(h)
}

/// Deterministic Bernoulli trial: true with probability `p`, decided
/// entirely by `(seed, key)`. The same pair always decides the same way.
pub fn decide(seed: u64, key: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let unit = (splitmix64(seed ^ key) >> 11) as f64 / (1u64 << 53) as f64;
    unit < p
}

/// Capped exponential backoff with deterministic jitter.
///
/// `delay(attempt, key)` grows as `base · 2^attempt`, capped at `cap`,
/// plus up to `jitter` (fraction of the uncapped delay) of extra wait
/// derived from `(seed, key, attempt)` — so two retriers with the same
/// schedule but different keys desynchronize, and the same retrier
/// replays identically across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Backoff {
    pub base: Duration,
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: extra delay up to `jitter · delay`.
    pub jitter: f64,
    pub seed: u64,
}

impl Backoff {
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff {
            base,
            cap,
            jitter: 0.25,
            seed: 0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Backoff {
        self.seed = seed;
        self
    }

    pub fn with_jitter(mut self, jitter: f64) -> Backoff {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Delay before (or deadline extension for) retry `attempt` (0-based).
    pub fn delay(&self, attempt: u32, key: u64) -> Duration {
        let shift = attempt.min(16);
        let exp = self
            .base
            .checked_mul(1u32 << shift)
            .unwrap_or(self.cap)
            .min(self.cap);
        if self.jitter <= 0.0 {
            return exp;
        }
        let k = splitmix64(self.seed ^ key ^ (u64::from(attempt) << 48));
        let unit = (k >> 11) as f64 / (1u64 << 53) as f64;
        let extra = exp.mul_f64(self.jitter * unit);
        (exp + extra).min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_deterministic_and_seed_sensitive() {
        let a: Vec<bool> = (0..200).map(|k| decide(7, k, 0.3)).collect();
        let b: Vec<bool> = (0..200).map(|k| decide(7, k, 0.3)).collect();
        assert_eq!(a, b);
        let c: Vec<bool> = (0..200).map(|k| decide(8, k, 0.3)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn decide_rate_approximates_p() {
        let hits = (0..20_000).filter(|&k| decide(42, k, 0.2)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn decide_extremes() {
        assert!(!decide(1, 2, 0.0));
        assert!(decide(1, 2, 1.0));
    }

    #[test]
    fn hash_bytes_distinguishes_content_and_seed() {
        let a = hash_bytes(1, b"query-a");
        assert_eq!(a, hash_bytes(1, b"query-a"));
        assert_ne!(a, hash_bytes(1, b"query-b"));
        assert_ne!(a, hash_bytes(2, b"query-a"));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let b = Backoff::new(Duration::from_millis(100), Duration::from_secs(1)).with_jitter(0.0);
        assert_eq!(b.delay(0, 0), Duration::from_millis(100));
        assert_eq!(b.delay(1, 0), Duration::from_millis(200));
        assert_eq!(b.delay(2, 0), Duration::from_millis(400));
        assert_eq!(b.delay(10, 0), Duration::from_secs(1));
        assert_eq!(b.delay(60, 0), Duration::from_secs(1), "shift saturates");
    }

    #[test]
    fn backoff_jitter_is_bounded_and_deterministic() {
        let b = Backoff::new(Duration::from_millis(100), Duration::from_secs(10))
            .with_jitter(0.5)
            .with_seed(9);
        for key in 0..100 {
            let d = b.delay(1, key);
            assert!(d >= Duration::from_millis(200));
            assert!(d <= Duration::from_millis(300));
            assert_eq!(d, b.delay(1, key), "same key, same delay");
        }
        // Different keys desynchronize.
        assert_ne!(b.delay(1, 1), b.delay(1, 2));
    }
}
