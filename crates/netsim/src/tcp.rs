//! Simulated TCP: connection lifecycle at message granularity.
//!
//! What is modeled (because the paper's experiments measure it):
//! * 3-way handshake — queries over fresh connections pay an extra RTT
//!   (Figure 15's 2-RTT TCP medians for non-busy clients),
//! * graceful close and **TIME_WAIT** — the actively-closing side holds the
//!   socket for 2·MSL, which is where Figure 13c/14c's ~120k TIME_WAIT
//!   sockets come from,
//! * **idle timeouts** — the server closes connections idle longer than the
//!   configured window (the 5–40 s sweep of Figures 11/13/14),
//! * connection reuse — an established connection carries any number of
//!   length-framed DNS messages with no additional setup cost,
//! * optional **Nagle-style write coalescing** — small writes buffered
//!   briefly and flushed as one segment, reproducing the reassembly-delay
//!   tail the paper observed (§5.2.4),
//! * connection-count snapshots for memory/footprint accounting.
//!
//! What is abstracted: sequence numbers, windows, retransmission — the
//! simulated links are lossless for TCP, so reliability machinery would add
//! state without changing any measured quantity.

use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr};

use crate::packet::{Packet, Payload, TcpWire};
use crate::sim::Ctx;
use crate::time::{SimDuration, SimTime};

/// Connection identity: (local, remote) socket pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnKey {
    pub local: SocketAddr,
    pub remote: SocketAddr,
}

/// TCP connection states (condensed from RFC 793's diagram to the arcs the
/// simulation exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Client sent SYN, awaiting SYN-ACK.
    SynSent,
    /// Server got SYN, sent SYN-ACK, awaiting ACK.
    SynRcvd,
    Established,
    /// Sent FIN, awaiting FIN-ACK (active close).
    FinWait,
    /// Active closer after the handshake: socket lingers 2·MSL.
    TimeWait,
}

/// Events surfaced to the owning node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// Client-side: connect completed; queued writes were flushed.
    Connected(ConnKey),
    /// Server-side: a new connection completed its handshake.
    Accepted(ConnKey),
    /// Stream bytes arrived (app applies its own framing).
    Data(ConnKey, Vec<u8>),
    /// The peer closed; local side replied and the connection is gone.
    PeerClosed(ConnKey),
    /// A locally-initiated close (or reset) finished.
    Closed(ConnKey),
}

/// Stack configuration.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Close connections with no traffic for this long (server-side knob in
    /// the paper's sweeps). `None` = never.
    pub idle_timeout: Option<SimDuration>,
    /// TIME_WAIT linger (2·MSL); Linux uses 60 s.
    pub time_wait: SimDuration,
    /// Nagle-style coalescing: buffer writes for this long and flush as one
    /// segment. `None` = immediate (TCP_NODELAY, as the paper sets on
    /// clients).
    pub nagle_delay: Option<SimDuration>,
    /// Refuse new connections (RST the SYN) beyond this many concurrent
    /// connection records — models file-descriptor/backlog exhaustion, the
    /// failure mode of connection-flood DoS. `None` = unlimited.
    pub max_connections: Option<usize>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            idle_timeout: None,
            time_wait: SimDuration::from_secs(60),
            nagle_delay: None,
            max_connections: None,
        }
    }
}

/// Counters describing current connection state (Figure 13b/13c inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpSnapshot {
    pub syn_pending: usize,
    pub established: usize,
    pub time_wait: usize,
    /// Total connections ever accepted or connected.
    pub total_opened: u64,
    /// Handshakes completed as the accepting side.
    pub total_accepted: u64,
    /// Connections closed by idle timeout.
    pub idle_closed: u64,
    /// SYNs refused because the connection table was full.
    pub refused: u64,
}

#[derive(Debug)]
struct Conn {
    state: TcpState,
    /// Writes queued before establishment or during a Nagle window.
    pending: Vec<u8>,
    /// Nagle flush timer outstanding.
    flush_pending: bool,
    last_activity: SimTime,
    /// Generation guard for idle timers (stale timers are ignored).
    idle_generation: u64,
}

/// Timer purposes multiplexed through the owning node's timer tokens.
#[derive(Debug, Clone, Copy)]
enum TimerKind {
    IdleCheck { generation: u64 },
    NagleFlush,
    TimeWaitExpire,
}

/// Bit marking a token as belonging to a [`TcpStack`]; nodes route such
/// tokens to [`TcpStack::on_timer`].
pub const TCP_TIMER_BIT: u64 = 1 << 63;

/// A per-node TCP endpoint multiplexer.
pub struct TcpStack {
    local_ip: IpAddr,
    config: TcpConfig,
    conns: HashMap<ConnKey, Conn>,
    timers: HashMap<u64, (ConnKey, TimerKind)>,
    next_timer: u64,
    next_port: u16,
    snapshot_totals: TcpSnapshot,
}

impl TcpStack {
    pub fn new(local_ip: IpAddr, config: TcpConfig) -> TcpStack {
        TcpStack {
            local_ip,
            config,
            conns: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 0,
            next_port: 32768,
            snapshot_totals: TcpSnapshot::default(),
        }
    }

    /// True when a timer token belongs to some TCP stack.
    pub fn owns_timer(token: u64) -> bool {
        token & TCP_TIMER_BIT != 0
    }

    /// Opens a client connection to `remote`; returns the key immediately.
    /// Writes before establishment are queued. `local_port` of `None`
    /// allocates an ephemeral port (sources are distinguished by port, as
    /// in the paper's querier emulation, §2.6).
    pub fn connect(
        &mut self,
        ctx: &mut Ctx,
        local_port: Option<u16>,
        remote: SocketAddr,
    ) -> ConnKey {
        let port = local_port.unwrap_or_else(|| self.alloc_port());
        let key = ConnKey {
            local: SocketAddr::new(self.local_ip, port),
            remote,
        };
        let conn = Conn {
            state: TcpState::SynSent,
            pending: Vec::new(),
            flush_pending: false,
            last_activity: ctx.now(),
            idle_generation: 0,
        };
        self.conns.insert(key, conn);
        self.snapshot_totals.total_opened += 1;
        ctx.send(Packet::tcp(key.local, key.remote, TcpWire::Syn));
        key
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if self.next_port == u16::MAX {
            32768
        } else {
            self.next_port + 1
        };
        p
    }

    /// Queues stream bytes on a connection. Bytes sent before the handshake
    /// completes (or within a Nagle window) are buffered.
    pub fn send(&mut self, ctx: &mut Ctx, key: ConnKey, bytes: &[u8]) {
        let nagle = self.config.nagle_delay;
        let mut arm_flush = None;
        {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            conn.last_activity = ctx.now();
            match conn.state {
                TcpState::SynSent | TcpState::SynRcvd => {
                    conn.pending.extend_from_slice(bytes);
                }
                TcpState::Established => match nagle {
                    Some(delay) => {
                        conn.pending.extend_from_slice(bytes);
                        if !conn.flush_pending {
                            conn.flush_pending = true;
                            arm_flush = Some(delay);
                        }
                    }
                    None => {
                        ctx.send(Packet::tcp(
                            key.local,
                            key.remote,
                            TcpWire::Data(bytes.to_vec()),
                        ));
                    }
                },
                // Writes to closing/closed connections are dropped, as the
                // kernel would fail them.
                TcpState::FinWait | TcpState::TimeWait => {}
            }
        }
        if let Some(delay) = arm_flush {
            let token = self.arm_timer(key, TimerKind::NagleFlush);
            ctx.set_timer(delay, token);
        }
    }

    /// Initiates a graceful close (active close: this side will hold
    /// TIME_WAIT).
    pub fn close(&mut self, ctx: &mut Ctx, key: ConnKey) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        match conn.state {
            TcpState::Established | TcpState::SynRcvd | TcpState::SynSent => {
                conn.state = TcpState::FinWait;
                ctx.send(Packet::tcp(key.local, key.remote, TcpWire::Fin));
            }
            TcpState::FinWait | TcpState::TimeWait => {}
        }
    }

    fn arm_timer(&mut self, key: ConnKey, kind: TimerKind) -> u64 {
        let token = TCP_TIMER_BIT | self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, (key, kind));
        token
    }

    fn schedule_idle_check(&mut self, ctx: &mut Ctx, key: ConnKey) {
        let Some(timeout) = self.config.idle_timeout else {
            return;
        };
        let generation = match self.conns.get_mut(&key) {
            Some(conn) => {
                conn.idle_generation += 1;
                conn.idle_generation
            }
            None => return,
        };
        let token = self.arm_timer(key, TimerKind::IdleCheck { generation });
        ctx.set_timer(timeout, token);
    }

    /// Handles an incoming packet; returns events for the application.
    /// Non-TCP packets are ignored.
    pub fn on_packet(&mut self, ctx: &mut Ctx, packet: &Packet) -> Vec<TcpEvent> {
        let Payload::Tcp(wire) = &packet.payload else {
            return Vec::new();
        };
        let key = ConnKey {
            local: packet.dst,
            remote: packet.src,
        };
        let mut events = Vec::new();
        match wire {
            TcpWire::Syn => {
                // Passive open — unless the connection table is full, in
                // which case the SYN is refused (the DoS failure mode).
                let full = self
                    .config
                    .max_connections
                    .map(|cap| self.conns.len() >= cap && !self.conns.contains_key(&key))
                    .unwrap_or(false);
                if full {
                    self.snapshot_totals.refused += 1;
                    ctx.send(Packet::tcp(key.local, key.remote, TcpWire::Rst));
                    return events;
                }
                self.conns.entry(key).or_insert_with(|| Conn {
                    state: TcpState::SynRcvd,
                    pending: Vec::new(),
                    flush_pending: false,
                    last_activity: ctx.now(),
                    idle_generation: 0,
                });
                ctx.send(Packet::tcp(key.local, key.remote, TcpWire::SynAck));
            }
            TcpWire::SynAck => {
                let established = match self.conns.get_mut(&key) {
                    Some(conn) if conn.state == TcpState::SynSent => {
                        conn.state = TcpState::Established;
                        conn.last_activity = ctx.now();
                        true
                    }
                    _ => false,
                };
                if established {
                    ctx.send(Packet::tcp(key.local, key.remote, TcpWire::Ack));
                    self.flush_pending(ctx, key);
                    self.schedule_idle_check(ctx, key);
                    events.push(TcpEvent::Connected(key));
                } else {
                    ctx.send(Packet::tcp(key.local, key.remote, TcpWire::Rst));
                }
            }
            TcpWire::Ack => {
                enum AckOutcome {
                    Accepted,
                    CloseDone,
                    Ignore,
                }
                let outcome = match self.conns.get_mut(&key) {
                    Some(conn) if conn.state == TcpState::SynRcvd => {
                        conn.state = TcpState::Established;
                        conn.last_activity = ctx.now();
                        AckOutcome::Accepted
                    }
                    Some(conn) if conn.state == TcpState::FinWait => {
                        // Peer acked our FIN without its own FIN-ACK
                        // combination — treat as close completion.
                        conn.state = TcpState::TimeWait;
                        AckOutcome::CloseDone
                    }
                    _ => AckOutcome::Ignore,
                };
                match outcome {
                    AckOutcome::Accepted => {
                        self.snapshot_totals.total_accepted += 1;
                        self.schedule_idle_check(ctx, key);
                        events.push(TcpEvent::Accepted(key));
                    }
                    AckOutcome::CloseDone => {
                        let token = self.arm_timer(key, TimerKind::TimeWaitExpire);
                        ctx.set_timer(self.config.time_wait, token);
                        events.push(TcpEvent::Closed(key));
                    }
                    AckOutcome::Ignore => {}
                }
            }
            TcpWire::Data(bytes) => {
                enum DataOutcome {
                    Deliver,
                    AcceptAndDeliver,
                    Reset,
                }
                let outcome = match self.conns.get_mut(&key) {
                    Some(conn) if conn.state == TcpState::Established => {
                        conn.last_activity = ctx.now();
                        DataOutcome::Deliver
                    }
                    Some(conn) if conn.state == TcpState::SynRcvd => {
                        // Data raced ahead of the final ACK: accept
                        // implicitly (models kernels completing the
                        // handshake from data).
                        conn.state = TcpState::Established;
                        conn.last_activity = ctx.now();
                        DataOutcome::AcceptAndDeliver
                    }
                    _ => DataOutcome::Reset,
                };
                match outcome {
                    DataOutcome::Deliver => {
                        self.schedule_idle_check(ctx, key);
                        events.push(TcpEvent::Data(key, bytes.clone()));
                    }
                    DataOutcome::AcceptAndDeliver => {
                        self.snapshot_totals.total_accepted += 1;
                        self.schedule_idle_check(ctx, key);
                        events.push(TcpEvent::Accepted(key));
                        events.push(TcpEvent::Data(key, bytes.clone()));
                    }
                    DataOutcome::Reset => {
                        ctx.send(Packet::tcp(key.local, key.remote, TcpWire::Rst));
                    }
                }
            }
            TcpWire::Fin => {
                // Passive close: reply FIN-ACK and drop immediately (the
                // passive side has no TIME_WAIT).
                if self.conns.remove(&key).is_some() {
                    ctx.send(Packet::tcp(key.local, key.remote, TcpWire::FinAck));
                    events.push(TcpEvent::PeerClosed(key));
                }
            }
            TcpWire::FinAck => {
                let close_done = match self.conns.get_mut(&key) {
                    Some(conn) if conn.state == TcpState::FinWait => {
                        conn.state = TcpState::TimeWait;
                        true
                    }
                    _ => false,
                };
                if close_done {
                    ctx.send(Packet::tcp(key.local, key.remote, TcpWire::Ack));
                    let token = self.arm_timer(key, TimerKind::TimeWaitExpire);
                    ctx.set_timer(self.config.time_wait, token);
                    events.push(TcpEvent::Closed(key));
                }
            }
            TcpWire::Rst => {
                if self.conns.remove(&key).is_some() {
                    events.push(TcpEvent::Closed(key));
                }
            }
        }
        events
    }

    fn flush_pending(&mut self, ctx: &mut Ctx, key: ConnKey) {
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.flush_pending = false;
            if !conn.pending.is_empty() && conn.state == TcpState::Established {
                let bytes = std::mem::take(&mut conn.pending);
                ctx.send(Packet::tcp(key.local, key.remote, TcpWire::Data(bytes)));
            }
        }
    }

    /// Handles a stack timer token (nodes route tokens with
    /// [`TCP_TIMER_BIT`] here).
    pub fn on_timer(&mut self, ctx: &mut Ctx, token: u64) -> Vec<TcpEvent> {
        let Some((key, kind)) = self.timers.remove(&token) else {
            return Vec::new();
        };
        match kind {
            TimerKind::NagleFlush => self.flush_pending(ctx, key),
            TimerKind::IdleCheck { generation } => {
                let timed_out = match self.conns.get(&key) {
                    Some(conn) => {
                        conn.state == TcpState::Established && conn.idle_generation == generation
                    }
                    None => false,
                };
                if timed_out {
                    self.snapshot_totals.idle_closed += 1;
                    self.close(ctx, key);
                }
            }
            TimerKind::TimeWaitExpire => {
                self.conns.remove(&key);
            }
        }
        Vec::new()
    }

    /// Current connection-state counters plus lifetime totals.
    pub fn snapshot(&self) -> TcpSnapshot {
        let mut snap = self.snapshot_totals;
        snap.syn_pending = 0;
        snap.established = 0;
        snap.time_wait = 0;
        for conn in self.conns.values() {
            match conn.state {
                TcpState::SynSent | TcpState::SynRcvd => snap.syn_pending += 1,
                TcpState::Established => snap.established += 1,
                TcpState::FinWait => snap.syn_pending += 1,
                TcpState::TimeWait => snap.time_wait += 1,
            }
        }
        snap
    }

    /// State of one connection, if it exists.
    pub fn conn_state(&self, key: &ConnKey) -> Option<TcpState> {
        self.conns.get(key).map(|c| c.state)
    }

    /// Number of connections in any state.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Node, NodeEvent, NodeId, Sim};
    use std::net::SocketAddr;

    fn sa(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    /// Test client: connects at start, sends one message, records events.
    struct Client {
        stack: TcpStack,
        target: SocketAddr,
        payload: Vec<u8>,
        close_after_reply: bool,
        events: Vec<(SimTime, TcpEvent)>,
        conn: Option<ConnKey>,
    }

    impl Node for Client {
        fn on_start(&mut self, ctx: &mut Ctx) {
            let key = self.stack.connect(ctx, None, self.target);
            let payload = self.payload.clone();
            self.stack.send(ctx, key, &payload);
            self.conn = Some(key);
        }
        fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
            match event {
                NodeEvent::Packet(p) => {
                    let evs = self.stack.on_packet(ctx, &p);
                    for e in evs {
                        if matches!(e, TcpEvent::Data(..)) && self.close_after_reply {
                            let key = self.conn.unwrap();
                            self.stack.close(ctx, key);
                        }
                        self.events.push((ctx.now(), e));
                    }
                }
                NodeEvent::Timer { token } => {
                    self.stack.on_timer(ctx, token);
                }
            }
        }
    }

    /// Test server: echoes received data.
    struct Server {
        stack: TcpStack,
        events: Vec<(SimTime, TcpEvent)>,
    }

    impl Node for Server {
        fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
            match event {
                NodeEvent::Packet(p) => {
                    let evs = self.stack.on_packet(ctx, &p);
                    for e in evs {
                        if let TcpEvent::Data(key, bytes) = &e {
                            let reply = bytes.clone();
                            self.stack.send(ctx, *key, &reply);
                        }
                        self.events.push((ctx.now(), e));
                    }
                }
                NodeEvent::Timer { token } => {
                    self.stack.on_timer(ctx, token);
                }
            }
        }
    }

    fn build(
        client_cfg: TcpConfig,
        server_cfg: TcpConfig,
        rtt_ms: u64,
        close_after_reply: bool,
    ) -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new();
        let c = sim.add_node(Box::new(Client {
            stack: TcpStack::new("10.0.0.1".parse().unwrap(), client_cfg),
            target: sa("10.0.0.2:53"),
            payload: b"query".to_vec(),
            close_after_reply,
            events: vec![],
            conn: None,
        }));
        let s = sim.add_node(Box::new(Server {
            stack: TcpStack::new("10.0.0.2".parse().unwrap(), server_cfg),
            events: vec![],
        }));
        sim.bind("10.0.0.1".parse().unwrap(), c);
        sim.bind("10.0.0.2".parse().unwrap(), s);
        sim.set_pair_delay(c, s, SimDuration::from_millis(rtt_ms / 2));
        (sim, c, s)
    }

    #[test]
    fn handshake_then_data_costs_two_rtt() {
        // SYN (0.5 RTT) → SYN-ACK (1 RTT) → data (1.5 RTT) → reply (2 RTT).
        let (mut sim, c, _s) = build(TcpConfig::default(), TcpConfig::default(), 20, false);
        sim.run_until(SimTime::from_secs(1));
        let client: &Client = sim.node_as(c).unwrap();
        let connected = client
            .events
            .iter()
            .find(|(_, e)| matches!(e, TcpEvent::Connected(_)))
            .expect("connected");
        assert_eq!(connected.0, SimTime::from_millis(20), "connect = 1 RTT");
        let reply = client
            .events
            .iter()
            .find(|(_, e)| matches!(e, TcpEvent::Data(..)))
            .expect("echo reply");
        assert_eq!(reply.0, SimTime::from_millis(40), "first reply = 2 RTT");
    }

    #[test]
    fn server_accepts_and_counts() {
        let (mut sim, _c, s) = build(TcpConfig::default(), TcpConfig::default(), 10, false);
        sim.run_until(SimTime::from_secs(1));
        let server: &Server = sim.node_as(s).unwrap();
        assert!(server
            .events
            .iter()
            .any(|(_, e)| matches!(e, TcpEvent::Accepted(_))));
        let snap = server.stack.snapshot();
        assert_eq!(snap.established, 1);
        assert_eq!(snap.total_accepted, 1);
        assert_eq!(snap.time_wait, 0);
    }

    #[test]
    fn active_close_leaves_time_wait_on_closer() {
        let (mut sim, c, s) = build(TcpConfig::default(), TcpConfig::default(), 10, true);
        sim.run_until(SimTime::from_secs(5));
        let client: &Client = sim.node_as(c).unwrap();
        let server: &Server = sim.node_as(s).unwrap();
        // Client initiated the close: it holds TIME_WAIT, server is clean.
        assert_eq!(client.stack.snapshot().time_wait, 1);
        assert_eq!(server.stack.snapshot().established, 0);
        assert_eq!(server.stack.conn_count(), 0);
        assert!(server
            .events
            .iter()
            .any(|(_, e)| matches!(e, TcpEvent::PeerClosed(_))));
    }

    #[test]
    fn time_wait_expires_after_2msl() {
        let cfg = TcpConfig {
            time_wait: SimDuration::from_secs(60),
            ..TcpConfig::default()
        };
        let (mut sim, c, _s) = build(cfg, TcpConfig::default(), 10, true);
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(
            sim.node_as::<Client>(c).unwrap().stack.snapshot().time_wait,
            1
        );
        sim.run_until(SimTime::from_secs(120));
        assert_eq!(
            sim.node_as::<Client>(c).unwrap().stack.snapshot().time_wait,
            0
        );
        assert_eq!(sim.node_as::<Client>(c).unwrap().stack.conn_count(), 0);
    }

    #[test]
    fn server_idle_timeout_closes_connection() {
        let server_cfg = TcpConfig {
            idle_timeout: Some(SimDuration::from_secs(20)),
            ..TcpConfig::default()
        };
        let (mut sim, c, s) = build(TcpConfig::default(), server_cfg, 10, false);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(
            sim.node_as::<Server>(s)
                .unwrap()
                .stack
                .snapshot()
                .established,
            1
        );
        // After the 20s idle window the server closes; it becomes the
        // active closer and holds TIME_WAIT (as the paper's server does).
        sim.run_until(SimTime::from_secs(50));
        let server: &Server = sim.node_as(s).unwrap();
        assert_eq!(server.stack.snapshot().established, 0);
        assert_eq!(server.stack.snapshot().time_wait, 1);
        assert_eq!(server.stack.snapshot().idle_closed, 1);
        // Client saw the close.
        let client: &Client = sim.node_as(c).unwrap();
        assert!(client
            .events
            .iter()
            .any(|(_, e)| matches!(e, TcpEvent::PeerClosed(_))));
    }

    #[test]
    fn activity_defers_idle_timeout() {
        // Client re-sends every 15 s; a 20 s idle timeout must never fire.
        struct Chatty {
            stack: TcpStack,
            target: SocketAddr,
            conn: Option<ConnKey>,
        }
        impl Node for Chatty {
            fn on_start(&mut self, ctx: &mut Ctx) {
                let key = self.stack.connect(ctx, None, self.target);
                self.stack.send(ctx, key, b"q");
                self.conn = Some(key);
                ctx.set_timer(SimDuration::from_secs(15), 1);
            }
            fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
                match event {
                    NodeEvent::Packet(p) => {
                        self.stack.on_packet(ctx, &p);
                    }
                    NodeEvent::Timer { token } if TcpStack::owns_timer(token) => {
                        self.stack.on_timer(ctx, token);
                    }
                    NodeEvent::Timer { .. } => {
                        if let Some(key) = self.conn {
                            self.stack.send(ctx, key, b"q");
                        }
                        ctx.set_timer(SimDuration::from_secs(15), 1);
                    }
                }
            }
        }
        let mut sim = Sim::new();
        let c = sim.add_node(Box::new(Chatty {
            stack: TcpStack::new("10.0.0.1".parse().unwrap(), TcpConfig::default()),
            target: sa("10.0.0.2:53"),
            conn: None,
        }));
        let s = sim.add_node(Box::new(Server {
            stack: TcpStack::new(
                "10.0.0.2".parse().unwrap(),
                TcpConfig {
                    idle_timeout: Some(SimDuration::from_secs(20)),
                    ..TcpConfig::default()
                },
            ),
            events: vec![],
        }));
        sim.bind("10.0.0.1".parse().unwrap(), c);
        sim.bind("10.0.0.2".parse().unwrap(), s);
        sim.set_pair_delay(c, s, SimDuration::from_millis(1));
        sim.run_until(SimTime::from_secs(100));
        let server: &Server = sim.node_as(s).unwrap();
        assert_eq!(
            server.stack.snapshot().established,
            1,
            "kept alive by traffic"
        );
        assert_eq!(server.stack.snapshot().idle_closed, 0);
    }

    #[test]
    fn nagle_coalesces_small_writes() {
        // With Nagle, two writes inside the window arrive as one segment.
        struct TwoWrites {
            stack: TcpStack,
            target: SocketAddr,
        }
        impl Node for TwoWrites {
            fn on_start(&mut self, ctx: &mut Ctx) {
                self.stack.connect(ctx, None, self.target);
            }
            fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
                match event {
                    NodeEvent::Packet(p) => {
                        let evs = self.stack.on_packet(ctx, &p);
                        for e in evs {
                            if let TcpEvent::Connected(key) = e {
                                // Write only once established so the Nagle
                                // window (not the pre-connect queue) governs.
                                self.stack.send(ctx, key, b"aa");
                                self.stack.send(ctx, key, b"bb");
                            }
                        }
                    }
                    NodeEvent::Timer { token } => {
                        self.stack.on_timer(ctx, token);
                    }
                }
            }
        }
        let mut sim = Sim::new();
        let c = sim.add_node(Box::new(TwoWrites {
            stack: TcpStack::new(
                "10.0.0.1".parse().unwrap(),
                TcpConfig {
                    nagle_delay: Some(SimDuration::from_millis(40)),
                    ..TcpConfig::default()
                },
            ),
            target: sa("10.0.0.2:53"),
        }));
        let s = sim.add_node(Box::new(Server {
            stack: TcpStack::new("10.0.0.2".parse().unwrap(), TcpConfig::default()),
            events: vec![],
        }));
        sim.bind("10.0.0.1".parse().unwrap(), c);
        sim.bind("10.0.0.2".parse().unwrap(), s);
        sim.set_pair_delay(c, s, SimDuration::from_millis(1));
        sim.run_until(SimTime::from_secs(2));
        let server: &Server = sim.node_as(s).unwrap();
        let datas: Vec<_> = server
            .events
            .iter()
            .filter_map(|(t, e)| match e {
                TcpEvent::Data(_, bytes) => Some((t, bytes.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(datas.len(), 1, "coalesced into one segment");
        assert_eq!(datas[0].1, b"aabb");
        // And it was delayed by the Nagle window.
        assert!(*datas[0].0 >= SimTime::from_millis(40));
    }

    #[test]
    fn data_to_unknown_connection_resets() {
        let mut sim = Sim::new();
        struct Rogue {
            target: SocketAddr,
            got_rst: bool,
        }
        impl Node for Rogue {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send(Packet::tcp(
                    sa("10.0.0.1:9999"),
                    self.target,
                    TcpWire::Data(b"sneaky".to_vec()),
                ));
            }
            fn on_event(&mut self, _ctx: &mut Ctx, event: NodeEvent) {
                if let NodeEvent::Packet(p) = event {
                    if matches!(p.payload, Payload::Tcp(TcpWire::Rst)) {
                        self.got_rst = true;
                    }
                }
            }
        }
        let r = sim.add_node(Box::new(Rogue {
            target: sa("10.0.0.2:53"),
            got_rst: false,
        }));
        let s = sim.add_node(Box::new(Server {
            stack: TcpStack::new("10.0.0.2".parse().unwrap(), TcpConfig::default()),
            events: vec![],
        }));
        sim.bind("10.0.0.1".parse().unwrap(), r);
        sim.bind("10.0.0.2".parse().unwrap(), s);
        sim.run();
        assert!(sim.node_as::<Rogue>(r).unwrap().got_rst);
        assert_eq!(sim.node_as::<Server>(s).unwrap().stack.conn_count(), 0);
    }

    #[test]
    fn connection_cap_refuses_overflow() {
        // Three clients race for a 2-connection server: exactly one SYN is
        // refused and that client sees Closed, not a hang.
        let mut sim = Sim::new();
        let server_cfg = TcpConfig {
            max_connections: Some(2),
            ..TcpConfig::default()
        };
        let mut client_ids = Vec::new();
        for i in 0..3 {
            let id = sim.add_node(Box::new(Client {
                stack: TcpStack::new(
                    format!("10.0.0.{}", i + 1).parse().unwrap(),
                    TcpConfig::default(),
                ),
                target: sa("10.0.9.9:53"),
                payload: b"q".to_vec(),
                close_after_reply: false,
                events: vec![],
                conn: None,
            }));
            sim.bind(format!("10.0.0.{}", i + 1).parse().unwrap(), id);
            client_ids.push(id);
        }
        let s = sim.add_node(Box::new(Server {
            stack: TcpStack::new("10.0.9.9".parse().unwrap(), server_cfg),
            events: vec![],
        }));
        sim.bind("10.0.9.9".parse().unwrap(), s);
        sim.run_until(SimTime::from_secs(2));
        let server: &Server = sim.node_as(s).unwrap();
        let snap = server.stack.snapshot();
        assert_eq!(snap.established, 2);
        assert_eq!(snap.refused, 1);
        let rejected = client_ids
            .iter()
            .filter(|&&c| {
                sim.node_as::<Client>(c)
                    .unwrap()
                    .events
                    .iter()
                    .any(|(_, e)| matches!(e, TcpEvent::Closed(_)))
            })
            .count();
        assert_eq!(rejected, 1, "exactly one client saw the refusal");
    }

    #[test]
    fn ephemeral_ports_distinct() {
        let mut stack = TcpStack::new("10.0.0.1".parse().unwrap(), TcpConfig::default());
        let p1 = stack.alloc_port();
        let p2 = stack.alloc_port();
        assert_ne!(p1, p2);
        assert!(p1 >= 32768);
    }
}
