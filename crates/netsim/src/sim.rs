//! The simulator core: virtual clock, event queue, node registry, address
//! routing, per-pair delays, and per-node egress bandwidth.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::IpAddr;

use crate::loss::LossModel;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// Index of a node within the simulation.
pub type NodeId = usize;

/// Events delivered to a node.
#[derive(Debug, Clone)]
pub enum NodeEvent {
    /// A packet arrived addressed to one of this node's bound addresses.
    Packet(Packet),
    /// A timer set by this node fired; `token` is whatever the node passed.
    Timer { token: u64 },
}

/// Side effects a node requests during an event callback; the simulator
/// applies them after the callback returns.
#[derive(Debug)]
pub enum Action {
    Send(Packet),
    SetTimer { delay: SimDuration, token: u64 },
}

/// Per-event context handed to nodes.
pub struct Ctx {
    now: SimTime,
    node: NodeId,
    actions: Vec<Action>,
}

impl Ctx {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Queues a packet for transmission.
    pub fn send(&mut self, packet: Packet) {
        self.actions.push(Action::Send(packet));
    }

    /// Schedules a timer `delay` from now carrying `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::SetTimer { delay, token });
    }
}

/// A simulated host: a state machine reacting to packets and timers.
///
/// The `Any` supertrait enables downcasting a stored node back to its
/// concrete type to collect results after a run (via [`Sim::node_as`]).
pub trait Node: std::any::Any {
    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent);

    /// Called once when the simulation starts, before any events.
    fn on_start(&mut self, _ctx: &mut Ctx) {}
}

#[derive(Debug, PartialEq, Eq)]
enum QueuedKind {
    Deliver(NodeId, Packet),
    Timer(NodeId, u64),
}

/// Heap entry; `seq` breaks ties FIFO so same-instant events keep insertion
/// order (determinism).
struct Queued {
    at: SimTime,
    seq: u64,
    kind: QueuedKind,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event simulator.
pub struct Sim {
    clock: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Queued>>,
    nodes: Vec<Option<Box<dyn Node>>>,
    routes: HashMap<IpAddr, NodeId>,
    default_delay: SimDuration,
    pair_delay: HashMap<(NodeId, NodeId), SimDuration>,
    /// Per-node egress bandwidth (bits/s); 0 = unlimited.
    bandwidth: HashMap<NodeId, u64>,
    /// Per-node time the egress link is busy until (serialization queue).
    egress_free: HashMap<NodeId, SimTime>,
    loss: LossModel,
    started: bool,
    /// Packets dropped by the loss model.
    pub dropped_packets: u64,
    /// Packets delivered to nodes.
    pub delivered_packets: u64,
    /// Total bytes delivered (wire sizes).
    pub delivered_bytes: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Sim::new()
    }
}

impl Sim {
    pub fn new() -> Sim {
        Sim {
            clock: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            routes: HashMap::new(),
            default_delay: SimDuration::from_micros(50),
            pair_delay: HashMap::new(),
            bandwidth: HashMap::new(),
            egress_free: HashMap::new(),
            loss: LossModel::none(),
            started: false,
            dropped_packets: 0,
            delivered_packets: 0,
            delivered_bytes: 0,
        }
    }

    /// Registers a node; returns its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(Some(node));
        self.nodes.len() - 1
    }

    /// Routes packets destined to `addr` to `node`.
    pub fn bind(&mut self, addr: IpAddr, node: NodeId) {
        self.routes.insert(addr, node);
    }

    /// One-way delay used when no per-pair delay is set.
    pub fn set_default_delay(&mut self, one_way: SimDuration) {
        self.default_delay = one_way;
    }

    /// One-way delay between two specific nodes (applied in both
    /// directions).
    pub fn set_pair_delay(&mut self, a: NodeId, b: NodeId, one_way: SimDuration) {
        self.pair_delay.insert((a, b), one_way);
        self.pair_delay.insert((b, a), one_way);
    }

    /// Egress bandwidth of a node in bits/s (0 = unlimited).
    pub fn set_bandwidth(&mut self, node: NodeId, bits_per_sec: u64) {
        self.bandwidth.insert(node, bits_per_sec);
    }

    /// Installs a loss/jitter model.
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss = loss;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Schedules a timer externally (before the run starts).
    pub fn schedule_timer(&mut self, node: NodeId, at: SimTime, token: u64) {
        self.push(at, QueuedKind::Timer(node, token));
    }

    fn push(&mut self, at: SimTime, kind: QueuedKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq, kind }));
    }

    fn delay_between(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.pair_delay
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_delay)
    }

    fn route(&self, addr: IpAddr) -> Option<NodeId> {
        self.routes.get(&addr).copied()
    }

    fn apply_actions(&mut self, from: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send(packet) => self.transmit(from, packet),
                Action::SetTimer { delay, token } => {
                    let at = self.clock + delay;
                    self.push(at, QueuedKind::Timer(from, token));
                }
            }
        }
    }

    fn transmit(&mut self, from: NodeId, packet: Packet) {
        let Some(to) = self.route(packet.dst.ip()) else {
            // Unroutable packets vanish, as they would in the paper's
            // testbed without the proxies' rewriting (§2.4: "any leaked
            // packets are non-routable and dropped").
            self.dropped_packets += 1;
            return;
        };
        if self.loss.drop(&packet) {
            self.dropped_packets += 1;
            return;
        }
        // Serialization: the egress link transmits packets back-to-back.
        let rate = self.bandwidth.get(&from).copied().unwrap_or(0);
        let ser = SimDuration::serialization(packet.wire_size(), rate);
        let free = self
            .egress_free
            .get(&from)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let start = free.max(self.clock);
        let done = start + ser;
        self.egress_free.insert(from, done);
        let arrival = done + self.delay_between(from, to) + self.loss.jitter();
        self.push(arrival, QueuedKind::Deliver(to, packet));
    }

    fn start_nodes(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.nodes.len() {
            self.dispatch_with(id, |node, ctx| node.on_start(ctx));
        }
    }

    fn dispatch_with<F: FnOnce(&mut dyn Node, &mut Ctx)>(&mut self, id: NodeId, f: F) {
        let Some(mut node) = self.nodes[id].take() else {
            return;
        };
        let mut ctx = Ctx {
            now: self.clock,
            node: id,
            actions: Vec::new(),
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[id] = Some(node);
        self.apply_actions(id, ctx.actions);
    }

    /// Runs until the queue drains or `deadline` passes; returns the final
    /// clock.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.start_nodes();
        while let Some(Reverse(q)) = self.queue.peek() {
            if q.at > deadline {
                self.clock = deadline;
                return self.clock;
            }
            let Reverse(q) = self.queue.pop().unwrap();
            self.clock = q.at;
            match q.kind {
                QueuedKind::Deliver(node, packet) => {
                    self.delivered_packets += 1;
                    self.delivered_bytes += packet.wire_size() as u64;
                    self.dispatch_with(node, |n, ctx| n.on_event(ctx, NodeEvent::Packet(packet)));
                }
                QueuedKind::Timer(node, token) => {
                    self.dispatch_with(node, |n, ctx| n.on_event(ctx, NodeEvent::Timer { token }));
                }
            }
        }
        self.clock = self.clock.max(deadline.min(self.clock));
        self.clock
    }

    /// Runs until no events remain.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime(u64::MAX))
    }

    /// Borrows a node for inspection after (or between) runs.
    pub fn node(&self, id: NodeId) -> Option<&dyn Node> {
        self.nodes.get(id).and_then(|n| n.as_deref())
    }

    /// Mutably borrows a node (e.g. to collect results).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Box<dyn Node>> {
        self.nodes.get_mut(id).and_then(|n| n.as_mut())
    }

    /// Downcasts a node to its concrete type for result collection.
    pub fn node_as<T: Node>(&self, id: NodeId) -> Option<&T> {
        let node = self.node(id)?;
        (node as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable variant of [`Sim::node_as`].
    pub fn node_as_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        let node = self.nodes.get_mut(id)?.as_mut()?;
        (node.as_mut() as &mut dyn std::any::Any).downcast_mut::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;
    use std::net::SocketAddr;

    fn sa(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    /// Echoes every UDP datagram back to its sender, recording times.
    struct Echo {
        addr: SocketAddr,
        received: Vec<(SimTime, Vec<u8>)>,
    }

    impl Node for Echo {
        fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
            if let NodeEvent::Packet(p) = event {
                if let Payload::Udp(data) = &p.payload {
                    self.received.push((ctx.now(), data.clone()));
                    ctx.send(Packet::udp(self.addr, p.src, data.clone()));
                }
            }
        }
    }

    /// Sends one datagram at start; records the echo arrival.
    struct Pinger {
        addr: SocketAddr,
        target: SocketAddr,
        echo_at: Option<SimTime>,
        timer_fired: Vec<(SimTime, u64)>,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.send(Packet::udp(self.addr, self.target, b"ping".to_vec()));
            ctx.set_timer(SimDuration::from_millis(5), 42);
        }
        fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
            match event {
                NodeEvent::Packet(_) => self.echo_at = Some(ctx.now()),
                NodeEvent::Timer { token } => self.timer_fired.push((ctx.now(), token)),
            }
        }
    }

    fn setup(delay_ms: u64) -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new();
        let pinger = sim.add_node(Box::new(Pinger {
            addr: sa("10.0.0.1:4000"),
            target: sa("10.0.0.2:53"),
            echo_at: None,
            timer_fired: vec![],
        }));
        let echo = sim.add_node(Box::new(Echo {
            addr: sa("10.0.0.2:53"),
            received: vec![],
        }));
        sim.bind("10.0.0.1".parse().unwrap(), pinger);
        sim.bind("10.0.0.2".parse().unwrap(), echo);
        sim.set_pair_delay(pinger, echo, SimDuration::from_millis(delay_ms));
        (sim, pinger, echo)
    }

    fn pinger_state(sim: &mut Sim, id: NodeId) -> (Option<SimTime>, Vec<(SimTime, u64)>) {
        let p: &Pinger = sim.node_as(id).unwrap();
        (p.echo_at, p.timer_fired.clone())
    }

    #[test]
    fn rtt_is_twice_one_way_delay() {
        let (mut sim, pinger, _) = setup(10);
        sim.run();
        let (echo_at, timers) = pinger_state(&mut sim, pinger);
        assert_eq!(echo_at.unwrap(), SimTime::from_millis(20));
        assert_eq!(timers, vec![(SimTime::from_millis(5), 42)]);
    }

    #[test]
    fn unroutable_packets_dropped() {
        let mut sim = Sim::new();
        let pinger = sim.add_node(Box::new(Pinger {
            addr: sa("10.0.0.1:4000"),
            target: sa("10.99.99.99:53"), // not bound
            echo_at: None,
            timer_fired: vec![],
        }));
        sim.bind("10.0.0.1".parse().unwrap(), pinger);
        sim.run();
        assert_eq!(sim.dropped_packets, 1);
        assert_eq!(sim.delivered_packets, 0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, pinger, _) = setup(10);
        sim.run_until(SimTime::from_millis(12));
        let (echo_at, timers) = pinger_state(&mut sim, pinger);
        assert!(echo_at.is_none(), "echo lands at 20ms, after deadline");
        assert_eq!(timers.len(), 1, "5ms timer fires before deadline");
        // Resume to completion.
        sim.run();
        let (echo_at, _) = pinger_state(&mut sim, pinger);
        assert!(echo_at.is_some());
    }

    #[test]
    fn bandwidth_serialization_delays_back_to_back_packets() {
        // Node sends two 1000-byte (payload 972) packets at t=0 over a
        // 8 Mb/s link: each takes ~1ms to serialize, so arrivals are spaced.
        struct Burst {
            addr: SocketAddr,
            target: SocketAddr,
        }
        impl Node for Burst {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send(Packet::udp(self.addr, self.target, vec![0; 972]));
                ctx.send(Packet::udp(self.addr, self.target, vec![0; 972]));
            }
            fn on_event(&mut self, _: &mut Ctx, _: NodeEvent) {}
        }
        let mut sim = Sim::new();
        let b = sim.add_node(Box::new(Burst {
            addr: sa("10.0.0.1:1"),
            target: sa("10.0.0.2:53"),
        }));
        let e = sim.add_node(Box::new(Echo {
            addr: sa("10.0.0.2:53"),
            received: vec![],
        }));
        sim.bind("10.0.0.1".parse().unwrap(), b);
        sim.bind("10.0.0.2".parse().unwrap(), e);
        sim.set_pair_delay(b, e, SimDuration::ZERO);
        sim.set_bandwidth(b, 8_000_000);
        // Echo replies go back over unlimited bandwidth; fine.
        sim.run();
        let echo: &Echo = sim.node_as(e).unwrap();
        assert_eq!(echo.received.len(), 2);
        let t0 = echo.received[0].0;
        let t1 = echo.received[1].0;
        assert_eq!(t0, SimTime::from_millis(1));
        assert_eq!(t1, SimTime::from_millis(2));
    }

    #[test]
    fn same_time_events_fifo() {
        // Two packets sent at the same instant arrive in send order.
        struct Two {
            addr: SocketAddr,
            target: SocketAddr,
        }
        impl Node for Two {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send(Packet::udp(self.addr, self.target, vec![1]));
                ctx.send(Packet::udp(self.addr, self.target, vec![2]));
            }
            fn on_event(&mut self, _: &mut Ctx, _: NodeEvent) {}
        }
        let mut sim = Sim::new();
        let t = sim.add_node(Box::new(Two {
            addr: sa("10.0.0.1:1"),
            target: sa("10.0.0.2:53"),
        }));
        let e = sim.add_node(Box::new(Echo {
            addr: sa("10.0.0.2:53"),
            received: vec![],
        }));
        sim.bind("10.0.0.1".parse().unwrap(), t);
        sim.bind("10.0.0.2".parse().unwrap(), e);
        sim.run();
        let echo: &Echo = sim.node_as(e).unwrap();
        assert_eq!(echo.received[0].1, vec![1]);
        assert_eq!(echo.received[1].1, vec![2]);
    }
}
