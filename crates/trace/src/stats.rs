//! Trace statistics — the quantities Table 1 of the paper reports per
//! trace: duration, mean/σ of query inter-arrival, distinct client count,
//! and record count.

use std::collections::HashSet;
use std::net::IpAddr;

use crate::record::{Direction, TraceRecord};

/// Summary statistics of a trace (queries only).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of query records.
    pub records: u64,
    /// Distinct client (source) addresses.
    pub client_ips: u64,
    /// Trace duration in seconds (first to last query).
    pub duration_s: f64,
    /// Mean query inter-arrival time in seconds.
    pub interarrival_mean_s: f64,
    /// Standard deviation of inter-arrival time in seconds.
    pub interarrival_stddev_s: f64,
    /// Mean query rate (q/s) over the duration.
    pub mean_rate_qps: f64,
}

impl TraceStats {
    /// Computes stats over a record iterator (must be time-ordered, as
    /// traces are). Non-query records are ignored.
    pub fn compute<'a, I: IntoIterator<Item = &'a TraceRecord>>(records: I) -> TraceStats {
        let mut clients: HashSet<IpAddr> = HashSet::new();
        let mut count: u64 = 0;
        let mut first: Option<u64> = None;
        let mut last: u64 = 0;
        let mut prev: Option<u64> = None;
        // Welford accumulation over inter-arrival gaps.
        let mut n_gaps: u64 = 0;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for rec in records {
            if rec.direction != Direction::Query {
                continue;
            }
            count += 1;
            clients.insert(rec.src);
            first.get_or_insert(rec.time_us);
            last = rec.time_us;
            if let Some(p) = prev {
                let gap = rec.time_us.saturating_sub(p) as f64 / 1e6;
                n_gaps += 1;
                let delta = gap - mean;
                mean += delta / n_gaps as f64;
                m2 += delta * (gap - mean);
            }
            prev = Some(rec.time_us);
        }
        let duration_s = match first {
            Some(f) => (last - f) as f64 / 1e6,
            None => 0.0,
        };
        let variance = if n_gaps > 1 { m2 / n_gaps as f64 } else { 0.0 };
        TraceStats {
            records: count,
            client_ips: clients.len() as u64,
            duration_s,
            interarrival_mean_s: if n_gaps > 0 { mean } else { 0.0 },
            interarrival_stddev_s: variance.sqrt(),
            mean_rate_qps: if duration_s > 0.0 {
                count as f64 / duration_s
            } else {
                0.0
            },
        }
    }

    /// Formats a Table 1-style row: `inter-arrival ±stddev, clients, records`.
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "{:<12} {:>9.1}s  {:>11.6} ±{:<11.6} {:>9}  {:>11}",
            label,
            self.duration_s,
            self.interarrival_mean_s,
            self.interarrival_stddev_s,
            self.client_ips,
            self.records
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::{Name, RrType};

    fn rec(t: u64, ip: &str) -> TraceRecord {
        TraceRecord::udp_query(
            t,
            ip.parse().unwrap(),
            4242,
            Name::parse("x.test").unwrap(),
            RrType::A,
        )
    }

    #[test]
    fn fixed_interarrival() {
        // 1 ms fixed gaps: mean 0.001, stddev 0.
        let recs: Vec<_> = (0..1001).map(|i| rec(i * 1000, "10.0.0.1")).collect();
        let s = TraceStats::compute(&recs);
        assert_eq!(s.records, 1001);
        assert_eq!(s.client_ips, 1);
        assert!((s.interarrival_mean_s - 0.001).abs() < 1e-12);
        assert!(s.interarrival_stddev_s < 1e-12);
        assert!((s.duration_s - 1.0).abs() < 1e-9);
        assert!((s.mean_rate_qps - 1001.0).abs() < 1.0);
    }

    #[test]
    fn distinct_clients_counted() {
        let recs = vec![rec(0, "10.0.0.1"), rec(10, "10.0.0.2"), rec(20, "10.0.0.1")];
        let s = TraceStats::compute(&recs);
        assert_eq!(s.client_ips, 2);
    }

    #[test]
    fn responses_ignored() {
        let mut r = rec(5, "10.0.0.9");
        r.direction = Direction::Response;
        let recs = vec![rec(0, "10.0.0.1"), r, rec(10, "10.0.0.1")];
        let s = TraceStats::compute(&recs);
        assert_eq!(s.records, 2);
        assert_eq!(s.client_ips, 1);
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s.records, 0);
        assert_eq!(s.duration_s, 0.0);
        assert_eq!(s.mean_rate_qps, 0.0);
    }

    #[test]
    fn single_record() {
        let s = TraceStats::compute(&[rec(100, "10.0.0.1")]);
        assert_eq!(s.records, 1);
        assert_eq!(s.interarrival_mean_s, 0.0);
    }

    #[test]
    fn variable_gaps_have_stddev() {
        let recs = vec![
            rec(
                0,
                "a.b.c.d"
                    .parse::<std::net::IpAddr>()
                    .map(|_| "1.2.3.4")
                    .unwrap_or("1.2.3.4"),
            ),
            rec(1000, "1.2.3.4"),
            rec(3000, "1.2.3.4"),
        ];
        let s = TraceStats::compute(&recs);
        assert!((s.interarrival_mean_s - 0.0015).abs() < 1e-9);
        assert!(s.interarrival_stddev_s > 0.0);
    }

    #[test]
    fn table_row_contains_fields() {
        let recs: Vec<_> = (0..10).map(|i| rec(i * 1000, "10.0.0.1")).collect();
        let row = TraceStats::compute(&recs).table_row("syn-3");
        assert!(row.contains("syn-3"));
        assert!(row.contains("10"));
    }
}
