//! The query mutator (§2.5 of the paper): composable trace transforms for
//! "what-if" experiments.
//!
//! The paper's headline mutations are reproduced directly:
//! * [`Mutation::SetProtocol`] — "what if all DNS queries were TCP/TLS"
//!   (§5.2),
//! * [`Mutation::SetDoBit`] — raise the DNSSEC-requesting share from the
//!   observed 72.3% to 100% (§5.1),
//! * plus name prefixing (used by the evaluation to match replayed queries
//!   to originals, §4.2), time scaling, EDNS payload control, and RD-bit
//!   control.
//!
//! Mutations are deterministic given the seed, so a mutated replay is
//! exactly repeatable (§2.1's repeatability requirement).

use ldp_wire::Edns;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::{Protocol, TraceRecord};

/// A single transform applied to every record.
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Rewrite the transport of every query.
    SetProtocol(Protocol),
    /// Set (or clear) the EDNS DO bit on approximately `fraction` of the
    /// queries (1.0 = all). Selection is pseudo-random but seeded.
    SetDoBit { fraction: f64 },
    /// Clear the DO bit everywhere.
    ClearDoBit,
    /// Prepend a label to every qname (e.g. a replay-trial marker so
    /// replayed queries can be matched to originals).
    PrefixQname(String),
    /// Multiply every timestamp (2.0 = half speed, 0.5 = double speed).
    ScaleTime(f64),
    /// Shift every timestamp by a signed offset (µs); clamps at zero.
    ShiftTime(i64),
    /// Force a specific EDNS UDP payload size, creating the EDNS block if
    /// absent.
    SetEdnsPayload(u16),
    /// Set or clear the RD bit.
    SetRecursionDesired(bool),
}

/// A seeded pipeline of [`Mutation`]s.
#[derive(Debug, Clone)]
pub struct QueryMutator {
    mutations: Vec<Mutation>,
    rng: StdRng,
}

impl QueryMutator {
    /// Creates an empty mutator; `seed` fixes all randomized choices.
    pub fn new(seed: u64) -> QueryMutator {
        QueryMutator {
            mutations: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Appends a mutation to the pipeline (applied in push order).
    pub fn push(mut self, m: Mutation) -> QueryMutator {
        self.mutations.push(m);
        self
    }

    /// Applies the pipeline to one record in place.
    pub fn apply(&mut self, rec: &mut TraceRecord) {
        for m in &self.mutations {
            match m {
                Mutation::SetProtocol(p) => rec.protocol = *p,
                Mutation::SetDoBit { fraction } => {
                    let set = *fraction >= 1.0 || self.rng.gen::<f64>() < *fraction;
                    if set {
                        rec.message.edns.get_or_insert_with(Edns::default).dnssec_ok = true;
                    } else if let Some(e) = rec.message.edns.as_mut() {
                        e.dnssec_ok = false;
                    }
                }
                Mutation::ClearDoBit => {
                    if let Some(e) = rec.message.edns.as_mut() {
                        e.dnssec_ok = false;
                    }
                }
                Mutation::PrefixQname(prefix) => {
                    for q in &mut rec.message.questions {
                        if let Ok(n) = q.qname.prepend(prefix.as_bytes()) {
                            q.qname = n;
                        }
                    }
                }
                Mutation::ScaleTime(f) => {
                    rec.time_us = (rec.time_us as f64 * f).round().max(0.0) as u64;
                }
                Mutation::ShiftTime(d) => {
                    rec.time_us = rec.time_us.saturating_add_signed(*d);
                }
                Mutation::SetEdnsPayload(size) => {
                    rec.message
                        .edns
                        .get_or_insert_with(Edns::default)
                        .udp_payload_size = *size;
                }
                Mutation::SetRecursionDesired(rd) => {
                    rec.message.header.recursion_desired = *rd;
                }
            }
        }
    }

    /// Applies the pipeline to a whole trace.
    pub fn apply_all(&mut self, records: &mut [TraceRecord]) {
        for rec in records {
            self.apply(rec);
        }
    }
}

/// Convenience for the paper's §5.2 experiment: every query over TCP.
pub fn all_tcp(seed: u64) -> QueryMutator {
    QueryMutator::new(seed).push(Mutation::SetProtocol(Protocol::Tcp))
}

/// Convenience for §5.2: every query over TLS.
pub fn all_tls(seed: u64) -> QueryMutator {
    QueryMutator::new(seed).push(Mutation::SetProtocol(Protocol::Tls))
}

/// Extension (the intro's third what-if): every query over QUIC.
pub fn all_quic(seed: u64) -> QueryMutator {
    QueryMutator::new(seed).push(Mutation::SetProtocol(Protocol::Quic))
}

/// Convenience for §5.1: every query requests DNSSEC.
pub fn all_dnssec(seed: u64) -> QueryMutator {
    QueryMutator::new(seed).push(Mutation::SetDoBit { fraction: 1.0 })
}

/// Marker prefix used by the evaluation to match replayed queries with
/// originals ("we match query with reply by prepending a unique string to
/// every query names", §4.2).
pub fn with_trial_marker(seed: u64, trial: u32) -> QueryMutator {
    QueryMutator::new(seed).push(Mutation::PrefixQname(format!("t{trial}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::{Name, RrType};

    fn recs(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                TraceRecord::udp_query(
                    i as u64 * 100,
                    "10.0.0.1".parse().unwrap(),
                    4242,
                    Name::parse(&format!("q{i}.example.com")).unwrap(),
                    RrType::A,
                )
            })
            .collect()
    }

    #[test]
    fn set_protocol_all() {
        let mut trace = recs(10);
        all_tcp(1).apply_all(&mut trace);
        assert!(trace.iter().all(|r| r.protocol == Protocol::Tcp));
        all_tls(1).apply_all(&mut trace);
        assert!(trace.iter().all(|r| r.protocol == Protocol::Tls));
    }

    #[test]
    fn do_bit_full_fraction() {
        let mut trace = recs(10);
        all_dnssec(1).apply_all(&mut trace);
        assert!(trace.iter().all(|r| r.dnssec_ok()));
    }

    #[test]
    fn do_bit_partial_fraction_is_seeded() {
        let mut t1 = recs(2000);
        let mut t2 = recs(2000);
        QueryMutator::new(7)
            .push(Mutation::SetDoBit { fraction: 0.723 })
            .apply_all(&mut t1);
        QueryMutator::new(7)
            .push(Mutation::SetDoBit { fraction: 0.723 })
            .apply_all(&mut t2);
        assert_eq!(t1, t2, "same seed must give identical mutation");
        let share = t1.iter().filter(|r| r.dnssec_ok()).count() as f64 / 2000.0;
        assert!((share - 0.723).abs() < 0.05, "share {share} far from 0.723");
        // Different seed differs somewhere.
        let mut t3 = recs(2000);
        QueryMutator::new(8)
            .push(Mutation::SetDoBit { fraction: 0.723 })
            .apply_all(&mut t3);
        assert_ne!(t1, t3);
    }

    #[test]
    fn clear_do_bit() {
        let mut trace = recs(5);
        all_dnssec(1).apply_all(&mut trace);
        QueryMutator::new(1)
            .push(Mutation::ClearDoBit)
            .apply_all(&mut trace);
        assert!(trace.iter().all(|r| !r.dnssec_ok()));
    }

    #[test]
    fn prefix_qname() {
        let mut trace = recs(3);
        with_trial_marker(1, 4).apply_all(&mut trace);
        assert_eq!(
            trace[0].qname().unwrap(),
            &Name::parse("t4.q0.example.com").unwrap()
        );
    }

    #[test]
    fn time_scale_and_shift() {
        let mut trace = recs(3); // times 0, 100, 200
        QueryMutator::new(1)
            .push(Mutation::ScaleTime(2.0))
            .push(Mutation::ShiftTime(-150))
            .apply_all(&mut trace);
        assert_eq!(trace[0].time_us, 0, "clamped at zero");
        assert_eq!(trace[1].time_us, 50);
        assert_eq!(trace[2].time_us, 250);
    }

    #[test]
    fn edns_payload_created_if_missing() {
        let mut trace = recs(1);
        assert!(trace[0].message.edns.is_none());
        QueryMutator::new(1)
            .push(Mutation::SetEdnsPayload(1232))
            .apply_all(&mut trace);
        assert_eq!(
            trace[0].message.edns.as_ref().unwrap().udp_payload_size,
            1232
        );
    }

    #[test]
    fn pipeline_order_matters() {
        let mut trace = recs(1);
        QueryMutator::new(1)
            .push(Mutation::PrefixQname("a".into()))
            .push(Mutation::PrefixQname("b".into()))
            .apply_all(&mut trace);
        assert_eq!(
            trace[0].qname().unwrap(),
            &Name::parse("b.a.q0.example.com").unwrap()
        );
    }

    #[test]
    fn rd_bit_control() {
        let mut trace = recs(1);
        QueryMutator::new(1)
            .push(Mutation::SetRecursionDesired(false))
            .apply_all(&mut trace);
        assert!(!trace[0].message.header.recursion_desired);
    }
}
