//! DNS trace handling for the LDplayer reproduction (§2.5 of the paper).
//!
//! A trace is a time-ordered sequence of [`TraceRecord`]s — captured DNS
//! queries (and optionally responses) with their timestamps, endpoint
//! addresses, and transport. Three interchangeable on-disk formats mirror
//! the paper's input pipeline (Figure 3):
//!
//! 1. [`capture`] — a compact binary packet-capture format, plus [`pcap`]
//!    for real libpcap files (tcpdump/wireshark interchange),
//! 2. [`text`] — column-based plain text for easy editing with any tool,
//! 3. [`stream`] — a length-prefixed internal binary stream, the fast replay
//!    input.
//!
//! [`mutate`] implements the query mutator: composable transforms (change
//! transport, set the DO bit on a fraction of queries, rewrite names, …)
//! applied while converting between formats, or live during replay.

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod capture;
pub mod mutate;
pub mod pcap;
pub mod record;
pub mod stats;
pub mod stream;
pub mod text;

pub use mutate::{Mutation, QueryMutator};
pub use record::{Direction, Protocol, TraceRecord};
pub use stats::TraceStats;

use std::fmt;

/// Errors across trace reading/writing/converting.
#[derive(Debug)]
pub enum TraceError {
    Io(std::io::Error),
    Wire(ldp_wire::WireError),
    /// Malformed trace file content.
    Format {
        offset: u64,
        reason: String,
    },
    /// A value does not fit the on-disk field that must carry it (e.g. a
    /// DNS message longer than a `u16` length prefix). Writers return this
    /// instead of silently truncating the length and corrupting the file.
    Oversize {
        /// Which field overflowed (e.g. "stream frame wire_len").
        what: &'static str,
        /// The value that did not fit.
        len: usize,
        /// The largest value the field can carry.
        max: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Wire(e) => write!(f, "trace wire error: {e}"),
            TraceError::Format { offset, reason } => {
                write!(f, "malformed trace at offset {offset}: {reason}")
            }
            TraceError::Oversize { what, len, max } => {
                write!(f, "{what} of {len} exceeds the field maximum {max}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<ldp_wire::WireError> for TraceError {
    fn from(e: ldp_wire::WireError) -> Self {
        TraceError::Wire(e)
    }
}
