//! Column-based plain-text trace format — the human-editable middle stage
//! of the mutation pipeline (Figure 3 of the paper: "convert network traces
//! to human-readable plain text for flexible and user-friendly
//! manipulation").
//!
//! One line per message:
//!
//! ```text
//! time_us src_ip src_port dst_ip dst_port proto dir id qname qclass qtype flags
//! ```
//!
//! `flags` is a comma-separated list from `rd`, `cd`, `do`, `aa`, `tc`,
//! `ra`, `ad`, or `-` when none. Lines starting with `#` are comments.
//!
//! The text form carries the query-relevant fields only (a response's
//! answer sections are not representable); converting a full capture to
//! text and back is lossy by design — it is the *query* editing surface.

use std::io::{BufRead, Write};
use std::str::FromStr;

use ldp_wire::{Edns, Message, Name, RrClass, RrType};

use crate::record::{Direction, Protocol, TraceRecord};
use crate::TraceError;

/// Formats one record as a text line.
pub fn format_line(rec: &TraceRecord) -> String {
    let q = rec.message.question();
    let (qname, qclass, qtype) = match q {
        Some(q) => (
            q.qname.to_string(),
            q.qclass.to_string(),
            q.qtype.to_string(),
        ),
        None => (".".into(), "IN".into(), "A".into()),
    };
    let mut flags = Vec::new();
    let h = &rec.message.header;
    if h.recursion_desired {
        flags.push("rd");
    }
    if h.checking_disabled {
        flags.push("cd");
    }
    if rec.message.dnssec_ok() {
        flags.push("do");
    }
    if h.authoritative {
        flags.push("aa");
    }
    if h.truncated {
        flags.push("tc");
    }
    if h.recursion_available {
        flags.push("ra");
    }
    if h.authentic_data {
        flags.push("ad");
    }
    let flags = if flags.is_empty() {
        "-".to_string()
    } else {
        flags.join(",")
    };
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {}",
        rec.time_us,
        rec.src,
        rec.src_port,
        rec.dst,
        rec.dst_port,
        rec.protocol,
        match rec.direction {
            Direction::Query => "q",
            Direction::Response => "r",
        },
        rec.message.header.id,
        qname,
        qclass,
        qtype,
        flags
    )
}

/// Parses one text line back into a (query-shaped) record.
pub fn parse_line(line: &str, lineno: u64) -> Result<TraceRecord, TraceError> {
    let err = |reason: String| TraceError::Format {
        offset: lineno,
        reason,
    };
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != 12 {
        return Err(err(format!("expected 12 fields, got {}", fields.len())));
    }
    let time_us: u64 = fields[0].parse().map_err(|_| err("bad time".into()))?;
    let src = fields[1].parse().map_err(|_| err("bad src ip".into()))?;
    let src_port: u16 = fields[2].parse().map_err(|_| err("bad src port".into()))?;
    let dst = fields[3].parse().map_err(|_| err("bad dst ip".into()))?;
    let dst_port: u16 = fields[4].parse().map_err(|_| err("bad dst port".into()))?;
    let protocol = Protocol::from_str(fields[5]).map_err(err)?;
    let direction = match fields[6] {
        "q" => Direction::Query,
        "r" => Direction::Response,
        d => return Err(err(format!("bad direction {d:?}"))),
    };
    let id: u16 = fields[7].parse().map_err(|_| err("bad id".into()))?;
    let qname = Name::parse(fields[8]).map_err(|e| err(e.to_string()))?;
    let qclass = RrClass::from_str(fields[9]).map_err(|e| err(e.to_string()))?;
    let qtype = RrType::from_str(fields[10]).map_err(|e| err(e.to_string()))?;

    let mut message = Message::query(id, qname, qtype);
    message.questions[0].qclass = qclass;
    message.header.recursion_desired = false;
    if fields[11] != "-" {
        for flag in fields[11].split(',') {
            match flag {
                "rd" => message.header.recursion_desired = true,
                "cd" => message.header.checking_disabled = true,
                "aa" => message.header.authoritative = true,
                "tc" => message.header.truncated = true,
                "ra" => message.header.recursion_available = true,
                "ad" => message.header.authentic_data = true,
                "do" => {
                    message.edns.get_or_insert_with(Edns::default).dnssec_ok = true;
                }
                other => return Err(err(format!("unknown flag {other:?}"))),
            }
        }
    }
    if direction == Direction::Response {
        message.header.response = true;
    }
    Ok(TraceRecord {
        time_us,
        src,
        src_port,
        dst,
        dst_port,
        protocol,
        direction,
        message,
    })
}

/// Writes records as text, one line each.
pub fn write_text<W: Write>(mut w: W, records: &[TraceRecord]) -> Result<(), TraceError> {
    for rec in records {
        writeln!(w, "{}", format_line(rec))?;
    }
    Ok(())
}

/// Reads a whole text trace, skipping blank lines and `#` comments.
pub fn read_text<R: BufRead>(r: R) -> Result<Vec<TraceRecord>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_line(trimmed, i as u64 + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> TraceRecord {
        let mut rec = TraceRecord::udp_query(
            1234567,
            "10.0.0.1".parse().unwrap(),
            4242,
            Name::parse("www.example.com").unwrap(),
            RrType::Aaaa,
        );
        rec.message.header.id = 777;
        rec.message.edns = Some(Edns::with_do());
        rec
    }

    #[test]
    fn line_roundtrip() {
        let rec = sample();
        let line = format_line(&rec);
        let back = parse_line(&line, 1).unwrap();
        assert_eq!(back.time_us, rec.time_us);
        assert_eq!(back.qname(), rec.qname());
        assert_eq!(back.qtype(), rec.qtype());
        assert_eq!(back.message.header.id, 777);
        assert!(back.dnssec_ok());
        assert!(back.message.header.recursion_desired);
        assert_eq!(back.protocol, Protocol::Udp);
    }

    #[test]
    fn file_roundtrip_with_comments() {
        let recs = vec![sample(), {
            let mut r = sample();
            r.time_us = 999;
            r.protocol = Protocol::Tcp;
            r.message.header.recursion_desired = false;
            r.message.edns = None;
            r
        }];
        let mut buf = Vec::new();
        buf.extend_from_slice(b"# a comment line\n\n");
        write_text(&mut buf, &recs).unwrap();
        let back = read_text(Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].protocol, Protocol::Tcp);
        assert!(!back[1].dnssec_ok());
        assert!(!back[1].message.header.recursion_desired);
    }

    #[test]
    fn no_flags_dash() {
        let mut rec = sample();
        rec.message.header.recursion_desired = false;
        rec.message.edns = None;
        let line = format_line(&rec);
        assert!(line.ends_with(" -"), "{line}");
        let back = parse_line(&line, 1).unwrap();
        assert!(!back.message.header.recursion_desired);
    }

    #[test]
    fn editability_change_type_in_text() {
        // The whole point of the text stage: a sed-style edit must work.
        let line = format_line(&sample());
        let edited = line.replace(" udp ", " tcp ");
        let back = parse_line(&edited, 1).unwrap();
        assert_eq!(back.protocol, Protocol::Tcp);
    }

    #[test]
    fn malformed_lines_error_with_lineno() {
        for bad in [
            "not enough fields",
            "x 10.0.0.1 1 10.0.0.2 2 udp q 1 a. IN A -",
            "1 10.0.0.1 1 10.0.0.2 2 carrier q 1 a. IN A -",
            "1 10.0.0.1 1 10.0.0.2 2 udp x 1 a. IN A -",
            "1 10.0.0.1 1 10.0.0.2 2 udp q 1 a. IN A bogus",
        ] {
            match parse_line(bad, 42) {
                Err(TraceError::Format { offset, .. }) => assert_eq!(offset, 42),
                other => panic!("expected format error for {bad:?}, got {other:?}"),
            }
        }
    }
}
