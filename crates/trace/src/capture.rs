//! Binary packet-capture trace format — the stand-in for pcap/erf input.
//!
//! Layout: an 8-byte header (`LDPCAP\x01` magic + version), then one frame
//! per message:
//!
//! ```text
//! u64 time_us | u8 addr_kind | src ip (4|16) | u16 src_port
//!             | dst ip (4|16) | u16 dst_port
//! u8 protocol | u8 direction | u16 wire_len | wire bytes (DNS message)
//! ```
//!
//! All integers big-endian. Both IPs share `addr_kind` (0 = v4, 1 = v6);
//! mixed-family packets don't occur in practice.

use std::io::{Read, Write};
use std::net::IpAddr;

use ldp_wire::Message;

use crate::record::{Direction, Protocol, TraceRecord};
use crate::TraceError;

const MAGIC: &[u8; 8] = b"LDPCAP\x01\x00";

/// Streaming writer for capture files.
pub struct CaptureWriter<W: Write> {
    inner: W,
    frames: u64,
}

impl<W: Write> CaptureWriter<W> {
    /// Writes the file header and returns the writer.
    pub fn new(mut inner: W) -> Result<Self, TraceError> {
        inner.write_all(MAGIC)?;
        Ok(CaptureWriter { inner, frames: 0 })
    }

    /// Appends one record.
    pub fn write(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        let wire = rec.message.to_bytes()?;
        let wire_len = u16::try_from(wire.len()).map_err(|_| TraceError::Oversize {
            what: "capture frame wire_len",
            len: wire.len(),
            max: u16::MAX as usize,
        })?;
        let mut buf = Vec::with_capacity(wire.len() + 48);
        buf.extend_from_slice(&rec.time_us.to_be_bytes());
        match (rec.src, rec.dst) {
            (IpAddr::V4(s), IpAddr::V4(d)) => {
                buf.push(0);
                buf.extend_from_slice(&s.octets());
                buf.extend_from_slice(&rec.src_port.to_be_bytes());
                buf.extend_from_slice(&d.octets());
                buf.extend_from_slice(&rec.dst_port.to_be_bytes());
            }
            (IpAddr::V6(s), IpAddr::V6(d)) => {
                buf.push(1);
                buf.extend_from_slice(&s.octets());
                buf.extend_from_slice(&rec.src_port.to_be_bytes());
                buf.extend_from_slice(&d.octets());
                buf.extend_from_slice(&rec.dst_port.to_be_bytes());
            }
            _ => {
                return Err(TraceError::Format {
                    offset: self.frames,
                    reason: "mixed v4/v6 endpoints in one frame".into(),
                })
            }
        }
        buf.push(rec.protocol.tag());
        buf.push(match rec.direction {
            Direction::Query => 0,
            Direction::Response => 1,
        });
        buf.extend_from_slice(&wire_len.to_be_bytes());
        buf.extend_from_slice(&wire);
        self.inner.write_all(&buf)?;
        self.frames += 1;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming reader for capture files; iterate with [`CaptureReader::read`]
/// or the `Iterator` impl.
pub struct CaptureReader<R: Read> {
    inner: R,
    offset: u64,
}

impl<R: Read> CaptureReader<R> {
    /// Validates the header and returns the reader.
    pub fn new(mut inner: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        inner.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceError::Format {
                offset: 0,
                reason: "bad capture magic".into(),
            });
        }
        Ok(CaptureReader { inner, offset: 8 })
    }

    fn read_exact_or_eof(&mut self, buf: &mut [u8]) -> Result<bool, TraceError> {
        // Distinguish clean EOF (at a frame boundary) from truncation.
        let mut read = 0;
        while read < buf.len() {
            let n = self.inner.read(&mut buf[read..])?;
            if n == 0 {
                if read == 0 {
                    return Ok(false);
                }
                return Err(TraceError::Format {
                    offset: self.offset + read as u64,
                    reason: "truncated frame".into(),
                });
            }
            read += n;
        }
        self.offset += buf.len() as u64;
        Ok(true)
    }

    /// Reads the next record; `Ok(None)` at clean end-of-file.
    pub fn read(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        let mut head = [0u8; 9]; // time + addr_kind
        if !self.read_exact_or_eof(&mut head)? {
            return Ok(None);
        }
        let time_us = u64::from_be_bytes(head[..8].try_into().unwrap());
        let (src, src_port, dst, dst_port) = match head[8] {
            0 => {
                let mut a = [0u8; 12];
                self.require(&mut a)?;
                (
                    IpAddr::from(<[u8; 4]>::try_from(&a[0..4]).unwrap()),
                    u16::from_be_bytes([a[4], a[5]]),
                    IpAddr::from(<[u8; 4]>::try_from(&a[6..10]).unwrap()),
                    u16::from_be_bytes([a[10], a[11]]),
                )
            }
            1 => {
                let mut a = [0u8; 36];
                self.require(&mut a)?;
                (
                    IpAddr::from(<[u8; 16]>::try_from(&a[0..16]).unwrap()),
                    u16::from_be_bytes([a[16], a[17]]),
                    IpAddr::from(<[u8; 16]>::try_from(&a[18..34]).unwrap()),
                    u16::from_be_bytes([a[34], a[35]]),
                )
            }
            k => {
                return Err(TraceError::Format {
                    offset: self.offset,
                    reason: format!("bad addr kind {k}"),
                })
            }
        };
        let mut tail = [0u8; 4];
        self.require(&mut tail)?;
        let protocol = Protocol::from_tag(tail[0]).ok_or_else(|| TraceError::Format {
            offset: self.offset,
            reason: format!("bad protocol tag {}", tail[0]),
        })?;
        let direction = match tail[1] {
            0 => Direction::Query,
            1 => Direction::Response,
            d => {
                return Err(TraceError::Format {
                    offset: self.offset,
                    reason: format!("bad direction {d}"),
                })
            }
        };
        let wire_len = u16::from_be_bytes([tail[2], tail[3]]) as usize;
        let mut wire = vec![0u8; wire_len];
        self.require(&mut wire)?;
        let message = Message::from_bytes(&wire)?;
        Ok(Some(TraceRecord {
            time_us,
            src,
            src_port,
            dst,
            dst_port,
            protocol,
            direction,
            message,
        }))
    }

    fn require(&mut self, buf: &mut [u8]) -> Result<(), TraceError> {
        if !self.read_exact_or_eof(buf)? {
            return Err(TraceError::Format {
                offset: self.offset,
                reason: "truncated frame".into(),
            });
        }
        Ok(())
    }
}

impl<R: Read> Iterator for CaptureReader<R> {
    type Item = Result<TraceRecord, TraceError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.read().transpose()
    }
}

/// Convenience: writes all records to a byte vector.
pub fn to_bytes(records: &[TraceRecord]) -> Result<Vec<u8>, TraceError> {
    let mut w = CaptureWriter::new(Vec::new())?;
    for r in records {
        w.write(r)?;
    }
    w.finish()
}

/// Convenience: reads all records from a byte slice.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
    CaptureReader::new(bytes)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::{Name, RrType};

    fn sample() -> Vec<TraceRecord> {
        let mk = |t: u64, ip: &str, name: &str| {
            TraceRecord::udp_query(
                t,
                ip.parse().unwrap(),
                40000 + (t % 1000) as u16,
                Name::parse(name).unwrap(),
                RrType::A,
            )
        };
        vec![
            mk(0, "10.0.0.1", "a.example.com"),
            mk(1500, "10.0.0.2", "b.example.org"),
            mk(99_000_000, "10.1.2.3", "c.example.net"),
        ]
    }

    #[test]
    fn roundtrip_v4() {
        let recs = sample();
        let bytes = to_bytes(&recs).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn roundtrip_v6_and_protocols() {
        let mut rec = TraceRecord::udp_query(
            7,
            "2001:db8::1".parse().unwrap(),
            5555,
            Name::parse("x.test").unwrap(),
            RrType::Aaaa,
        );
        rec.dst = "2001:db8::53".parse().unwrap();
        rec.protocol = Protocol::Tls;
        rec.direction = Direction::Response;
        let bytes = to_bytes(std::slice::from_ref(&rec)).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, vec![rec]);
    }

    #[test]
    fn mixed_families_rejected() {
        let mut rec = TraceRecord::udp_query(
            7,
            "2001:db8::1".parse().unwrap(),
            5555,
            Name::parse("x.test").unwrap(),
            RrType::A,
        );
        rec.dst = "192.0.2.53".parse().unwrap();
        assert!(to_bytes(std::slice::from_ref(&rec)).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(from_bytes(b"NOTMAGIC........").is_err());
    }

    #[test]
    fn truncation_detected_not_panicking() {
        let bytes = to_bytes(&sample()).unwrap();
        for cut in 9..bytes.len() - 1 {
            let res = from_bytes(&bytes[..cut]);
            // Either parses a prefix cleanly (cut at frame boundary) or
            // reports a format/wire error; never panics.
            if let Ok(records) = res {
                assert!(records.len() < 3);
            }
        }
    }

    #[test]
    fn empty_file_yields_no_records() {
        let bytes = to_bytes(&[]).unwrap();
        assert_eq!(from_bytes(&bytes).unwrap(), vec![]);
    }
}
