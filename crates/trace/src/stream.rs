//! The customized internal binary stream (Figure 3 of the paper): the fast
//! replay input, with each message length-prefixed "to distinguish
//! different messages in the input stream".
//!
//! Frame layout (after a 4-byte `LDPS` magic):
//!
//! ```text
//! u32 frame_len | frame bytes
//! ```
//!
//! where the frame is:
//!
//! ```text
//! u64 time_us | u8 addr_kind | src ip | u16 src_port | u8 protocol
//!             | u16 wire_len | wire query bytes
//! ```
//!
//! Compared to [`crate::capture`], the stream drops the response direction
//! and destination (replay targets are chosen by the query engine), making
//! frames smaller and decode branch-free — this is the format the paper
//! pre-converts to so that "query manipulation does not limit replay times".

use std::io::{Read, Write};
use std::net::IpAddr;

use ldp_wire::Message;

use crate::record::{Direction, Protocol, TraceRecord};
use crate::TraceError;

const MAGIC: &[u8; 4] = b"LDPS";

/// Serializes one record into a stream frame (without the length prefix).
pub fn encode_frame(rec: &TraceRecord) -> Result<Vec<u8>, TraceError> {
    let wire = rec.message.to_bytes()?;
    let wire_len = u16::try_from(wire.len()).map_err(|_| TraceError::Oversize {
        what: "stream frame wire_len",
        len: wire.len(),
        max: u16::MAX as usize,
    })?;
    let mut buf = Vec::with_capacity(wire.len() + 32);
    buf.extend_from_slice(&rec.time_us.to_be_bytes());
    match rec.src {
        IpAddr::V4(a) => {
            buf.push(0);
            buf.extend_from_slice(&a.octets());
        }
        IpAddr::V6(a) => {
            buf.push(1);
            buf.extend_from_slice(&a.octets());
        }
    }
    buf.extend_from_slice(&rec.src_port.to_be_bytes());
    buf.push(rec.protocol.tag());
    buf.extend_from_slice(&wire_len.to_be_bytes());
    buf.extend_from_slice(&wire);
    Ok(buf)
}

/// Decodes one stream frame.
pub fn decode_frame(frame: &[u8]) -> Result<TraceRecord, TraceError> {
    let fail = |reason: &str| TraceError::Format {
        offset: 0,
        reason: reason.into(),
    };
    if frame.len() < 9 {
        return Err(fail("frame too short"));
    }
    let time_us = u64::from_be_bytes(frame[..8].try_into().unwrap());
    let mut pos = 8;
    let src: IpAddr = match frame[pos] {
        0 => {
            if frame.len() < pos + 5 {
                return Err(fail("short v4 addr"));
            }
            let a = IpAddr::from(<[u8; 4]>::try_from(&frame[pos + 1..pos + 5]).unwrap());
            pos += 5;
            a
        }
        1 => {
            if frame.len() < pos + 17 {
                return Err(fail("short v6 addr"));
            }
            let a = IpAddr::from(<[u8; 16]>::try_from(&frame[pos + 1..pos + 17]).unwrap());
            pos += 17;
            a
        }
        _ => return Err(fail("bad addr kind")),
    };
    if frame.len() < pos + 5 {
        return Err(fail("short frame tail"));
    }
    let src_port = u16::from_be_bytes([frame[pos], frame[pos + 1]]);
    let protocol = Protocol::from_tag(frame[pos + 2]).ok_or_else(|| fail("bad protocol tag"))?;
    let wire_len = u16::from_be_bytes([frame[pos + 3], frame[pos + 4]]) as usize;
    pos += 5;
    if frame.len() != pos + wire_len {
        return Err(fail("frame length mismatch"));
    }
    let message = Message::from_bytes(&frame[pos..])?;
    Ok(TraceRecord {
        time_us,
        src,
        src_port,
        dst: IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
        dst_port: ldp_wire::DNS_PORT,
        protocol,
        direction: Direction::Query,
        message,
    })
}

/// Streaming stream-file writer.
pub struct StreamWriter<W: Write> {
    inner: W,
    frames: u64,
}

impl<W: Write> StreamWriter<W> {
    pub fn new(mut inner: W) -> Result<Self, TraceError> {
        inner.write_all(MAGIC)?;
        Ok(StreamWriter { inner, frames: 0 })
    }

    pub fn write(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        let frame = encode_frame(rec)?;
        let frame_len = u32::try_from(frame.len()).map_err(|_| TraceError::Oversize {
            what: "stream frame_len prefix",
            len: frame.len(),
            max: u32::MAX as usize,
        })?;
        self.inner.write_all(&frame_len.to_be_bytes())?;
        self.inner.write_all(&frame)?;
        self.frames += 1;
        Ok(())
    }

    pub fn frames(&self) -> u64 {
        self.frames
    }

    pub fn finish(mut self) -> Result<W, TraceError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming stream-file reader.
///
/// The reader owns a scratch buffer reused for every frame, so steady-state
/// decoding allocates only what the decoded [`TraceRecord`] itself needs —
/// the per-record frame allocation is amortized away, which matters at the
/// millions-of-records scale the replay pipeline reads.
pub struct StreamReader<R: Read> {
    inner: R,
    offset: u64,
    /// Reusable frame buffer (the decode arena): grown on demand, never
    /// shrunk, so reads after warmup are allocation-free.
    scratch: Vec<u8>,
}

impl<R: Read> StreamReader<R> {
    pub fn new(mut inner: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        inner.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceError::Format {
                offset: 0,
                reason: "bad stream magic".into(),
            });
        }
        Ok(StreamReader {
            inner,
            offset: 4,
            scratch: Vec::new(),
        })
    }

    /// Reads the next record; `Ok(None)` at clean EOF.
    pub fn read(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        let mut lenbuf = [0u8; 4];
        let mut got = 0;
        while got < 4 {
            let n = self.inner.read(&mut lenbuf[got..])?;
            if n == 0 {
                if got == 0 {
                    return Ok(None);
                }
                return Err(TraceError::Format {
                    offset: self.offset,
                    reason: "truncated length prefix".into(),
                });
            }
            got += n;
        }
        let len = u32::from_be_bytes(lenbuf) as usize;
        self.scratch.resize(len, 0);
        self.inner
            .read_exact(&mut self.scratch)
            .map_err(|_| TraceError::Format {
                offset: self.offset,
                reason: "truncated frame".into(),
            })?;
        self.offset += 4 + len as u64;
        decode_frame(&self.scratch).map(Some).map_err(|e| match e {
            TraceError::Format { reason, .. } => TraceError::Format {
                offset: self.offset,
                reason,
            },
            other => other,
        })
    }

    /// Fills `batch` with up to `max` records, reusing the batch's spine
    /// and this reader's scratch buffer. Returns the number of records
    /// appended; `0` means clean EOF. The batch is *not* cleared first, so
    /// callers can top up a partially drained batch.
    pub fn read_batch(&mut self, batch: &mut RecordBatch, max: usize) -> Result<usize, TraceError> {
        let mut appended = 0;
        while appended < max {
            match self.read()? {
                Some(rec) => {
                    batch.records.push(rec);
                    appended += 1;
                }
                None => break,
            }
        }
        Ok(appended)
    }
}

/// A reusable decode batch: the unit of work the replay pipeline's Reader
/// hands to queriers. Clearing a batch keeps the spine's capacity, so a
/// recycled batch makes `read_batch` allocation-free at steady state
/// (aside from per-record message payloads).
#[derive(Debug, Default)]
pub struct RecordBatch {
    /// The decoded records, in stream order.
    pub records: Vec<TraceRecord>,
}

impl RecordBatch {
    pub fn with_capacity(cap: usize) -> RecordBatch {
        RecordBatch {
            records: Vec::with_capacity(cap),
        }
    }

    /// Drops the records but keeps the allocation for reuse.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl<R: Read> Iterator for StreamReader<R> {
    type Item = Result<TraceRecord, TraceError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.read().transpose()
    }
}

/// Convenience: encode all records into stream bytes.
pub fn to_bytes(records: &[TraceRecord]) -> Result<Vec<u8>, TraceError> {
    let mut w = StreamWriter::new(Vec::new())?;
    for r in records {
        w.write(r)?;
    }
    w.finish()
}

/// Convenience: decode all records from stream bytes.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
    StreamReader::new(bytes)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::{Name, RrType};

    fn sample(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                let mut rec = TraceRecord::udp_query(
                    i as u64 * 1000,
                    format!("10.0.{}.{}", i / 250, i % 250 + 1).parse().unwrap(),
                    (40000 + i) as u16,
                    Name::parse(&format!("q{i}.example.com")).unwrap(),
                    RrType::A,
                );
                if i % 3 == 0 {
                    rec.protocol = Protocol::Tcp;
                }
                rec
            })
            .collect()
    }

    fn normalize(mut r: TraceRecord) -> TraceRecord {
        // The stream format intentionally drops the destination.
        r.dst = IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED);
        r.dst_port = ldp_wire::DNS_PORT;
        r
    }

    #[test]
    fn roundtrip() {
        let recs = sample(50);
        let bytes = to_bytes(&recs).unwrap();
        let back = from_bytes(&bytes).unwrap();
        let expect: Vec<_> = recs.into_iter().map(normalize).collect();
        assert_eq!(back, expect);
    }

    #[test]
    fn v6_roundtrip() {
        let mut rec = TraceRecord::udp_query(
            5,
            "2001:db8::7".parse().unwrap(),
            1234,
            Name::parse("v6.test").unwrap(),
            RrType::Aaaa,
        );
        rec.protocol = Protocol::Tls;
        let bytes = to_bytes(std::slice::from_ref(&rec)).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back[0].src, rec.src);
        assert_eq!(back[0].protocol, Protocol::Tls);
    }

    #[test]
    fn truncation_reported() {
        let bytes = to_bytes(&sample(3)).unwrap();
        let res = from_bytes(&bytes[..bytes.len() - 3]);
        assert!(res.is_err());
    }

    #[test]
    fn bad_magic() {
        assert!(from_bytes(b"XXXX").is_err());
    }

    #[test]
    fn empty_stream() {
        let bytes = to_bytes(&[]).unwrap();
        assert!(from_bytes(&bytes).unwrap().is_empty());
    }

    #[test]
    fn frame_is_smaller_than_capture_frame() {
        let recs = sample(100);
        let stream = to_bytes(&recs).unwrap();
        let capture = crate::capture::to_bytes(&recs).unwrap();
        assert!(
            stream.len() < capture.len(),
            "{} !< {}",
            stream.len(),
            capture.len()
        );
    }
}
