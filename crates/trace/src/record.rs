//! The in-memory trace record model.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr};

use ldp_wire::{Message, Name, RrType};

/// Transport a DNS message was (or should be) carried over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    Udp,
    Tcp,
    Tls,
    /// DNS over QUIC (RFC 9250) — the extension transport; the paper's
    /// intro names QUIC among its what-if questions.
    Quic,
}

impl Protocol {
    /// Single-byte tag used by the binary formats.
    pub fn tag(self) -> u8 {
        match self {
            Protocol::Udp => 0,
            Protocol::Tcp => 1,
            Protocol::Tls => 2,
            Protocol::Quic => 3,
        }
    }

    /// Inverse of [`Protocol::tag`].
    pub fn from_tag(tag: u8) -> Option<Protocol> {
        match tag {
            0 => Some(Protocol::Udp),
            1 => Some(Protocol::Tcp),
            2 => Some(Protocol::Tls),
            3 => Some(Protocol::Quic),
            _ => None,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Udp => f.write_str("udp"),
            Protocol::Tcp => f.write_str("tcp"),
            Protocol::Tls => f.write_str("tls"),
            Protocol::Quic => f.write_str("quic"),
        }
    }
}

impl std::str::FromStr for Protocol {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "udp" => Ok(Protocol::Udp),
            "tcp" => Ok(Protocol::Tcp),
            "tls" | "dot" => Ok(Protocol::Tls),
            "quic" | "doq" => Ok(Protocol::Quic),
            other => Err(format!("unknown protocol {other:?}")),
        }
    }
}

/// Whether a record is a query or a response (relative to the server whose
/// traffic was captured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    Query,
    Response,
}

/// One captured (or synthesized) DNS message with its network context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Microseconds since the trace epoch (the paper works at µs precision;
    /// inter-arrivals in Table 1 go down to 23 µs).
    pub time_us: u64,
    pub src: IpAddr,
    pub src_port: u16,
    pub dst: IpAddr,
    pub dst_port: u16,
    pub protocol: Protocol,
    pub direction: Direction,
    pub message: Message,
}

impl TraceRecord {
    /// Builds a simple UDP query record, the common case in synthesis.
    pub fn udp_query(time_us: u64, src: IpAddr, src_port: u16, qname: Name, qtype: RrType) -> Self {
        TraceRecord {
            time_us,
            src,
            src_port,
            dst: IpAddr::V4(Ipv4Addr::new(192, 0, 2, 53)),
            dst_port: ldp_wire::DNS_PORT,
            protocol: Protocol::Udp,
            direction: Direction::Query,
            message: Message::query(0, qname, qtype),
        }
    }

    /// Query name of the first question, if any.
    pub fn qname(&self) -> Option<&Name> {
        self.message.question().map(|q| &q.qname)
    }

    /// Query type of the first question, if any.
    pub fn qtype(&self) -> Option<RrType> {
        self.message.question().map(|q| q.qtype)
    }

    /// True when the DO bit is set.
    pub fn dnssec_ok(&self) -> bool {
        self.message.dnssec_ok()
    }

    /// The client identity used for same-source affinity: the source
    /// address for queries, destination for responses.
    pub fn client_addr(&self) -> IpAddr {
        match self.direction {
            Direction::Query => self.src,
            Direction::Response => self.dst,
        }
    }

    /// Time as float seconds (for stats/printing).
    pub fn time_seconds(&self) -> f64 {
        self.time_us as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_tags_roundtrip() {
        for p in [Protocol::Udp, Protocol::Tcp, Protocol::Tls, Protocol::Quic] {
            assert_eq!(Protocol::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Protocol::from_tag(9), None);
    }

    #[test]
    fn protocol_text_roundtrip() {
        for p in [Protocol::Udp, Protocol::Tcp, Protocol::Tls, Protocol::Quic] {
            assert_eq!(p.to_string().parse::<Protocol>().unwrap(), p);
        }
        assert_eq!("dot".parse::<Protocol>().unwrap(), Protocol::Tls);
        assert_eq!("doq".parse::<Protocol>().unwrap(), Protocol::Quic);
        assert!("sctp".parse::<Protocol>().is_err());
    }

    #[test]
    fn udp_query_accessors() {
        let name = Name::parse("example.com").unwrap();
        let rec = TraceRecord::udp_query(
            1_500_000,
            "10.0.0.1".parse().unwrap(),
            4444,
            name.clone(),
            RrType::A,
        );
        assert_eq!(rec.qname().unwrap(), &name);
        assert_eq!(rec.qtype().unwrap(), RrType::A);
        assert!(!rec.dnssec_ok());
        assert_eq!(rec.client_addr(), "10.0.0.1".parse::<IpAddr>().unwrap());
        assert!((rec.time_seconds() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn client_addr_for_response() {
        let name = Name::parse("example.com").unwrap();
        let mut rec = TraceRecord::udp_query(0, "10.0.0.1".parse().unwrap(), 4444, name, RrType::A);
        rec.direction = Direction::Response;
        rec.dst = "10.0.0.9".parse().unwrap();
        assert_eq!(rec.client_addr(), "10.0.0.9".parse::<IpAddr>().unwrap());
    }
}
