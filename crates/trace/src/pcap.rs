//! Real libpcap-format traces — the paper's actual input ("input is
//! normally network traces in some binary format (for example, pcap)",
//! §2.5).
//!
//! Reading: classic pcap (magic `0xa1b2c3d4`/`0xd4c3b2a1`, plus the
//! nanosecond variants), both endiannesses, LINKTYPE_ETHERNET (1),
//! LINKTYPE_RAW (101), and LINKTYPE_NULL (0) link layers, IPv4 and IPv6,
//! UDP and TCP. DNS payloads are recognized by port (53 standard, 853
//! DoT): UDP datagrams decode directly; for TCP the parser applies the
//! RFC 1035 2-byte length framing to each segment payload — exact when
//! messages align with segments (the dominant case for DNS's small
//! messages), best-effort otherwise (segments that reassemble across
//! packets are skipped and counted in [`PcapStats::skipped_tcp_segments`];
//! full stream reassembly is out of scope for a replay *input* format,
//! since replay needs queries, which fit in single segments).
//!
//! Writing: emits classic microsecond pcap with Ethernet framing, so
//! harvested or synthesized traces open in tcpdump/wireshark.

use std::io::{Read, Write};
use std::net::IpAddr;

use ldp_wire::Message;

use crate::record::{Direction, Protocol, TraceRecord};
use crate::TraceError;

const MAGIC_US_BE: u32 = 0xa1b2c3d4;
const MAGIC_US_LE: u32 = 0xd4c3b2a1;
const MAGIC_NS_BE: u32 = 0xa1b23c4d;
const MAGIC_NS_LE: u32 = 0x4d3cb2a1;

const LINKTYPE_NULL: u32 = 0;
const LINKTYPE_ETHERNET: u32 = 1;
const LINKTYPE_RAW: u32 = 101;

/// Parse statistics: what was recognized, what was skipped and why.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcapStats {
    pub packets: u64,
    pub dns_messages: u64,
    /// Packets that were not IP, not UDP/TCP, or not on a DNS port.
    pub non_dns_packets: u64,
    /// DNS-port payloads that failed to decode as DNS.
    pub undecodable: u64,
    /// TCP segments on DNS ports whose payload did not align with the
    /// 2-byte message framing (mid-stream segments).
    pub skipped_tcp_segments: u64,
    /// Truncated captures (caplen < len) whose payload was cut off.
    pub truncated_captures: u64,
}

/// Reads a whole pcap file, extracting every DNS message as a
/// [`TraceRecord`] (queries *and* responses; feed responses to the zone
/// constructor, queries to the replay engine).
pub fn read_pcap<R: Read>(mut input: R) -> Result<(Vec<TraceRecord>, PcapStats), TraceError> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    parse_pcap(&bytes)
}

/// Parses pcap bytes (see [`read_pcap`]).
pub fn parse_pcap(bytes: &[u8]) -> Result<(Vec<TraceRecord>, PcapStats), TraceError> {
    if bytes.len() < 24 {
        return Err(fmt_err(0, "pcap shorter than global header"));
    }
    let magic = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes"));
    let (big_endian, nanos) = match magic {
        MAGIC_US_BE => (true, false),
        MAGIC_US_LE => (false, false),
        MAGIC_NS_BE => (true, true),
        MAGIC_NS_LE => (false, true),
        _ => return Err(fmt_err(0, "not a pcap file (bad magic)")),
    };
    let u32at = |off: usize| -> u32 {
        let b: [u8; 4] = bytes[off..off + 4].try_into().expect("4 bytes");
        if big_endian {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    };
    let linktype = u32at(20);
    let link_skip = match linktype {
        LINKTYPE_ETHERNET => 14,
        LINKTYPE_RAW => 0,
        LINKTYPE_NULL => 4,
        other => {
            return Err(fmt_err(
                20,
                format!("unsupported pcap linktype {other} (need Ethernet/Raw/Null)"),
            ))
        }
    };

    let mut records = Vec::new();
    let mut stats = PcapStats::default();
    let mut off = 24usize;
    while off + 16 <= bytes.len() {
        let ts_sec = u32at(off) as u64;
        let ts_frac = u32at(off + 4) as u64;
        let caplen = u32at(off + 8) as usize;
        let origlen = u32at(off + 12) as usize;
        off += 16;
        if off + caplen > bytes.len() {
            return Err(fmt_err(off as u64, "truncated pcap record"));
        }
        let frame = &bytes[off..off + caplen];
        off += caplen;
        stats.packets += 1;
        if caplen < origlen {
            stats.truncated_captures += 1;
        }
        let time_us = ts_sec * 1_000_000 + if nanos { ts_frac / 1_000 } else { ts_frac };
        parse_frame(
            frame,
            link_skip,
            linktype,
            time_us,
            &mut records,
            &mut stats,
        );
    }
    Ok((records, stats))
}

fn fmt_err(offset: u64, reason: impl Into<String>) -> TraceError {
    TraceError::Format {
        offset,
        reason: reason.into(),
    }
}

/// Parses one link-layer frame into zero or more DNS trace records.
fn parse_frame(
    frame: &[u8],
    mut skip: usize,
    linktype: u32,
    time_us: u64,
    records: &mut Vec<TraceRecord>,
    stats: &mut PcapStats,
) {
    // Ethernet: check the ethertype and handle one VLAN tag.
    let mut ip_version_hint = None;
    if linktype == LINKTYPE_ETHERNET {
        if frame.len() < 14 {
            stats.non_dns_packets += 1;
            return;
        }
        let mut ethertype = u16::from_be_bytes([frame[12], frame[13]]);
        if ethertype == 0x8100 && frame.len() >= 18 {
            // 802.1Q tag.
            ethertype = u16::from_be_bytes([frame[16], frame[17]]);
            skip = 18;
        }
        ip_version_hint = match ethertype {
            0x0800 => Some(4),
            0x86DD => Some(6),
            _ => {
                stats.non_dns_packets += 1;
                return;
            }
        };
    }
    let Some(ip) = frame.get(skip..) else {
        stats.non_dns_packets += 1;
        return;
    };
    if ip.is_empty() {
        stats.non_dns_packets += 1;
        return;
    }
    let version = ip[0] >> 4;
    if let Some(hint) = ip_version_hint {
        if version != hint {
            stats.non_dns_packets += 1;
            return;
        }
    }
    match version {
        4 => parse_ipv4(ip, time_us, records, stats),
        6 => parse_ipv6(ip, time_us, records, stats),
        _ => stats.non_dns_packets += 1,
    }
}

fn parse_ipv4(ip: &[u8], time_us: u64, records: &mut Vec<TraceRecord>, stats: &mut PcapStats) {
    if ip.len() < 20 {
        stats.non_dns_packets += 1;
        return;
    }
    let ihl = (ip[0] & 0x0F) as usize * 4;
    if ihl < 20 || ip.len() < ihl {
        stats.non_dns_packets += 1;
        return;
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    let proto = ip[9];
    let src = IpAddr::from(<[u8; 4]>::try_from(&ip[12..16]).expect("4 bytes"));
    let dst = IpAddr::from(<[u8; 4]>::try_from(&ip[16..20]).expect("4 bytes"));
    let end = total_len.clamp(ihl, ip.len());
    parse_l4(proto, &ip[ihl..end], src, dst, time_us, records, stats);
}

fn parse_ipv6(ip: &[u8], time_us: u64, records: &mut Vec<TraceRecord>, stats: &mut PcapStats) {
    if ip.len() < 40 {
        stats.non_dns_packets += 1;
        return;
    }
    let payload_len = u16::from_be_bytes([ip[4], ip[5]]) as usize;
    let next_header = ip[6];
    let src = IpAddr::from(<[u8; 16]>::try_from(&ip[8..24]).expect("16 bytes"));
    let dst = IpAddr::from(<[u8; 16]>::try_from(&ip[24..40]).expect("16 bytes"));
    let end = (40 + payload_len).min(ip.len());
    // Extension headers are uncommon on DNS paths; handle the no-extension
    // case and count the rest as non-DNS.
    parse_l4(next_header, &ip[40..end], src, dst, time_us, records, stats);
}

fn parse_l4(
    proto: u8,
    payload: &[u8],
    src: IpAddr,
    dst: IpAddr,
    time_us: u64,
    records: &mut Vec<TraceRecord>,
    stats: &mut PcapStats,
) {
    match proto {
        17 => {
            // UDP.
            if payload.len() < 8 {
                stats.non_dns_packets += 1;
                return;
            }
            let sport = u16::from_be_bytes([payload[0], payload[1]]);
            let dport = u16::from_be_bytes([payload[2], payload[3]]);
            if !is_dns_port(sport) && !is_dns_port(dport) {
                stats.non_dns_packets += 1;
                return;
            }
            push_dns(
                &payload[8..],
                Protocol::Udp,
                src,
                sport,
                dst,
                dport,
                time_us,
                records,
                stats,
            );
        }
        6 => {
            // TCP: framing heuristic on the segment payload.
            if payload.len() < 20 {
                stats.non_dns_packets += 1;
                return;
            }
            let sport = u16::from_be_bytes([payload[0], payload[1]]);
            let dport = u16::from_be_bytes([payload[2], payload[3]]);
            if !is_dns_port(sport) && !is_dns_port(dport) {
                stats.non_dns_packets += 1;
                return;
            }
            let data_off = ((payload[12] >> 4) as usize) * 4;
            if data_off < 20 || payload.len() < data_off {
                stats.non_dns_packets += 1;
                return;
            }
            let mut seg = &payload[data_off..];
            if seg.is_empty() {
                // Pure ACK/SYN/FIN: not an error, just no DNS payload.
                return;
            }
            // Consume length-prefixed messages while they align exactly.
            let mut any = false;
            while seg.len() >= 2 {
                let len = u16::from_be_bytes([seg[0], seg[1]]) as usize;
                if len == 0 || seg.len() < 2 + len {
                    break;
                }
                push_dns(
                    &seg[2..2 + len],
                    Protocol::Tcp,
                    src,
                    sport,
                    dst,
                    dport,
                    time_us,
                    records,
                    stats,
                );
                any = true;
                seg = &seg[2 + len..];
            }
            if !any || !seg.is_empty() {
                stats.skipped_tcp_segments += 1;
            }
        }
        _ => stats.non_dns_packets += 1,
    }
}

fn is_dns_port(port: u16) -> bool {
    port == ldp_wire::DNS_PORT || port == ldp_wire::DNS_TLS_PORT
}

#[allow(clippy::too_many_arguments)]
fn push_dns(
    dns: &[u8],
    protocol: Protocol,
    src: IpAddr,
    src_port: u16,
    dst: IpAddr,
    dst_port: u16,
    time_us: u64,
    records: &mut Vec<TraceRecord>,
    stats: &mut PcapStats,
) {
    match Message::from_bytes(dns) {
        Ok(message) => {
            let direction = if message.header.response {
                Direction::Response
            } else {
                Direction::Query
            };
            stats.dns_messages += 1;
            records.push(TraceRecord {
                time_us,
                src,
                src_port,
                dst,
                dst_port,
                protocol,
                direction,
                message,
            });
        }
        Err(_) => stats.undecodable += 1,
    }
}

/// Writes records as a classic (microsecond, big-endian) pcap file with
/// Ethernet + IPv4/IPv6 + UDP framing, openable by tcpdump/wireshark.
/// TCP-protocol records are written as UDP frames carrying the same DNS
/// payload (a capture-visualization aid; the authoritative interchange
/// formats remain `.ldpc`/`.ldps`).
pub fn write_pcap<W: Write>(mut out: W, records: &[TraceRecord]) -> Result<(), TraceError> {
    // Global header.
    out.write_all(&MAGIC_US_BE.to_be_bytes())?;
    out.write_all(&2u16.to_be_bytes())?; // version major
    out.write_all(&4u16.to_be_bytes())?; // version minor
    out.write_all(&0u32.to_be_bytes())?; // thiszone
    out.write_all(&0u32.to_be_bytes())?; // sigfigs
    out.write_all(&65_535u32.to_be_bytes())?; // snaplen
    out.write_all(&LINKTYPE_ETHERNET.to_be_bytes())?;

    for rec in records {
        let dns = rec.message.to_bytes()?;
        let mut frame = Vec::with_capacity(dns.len() + 64);
        // Ethernet header: synthetic MACs, ethertype by family.
        frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
        frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]);
        match (rec.src, rec.dst) {
            (IpAddr::V4(s), IpAddr::V4(d)) => {
                frame.extend_from_slice(&0x0800u16.to_be_bytes());
                let udp_len = udp_len_u16(&dns)?;
                // The IPv4 total-length field is also u16, and the 28 bytes
                // of IP+UDP headers can push an otherwise-legal DNS payload
                // over the top — check the sum, not just the payload.
                let total =
                    u16::try_from(20 + 8 + dns.len()).map_err(|_| TraceError::Oversize {
                        what: "pcap ipv4 total_len",
                        len: 20 + 8 + dns.len(),
                        max: u16::MAX as usize,
                    })?;
                frame.push(0x45);
                frame.push(0);
                frame.extend_from_slice(&total.to_be_bytes());
                frame.extend_from_slice(&[0, 0, 0, 0]); // id, flags/frag
                frame.push(64); // ttl
                frame.push(17); // udp
                frame.extend_from_slice(&[0, 0]); // checksum (omitted)
                frame.extend_from_slice(&s.octets());
                frame.extend_from_slice(&d.octets());
                write_udp(&mut frame, rec, &dns, udp_len);
            }
            (IpAddr::V6(s), IpAddr::V6(d)) => {
                frame.extend_from_slice(&0x86DDu16.to_be_bytes());
                let udp_len = udp_len_u16(&dns)?;
                frame.push(0x60);
                frame.extend_from_slice(&[0, 0, 0]);
                frame.extend_from_slice(&udp_len.to_be_bytes());
                frame.push(17); // next header: udp
                frame.push(64); // hop limit
                frame.extend_from_slice(&s.octets());
                frame.extend_from_slice(&d.octets());
                write_udp(&mut frame, rec, &dns, udp_len);
            }
            _ => {
                return Err(fmt_err(0, "mixed v4/v6 endpoints in one record"));
            }
        }
        // Record header. The classic pcap timestamp is u32 seconds, so a
        // trace time past 2^32 seconds (~136 years of offset) cannot be
        // represented — reject it rather than wrapping the clock.
        let secs = u32::try_from(rec.time_us / 1_000_000).map_err(|_| TraceError::Oversize {
            what: "pcap timestamp seconds",
            len: (rec.time_us / 1_000_000) as usize,
            max: u32::MAX as usize,
        })?;
        out.write_all(&secs.to_be_bytes())?;
        // ldp-lint: allow(r2) -- remainder of /1_000_000 is < 1e6, in u32 range
        out.write_all(&((rec.time_us % 1_000_000) as u32).to_be_bytes())?;
        // ldp-lint: allow(r2) -- frame is headers + a <=64KiB DNS payload, in u32 range
        let caplen = frame.len() as u32;
        out.write_all(&caplen.to_be_bytes())?;
        out.write_all(&caplen.to_be_bytes())?;
        out.write_all(&frame)?;
    }
    Ok(())
}

/// The UDP length field (header + DNS payload) as the u16 the wire format
/// requires, or [`TraceError::Oversize`] if the payload cannot fit.
fn udp_len_u16(dns: &[u8]) -> Result<u16, TraceError> {
    u16::try_from(8 + dns.len()).map_err(|_| TraceError::Oversize {
        what: "pcap udp_len",
        len: 8 + dns.len(),
        max: u16::MAX as usize,
    })
}

fn write_udp(frame: &mut Vec<u8>, rec: &TraceRecord, dns: &[u8], udp_len: u16) {
    frame.extend_from_slice(&rec.src_port.to_be_bytes());
    frame.extend_from_slice(&rec.dst_port.to_be_bytes());
    frame.extend_from_slice(&udp_len.to_be_bytes());
    frame.extend_from_slice(&[0, 0]); // checksum omitted (valid per RFC 768)
    frame.extend_from_slice(dns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::{Name, RData, Record, RrType};

    /// Builds a TCP record whose DNS message legally encodes to >64 KiB
    /// but at most 65,535 bytes: one maximal TXT answer (255 strings of
    /// 255 bytes) bulk-fills it, then empty TXT records (≤21 bytes each)
    /// nudge the encoding above `floor` without overshooting the message
    /// cap. The result fits the DNS length fields but overflows the
    /// pcap IPv4 total-length field once 28 header bytes are added.
    fn big_tcp_record(floor: usize) -> TraceRecord {
        let name = Name::parse("big.example.com").unwrap();
        let mut rec = TraceRecord::udp_query(
            0,
            "10.0.0.1".parse().unwrap(),
            40_000,
            name.clone(),
            RrType::Txt,
        );
        rec.protocol = Protocol::Tcp;
        rec.message.answers.push(Record::new(
            name.clone(),
            60,
            RData::Txt(vec![vec![b'x'; 255]; 255]),
        ));
        while rec.message.to_bytes().expect("must stay <= 65535").len() <= floor {
            rec.message
                .answers
                .push(Record::new(name.clone(), 60, RData::Txt(vec![])));
        }
        rec
    }

    #[test]
    fn oversize_ipv4_framing_rejected_not_wrapped() {
        // A legal >64 KiB TCP payload that no longer fits once pcap adds
        // IP+UDP headers: the writer must fail typed, not wrap the u16
        // length fields and emit a corrupt capture.
        let rec = big_tcp_record(65_508);
        let wire_len = rec.message.to_bytes().unwrap().len();
        assert!(wire_len > 65_507 && wire_len <= 65_535, "got {wire_len}");
        let mut bytes = Vec::new();
        match write_pcap(&mut bytes, std::slice::from_ref(&rec)) {
            Err(TraceError::Oversize { len, max, .. }) => {
                assert!(len > max, "{len} should exceed {max}");
            }
            other => panic!("expected Oversize, got {other:?}"),
        }
    }

    #[test]
    fn near_max_payload_survives_other_writers() {
        // The same >64 KiB payload still fits the capture/stream u16
        // wire_len field exactly, so those writers must round-trip it.
        let rec = big_tcp_record(65_508);
        let back = crate::capture::from_bytes(
            &crate::capture::to_bytes(std::slice::from_ref(&rec)).unwrap(),
        )
        .unwrap();
        assert_eq!(back[0].message, rec.message);
        let back = crate::stream::from_bytes(
            &crate::stream::to_bytes(std::slice::from_ref(&rec)).unwrap(),
        )
        .unwrap();
        assert_eq!(back[0].message, rec.message);
    }

    #[test]
    fn too_long_message_fails_typed_in_every_writer() {
        // Past 65,535 bytes the message itself is unencodable; every
        // writer must surface the typed wire error rather than truncate.
        let mut rec = big_tcp_record(65_508);
        rec.message.answers.push(Record::new(
            Name::parse("big.example.com").unwrap(),
            60,
            RData::Txt(vec![vec![b'y'; 255]]),
        ));
        assert!(rec.message.to_bytes().is_err());
        let mut bytes = Vec::new();
        assert!(matches!(
            write_pcap(&mut bytes, std::slice::from_ref(&rec)),
            Err(TraceError::Wire(_))
        ));
        assert!(matches!(
            crate::capture::to_bytes(std::slice::from_ref(&rec)),
            Err(TraceError::Wire(_))
        ));
        assert!(matches!(
            crate::stream::to_bytes(std::slice::from_ref(&rec)),
            Err(TraceError::Wire(_))
        ));
    }

    fn sample(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                TraceRecord::udp_query(
                    1_000_000 + i as u64 * 2_500,
                    format!("10.1.0.{}", 1 + i % 200).parse().unwrap(),
                    (1500 + i) as u16,
                    Name::parse(&format!("p{i}.example.com")).unwrap(),
                    RrType::A,
                )
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip_v4() {
        let records = sample(20);
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &records).unwrap();
        let (back, stats) = parse_pcap(&bytes).unwrap();
        assert_eq!(stats.packets, 20);
        assert_eq!(stats.dns_messages, 20);
        assert_eq!(stats.undecodable, 0);
        assert_eq!(back.len(), records.len());
        for (b, r) in back.iter().zip(&records) {
            assert_eq!(b.time_us, r.time_us);
            assert_eq!(b.src, r.src);
            assert_eq!(b.src_port, r.src_port);
            assert_eq!(b.dst, r.dst);
            assert_eq!(b.message, r.message);
            assert_eq!(b.direction, Direction::Query);
        }
    }

    #[test]
    fn write_read_roundtrip_v6() {
        let mut rec = TraceRecord::udp_query(
            42,
            "2001:db8::1".parse().unwrap(),
            5353,
            Name::parse("v6.test").unwrap(),
            RrType::Aaaa,
        );
        rec.dst = "2001:db8::53".parse().unwrap();
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, std::slice::from_ref(&rec)).unwrap();
        let (back, stats) = parse_pcap(&bytes).unwrap();
        assert_eq!(stats.dns_messages, 1);
        assert_eq!(back[0].src, rec.src);
        assert_eq!(back[0].message, rec.message);
    }

    #[test]
    fn little_endian_and_nanosecond_variants() {
        // Re-encode the same capture with LE/ns headers by patching.
        let records = sample(3);
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &records).unwrap();
        // Flip global header + record headers to little-endian.
        let mut le = bytes.clone();
        le[0..4].copy_from_slice(&MAGIC_US_LE.to_be_bytes());
        for field in [4usize, 6] {
            le[field..field + 2].rotate_left(1); // u16 version swap
        }
        for field in [8usize, 12, 16, 20] {
            le[field..field + 4].reverse();
        }
        let mut off = 24;
        while off + 16 <= le.len() {
            for f in 0..4 {
                le[off + f * 4..off + f * 4 + 4].reverse();
            }
            let caplen = u32::from_le_bytes(le[off + 8..off + 12].try_into().unwrap()) as usize;
            off += 16 + caplen;
        }
        let (back, _) = parse_pcap(&le).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn non_dns_traffic_skipped() {
        let records = sample(2);
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &records).unwrap();
        // Append an HTTP-port packet: clone a frame and patch its ports.
        let mut extra = Vec::new();
        write_pcap(&mut extra, &sample(1)).unwrap();
        let mut tail = extra[24..].to_vec();
        // UDP ports live at eth(14)+ip(20) = offset 16+34,35 (+16 rec hdr).
        tail[16 + 34] = 0;
        tail[16 + 35] = 80;
        tail[16 + 36] = 0;
        tail[16 + 37] = 80;
        bytes.extend_from_slice(&tail);
        let (back, stats) = parse_pcap(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(stats.non_dns_packets, 1);
    }

    #[test]
    fn tcp_framed_messages_extracted() {
        // Hand-build a raw-linktype pcap with one TCP segment carrying two
        // framed DNS messages.
        let q1 = Message::query(1, Name::parse("a.test").unwrap(), RrType::A)
            .to_bytes()
            .unwrap();
        let q2 = Message::query(2, Name::parse("b.test").unwrap(), RrType::A)
            .to_bytes()
            .unwrap();
        let mut payload = Vec::new();
        for q in [&q1, &q2] {
            payload.extend_from_slice(&(q.len() as u16).to_be_bytes());
            payload.extend_from_slice(q);
        }
        // TCP header (20 bytes): sport 40000, dport 53, data offset 5.
        let mut tcp = Vec::new();
        tcp.extend_from_slice(&40_000u16.to_be_bytes());
        tcp.extend_from_slice(&53u16.to_be_bytes());
        tcp.extend_from_slice(&[0; 8]); // seq, ack
        tcp.push(5 << 4);
        tcp.extend_from_slice(&[0; 7]);
        tcp.extend_from_slice(&payload);
        // IPv4 header.
        let total = 20 + tcp.len();
        let mut ip = vec![0x45, 0];
        ip.extend_from_slice(&(total as u16).to_be_bytes());
        ip.extend_from_slice(&[0, 0, 0, 0, 64, 6, 0, 0]);
        ip.extend_from_slice(&[10, 0, 0, 1]);
        ip.extend_from_slice(&[10, 0, 0, 2]);
        ip.extend_from_slice(&tcp);
        // pcap with LINKTYPE_RAW.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_US_BE.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&[0; 8]);
        bytes.extend_from_slice(&65_535u32.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts sec
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&(ip.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&(ip.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&ip);

        let (back, stats) = parse_pcap(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(stats.dns_messages, 2);
        assert_eq!(stats.skipped_tcp_segments, 0);
        assert!(back.iter().all(|r| r.protocol == Protocol::Tcp));
        assert_eq!(back[0].message.header.id, 1);
        assert_eq!(back[1].message.header.id, 2);
    }

    #[test]
    fn misaligned_tcp_segment_counted() {
        // A DNS-port TCP segment whose payload is a partial message.
        let mut tcp = Vec::new();
        tcp.extend_from_slice(&53u16.to_be_bytes());
        tcp.extend_from_slice(&40_000u16.to_be_bytes());
        tcp.extend_from_slice(&[0; 8]);
        tcp.push(5 << 4);
        tcp.extend_from_slice(&[0; 7]);
        tcp.extend_from_slice(&[0x10, 0x00, 1, 2, 3]); // claims 4096-byte msg
        let total = 20 + tcp.len();
        let mut ip = vec![0x45, 0];
        ip.extend_from_slice(&(total as u16).to_be_bytes());
        ip.extend_from_slice(&[0, 0, 0, 0, 64, 6, 0, 0]);
        ip.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        ip.extend_from_slice(&tcp);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_US_BE.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&[0; 8]);
        bytes.extend_from_slice(&65_535u32.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        bytes.extend_from_slice(&[0; 8]);
        bytes.extend_from_slice(&(ip.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&(ip.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&ip);
        let (back, stats) = parse_pcap(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(stats.skipped_tcp_segments, 1);
    }

    #[test]
    fn garbage_and_truncation_rejected_cleanly() {
        assert!(parse_pcap(b"not a pcap").is_err());
        let records = sample(2);
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &records).unwrap();
        assert!(parse_pcap(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn responses_classified_by_qr_bit() {
        let mut rec = sample(1).remove(0);
        rec.message.header.response = true;
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, std::slice::from_ref(&rec)).unwrap();
        let (back, _) = parse_pcap(&bytes).unwrap();
        assert_eq!(back[0].direction, Direction::Response);
    }
}
