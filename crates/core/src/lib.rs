//! # LDplayer (reproduction): DNS experimentation at scale
//!
//! A Rust reproduction of *LDplayer: DNS Experimentation at Scale* (Zhu &
//! Heidemann). LDplayer replays captured DNS query streams — faithfully
//! timed, from many emulated sources, over UDP/TCP/TLS — against an
//! emulated DNS hierarchy served by a single authoritative server instance,
//! enabling controlled "what-if" experiments (all-DNSSEC, all-TCP,
//! all-TLS, DoS, key-size changes) that would otherwise need the real
//! Internet.
//!
//! ## Components (one crate each, re-exported here)
//!
//! * [`wire`] — DNS message model and codec,
//! * [`zone`] — zones, master files, lookup semantics, split-horizon views,
//!   synthetic DNSSEC signing,
//! * [`trace`] — trace formats (capture / text / binary stream) and the
//!   query mutator,
//! * [`workload`] — synthetic trace generators calibrated to the paper's
//!   Table 1,
//! * [`netsim`] — deterministic discrete-event network simulation (links,
//!   TCP state machine, TLS emulation),
//! * [`server`] — the authoritative meta-DNS-server, recursive resolver,
//!   and resource models,
//! * [`proxy`] — the OQDA-rewriting proxy pair behind hierarchy emulation,
//! * [`zonegen`] — the zone constructor (traces → zones),
//! * [`replay`] — the distributed query engine (live tokio + simulated),
//! * [`metrics`] — summaries, CDFs, series, reports.
//!
//! ## Quickstart
//!
//! ```
//! use ldplayer::{SimExperiment, workload, trace::mutate};
//!
//! // A small B-Root-like trace, mutated to all-TCP.
//! let mut records = workload::BRootConfig {
//!     duration_s: 2.0,
//!     mean_rate_qps: 200.0,
//!     clients: 100,
//!     ..Default::default()
//! }
//! .generate();
//! mutate::all_tcp(1).apply_all(&mut records);
//!
//! // Replay it against a synthetic root server, 20 ms RTT, 20 s timeout.
//! let result = SimExperiment::root_server(records)
//!     .rtt_ms(20)
//!     .tcp_idle_timeout_s(20)
//!     .run();
//! assert!(result.answer_rate() > 0.99);
//! println!("server memory: {:.1} GB", result.final_memory_gb());
//! ```

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub use ldp_metrics as metrics;
pub use ldp_netsim as netsim;
pub use ldp_proxy as proxy;
pub use ldp_replay as replay;
pub use ldp_server as server;
pub use ldp_trace as trace;
pub use ldp_wire as wire;
pub use ldp_workload as workload;
pub use ldp_zone as zone;
pub use ldp_zonegen as zonegen;

pub mod cli;
mod experiment;
pub use experiment::{SimExperiment, SimRunResult};
