//! High-level experiment builder: trace in, measurements out.
//!
//! Wraps the simulator plumbing every §5-style experiment shares: build a
//! server node from zones, partition the trace across querier nodes with
//! same-source affinity, wire up RTTs, run to completion, and collect the
//! per-query outcomes and per-second server samples.

use std::net::IpAddr;
use std::sync::Arc;

use ldp_netsim::{NodeId, Sim, SimDuration, SimTime, TcpConfig};
use ldp_replay::plan::ReplayPlan;
use ldp_replay::simclient::{SimOutcome, SimQuerier};
use ldp_server::auth::AuthEngine;
use ldp_server::resource::{ResourceModel, ResourceUsage};
use ldp_server::sim::{AuthServerNode, ServerSample};
use ldp_trace::TraceRecord;
use ldp_zone::ZoneSet;

/// Builder for a simulated server-replay experiment.
pub struct SimExperiment {
    engine: Arc<AuthEngine>,
    trace: Vec<TraceRecord>,
    rtt: SimDuration,
    /// Per-querier RTT overrides (querier index → RTT); used by Figure 15's
    /// RTT sweeps when mixing client distances.
    per_querier_rtt: Vec<(usize, SimDuration)>,
    tcp_idle_timeout: Option<SimDuration>,
    server_nagle: Option<SimDuration>,
    server_max_connections: Option<usize>,
    queriers: usize,
    model: ResourceModel,
    grace: SimDuration,
    sample_interval: SimDuration,
}

impl SimExperiment {
    /// Experiment against a synthetic root zone server (the §5 setup).
    pub fn root_server(trace: Vec<TraceRecord>) -> SimExperiment {
        let mut set = ZoneSet::new();
        set.insert(ldp_workload::zones::synthetic_root_zone(200));
        SimExperiment::with_zones(set, trace)
    }

    /// Experiment against an arbitrary zone set (single shared view).
    pub fn with_zones(zones: ZoneSet, trace: Vec<TraceRecord>) -> SimExperiment {
        SimExperiment::with_engine(Arc::new(AuthEngine::with_zones(Arc::new(zones))), trace)
    }

    /// Experiment against a custom engine (e.g. split-horizon views or a
    /// signed root from [`ldp_workload::zones::signed_root_zone`]).
    pub fn with_engine(engine: Arc<AuthEngine>, trace: Vec<TraceRecord>) -> SimExperiment {
        SimExperiment {
            engine,
            trace,
            rtt: SimDuration::from_micros(500), // "<1 ms" LAN of Figure 5
            per_querier_rtt: Vec::new(),
            tcp_idle_timeout: Some(SimDuration::from_secs(20)),
            server_nagle: None,
            server_max_connections: None,
            queriers: 4,
            model: ResourceModel::default(),
            grace: SimDuration::from_secs(2),
            sample_interval: SimDuration::from_secs(1),
        }
    }

    /// Replaces the zone with a signed root (ZSK experiments, §5.1).
    pub fn signed_root(
        trace: Vec<TraceRecord>,
        config: ldp_zone::dnssec::SigningConfig,
    ) -> SimExperiment {
        let mut set = ZoneSet::new();
        set.insert(ldp_workload::zones::signed_root_zone(200, config));
        SimExperiment::with_zones(set, trace)
    }

    /// Client↔server round-trip time in milliseconds (stored as the
    /// one-way link delay).
    pub fn rtt_ms(mut self, rtt_ms: u64) -> Self {
        self.rtt = SimDuration::from_millis(rtt_ms).mul_f64(0.5);
        self
    }

    /// Server-side TCP idle timeout in seconds (`0` disables).
    pub fn tcp_idle_timeout_s(mut self, secs: u64) -> Self {
        self.tcp_idle_timeout = (secs > 0).then(|| SimDuration::from_secs(secs));
        self
    }

    /// Enables Nagle-style write coalescing on the server (§5.2.4's
    /// latency-tail mechanism).
    pub fn server_nagle_ms(mut self, ms: u64) -> Self {
        self.server_nagle = (ms > 0).then(|| SimDuration::from_millis(ms));
        self
    }

    /// Caps the server's concurrent connections (fd/backlog exhaustion;
    /// the DoS-experiment knob). `0` = unlimited.
    pub fn server_max_connections(mut self, cap: usize) -> Self {
        self.server_max_connections = (cap > 0).then_some(cap);
        self
    }

    /// Number of querier nodes (client instances C1…Cn of Figure 12).
    pub fn queriers(mut self, n: usize) -> Self {
        self.queriers = n.max(1);
        self
    }

    /// Overrides the resource model (ablations).
    pub fn resource_model(mut self, model: ResourceModel) -> Self {
        self.model = model;
        self
    }

    /// Extra simulated time after the last trace query (lets responses
    /// drain and timeouts fire).
    pub fn grace_s(mut self, secs: u64) -> Self {
        self.grace = SimDuration::from_secs(secs);
        self
    }

    /// Server sampling interval.
    pub fn sample_interval_s(mut self, secs: u64) -> Self {
        self.sample_interval = SimDuration::from_secs(secs.max(1));
        self
    }

    /// Gives one querier (by index) a different RTT.
    pub fn querier_rtt_ms(mut self, querier: usize, rtt_ms: u64) -> Self {
        self.per_querier_rtt
            .push((querier, SimDuration::from_millis(rtt_ms).mul_f64(0.5)));
        self
    }

    /// Builds the world, runs to completion, and collects results.
    pub fn run(self) -> SimRunResult {
        let server_addr: IpAddr = "192.0.2.53".parse().expect("addr");
        let trace_end_us = self.trace.iter().map(|r| r.time_us).max().unwrap_or(0);

        let mut sim = Sim::new();
        let server_node = AuthServerNode::new(
            server_addr,
            self.engine.clone(),
            TcpConfig {
                idle_timeout: self.tcp_idle_timeout,
                nagle_delay: self.server_nagle,
                max_connections: self.server_max_connections,
                ..TcpConfig::default()
            },
            self.model,
        )
        .with_sample_interval(self.sample_interval);
        let server_id = sim.add_node(Box::new(server_node));
        sim.bind(server_addr, server_id);

        // Partition the trace with the same-source sticky plan: one
        // "distributor" whose children are the querier nodes.
        let mut plan = ReplayPlan::new(1, self.queriers);
        let parts = plan.partition(self.trace, |r| r.src);

        let mut querier_ids: Vec<NodeId> = Vec::new();
        for (i, part) in parts.into_iter().enumerate() {
            let addr: IpAddr = format!("10.200.{}.{}", i / 250, 1 + i % 250)
                .parse()
                .expect("querier addr");
            let id = sim.add_node(Box::new(SimQuerier::new(
                addr,
                server_addr,
                TcpConfig::default(),
                part,
            )));
            sim.bind(addr, id);
            let one_way = self
                .per_querier_rtt
                .iter()
                .rev()
                .find(|(q, _)| *q == i)
                .map(|(_, d)| *d)
                .unwrap_or(self.rtt);
            sim.set_pair_delay(id, server_id, one_way);
            querier_ids.push(id);
        }

        let deadline = SimTime::from_micros(trace_end_us) + self.grace;
        sim.run_until(deadline);

        let mut outcomes = Vec::new();
        // One histogram per querier shard, merged — the same shape the
        // live engine produces, and what proves LogHistogram::merge is
        // lossless against the pooled outcome vector.
        let mut latency_hist = ldp_metrics::LogHistogram::new();
        for id in &querier_ids {
            let q: &SimQuerier = sim.node_as(*id).expect("querier node");
            let mut shard_hist = ldp_metrics::LogHistogram::new();
            for o in &q.outcomes {
                if let Some(us) = o.latency_us() {
                    shard_hist.record(us);
                }
            }
            latency_hist.merge(&shard_hist);
            outcomes.extend(q.outcomes.iter().copied());
        }
        outcomes.sort_by_key(|o| o.trace_time_us);
        let server: &AuthServerNode = sim.node_as(server_id).expect("server node");
        SimRunResult {
            outcomes,
            latency_hist,
            samples: server.samples.clone(),
            usage: server.usage,
            final_tcp: server.tcp.snapshot(),
            response_bytes: server.response_bytes,
            model: server.model,
            end_time: sim.now(),
            dropped_packets: sim.dropped_packets,
        }
    }
}

/// Results of a simulated experiment run.
#[derive(Debug, Clone)]
pub struct SimRunResult {
    /// Per-query outcomes across all queriers, trace-time ordered.
    pub outcomes: Vec<SimOutcome>,
    /// Answered-query latencies (µs), merged from one fixed-memory
    /// histogram per querier shard. Quantiles read from here are exact to
    /// within one log-bucket width of the sorted-sample quantiles.
    pub latency_hist: ldp_metrics::LogHistogram,
    /// Per-interval server samples (memory, connections, CPU, bandwidth).
    pub samples: Vec<ServerSample>,
    pub usage: ResourceUsage,
    pub final_tcp: ldp_netsim::TcpSnapshot,
    pub response_bytes: u64,
    pub model: ResourceModel,
    pub end_time: SimTime,
    pub dropped_packets: u64,
}

impl SimRunResult {
    /// Fraction of queries answered.
    pub fn answer_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.answered_at.is_some())
            .count() as f64
            / self.outcomes.len() as f64
    }

    /// All latencies in milliseconds.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.latency_ms())
            .collect()
    }

    /// Server memory at the end of the run (GB).
    pub fn final_memory_gb(&self) -> f64 {
        self.model.memory_gb(&self.final_tcp, &self.usage)
    }

    /// Steady-state mean of a sample field from `from_s` onward.
    pub fn steady_state<F: Fn(&ServerSample) -> f64>(&self, from_s: f64, f: F) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.t.as_secs_f64() >= from_s)
            .map(f)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Median response bandwidth (Mb/s) over steady-state samples —
    /// Figure 10's reported statistic.
    pub fn response_bandwidth_summary(&self, from_s: f64) -> Option<ldp_metrics::Summary> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.t.as_secs_f64() >= from_s)
            .map(|s| s.response_mbps)
            .collect();
        ldp_metrics::Summary::compute(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_trace::Protocol;
    use ldp_workload::BRootConfig;

    fn small_trace(protocol: Option<Protocol>) -> Vec<TraceRecord> {
        let mut records = BRootConfig {
            duration_s: 3.0,
            mean_rate_qps: 300.0,
            clients: 200,
            seed: 11,
            ..BRootConfig::default()
        }
        .generate();
        if let Some(p) = protocol {
            for r in &mut records {
                r.protocol = p;
            }
        }
        records
    }

    #[test]
    fn udp_experiment_answers_everything() {
        let result = SimExperiment::root_server(small_trace(Some(Protocol::Udp)))
            .rtt_ms(10)
            .run();
        assert!(
            result.answer_rate() > 0.999,
            "rate {}",
            result.answer_rate()
        );
        assert!(result.final_memory_gb() < 2.1, "UDP stays at baseline");
        assert!(!result.samples.is_empty());
        assert_eq!(result.dropped_packets, 0);
    }

    #[test]
    fn tcp_experiment_builds_connections_and_memory() {
        let result = SimExperiment::root_server(small_trace(Some(Protocol::Tcp)))
            .rtt_ms(10)
            .tcp_idle_timeout_s(20)
            .run();
        assert!(result.answer_rate() > 0.99, "rate {}", result.answer_rate());
        assert!(result.usage.tcp_handshakes > 0);
        assert!(
            result.final_memory_gb() > 2.0,
            "connections must cost memory: {}",
            result.final_memory_gb()
        );
    }

    #[test]
    fn tls_memory_exceeds_tcp() {
        let tcp = SimExperiment::root_server(small_trace(Some(Protocol::Tcp)))
            .rtt_ms(10)
            .run();
        let tls = SimExperiment::root_server(small_trace(Some(Protocol::Tls)))
            .rtt_ms(10)
            .run();
        assert!(tls.answer_rate() > 0.99, "tls rate {}", tls.answer_rate());
        assert!(
            tls.final_memory_gb() > tcp.final_memory_gb(),
            "TLS {} !> TCP {}",
            tls.final_memory_gb(),
            tcp.final_memory_gb()
        );
        assert!(tls.usage.tls_handshakes > 0);
    }

    #[test]
    fn mixed_trace_runs() {
        let result = SimExperiment::root_server(small_trace(None))
            .rtt_ms(20)
            .run();
        assert!(result.answer_rate() > 0.99, "rate {}", result.answer_rate());
    }

    #[test]
    fn per_querier_rtt_override() {
        let result = SimExperiment::root_server(small_trace(Some(Protocol::Udp)))
            .queriers(2)
            .rtt_ms(10)
            .querier_rtt_ms(1, 100)
            .run();
        let lats = result.latencies_ms();
        let fast = lats.iter().filter(|&&l| l < 50.0).count();
        let slow = lats.iter().filter(|&&l| l >= 50.0).count();
        assert!(fast > 0 && slow > 0, "both RTT classes observed");
    }
}
