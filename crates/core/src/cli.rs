//! The `ldplayer` command-line tool.
//!
//! Wraps the library's pipeline in the shape an operator uses it
//! (mirroring the paper's workflow, Figure 1):
//!
//! ```text
//! ldplayer generate broot --duration 30 --rate 2000 -o trace.ldpc
//! ldplayer stats trace.ldpc
//! ldplayer convert trace.ldpc -o trace.txt        # edit with any tool
//! ldplayer mutate trace.ldpc --all-tcp --do 1.0 -o what-if.ldps
//! ldplayer zonegen capture.ldpc -o zones/
//! ldplayer serve  --zones zones/ --listen 127.0.0.1:5300
//! ldplayer replay what-if.ldps --server 127.0.0.1:5300 --fast
//! ```
//!
//! Trace formats are chosen by extension: `.ldpc` = binary capture,
//! `.ldps` = internal binary stream, `.txt` = editable plain text (§2.5).
//!
//! Argument parsing is hand-rolled: the surface is a dozen flags, and the
//! workspace keeps its dependency set to the vetted list (DESIGN.md).

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ldp_server::auth::AuthEngine;
use ldp_trace::{capture, stream, text, Mutation, Protocol, QueryMutator, TraceRecord, TraceStats};
use ldp_workload::{BRootConfig, RecConfig, SyntheticConfig};
use ldp_zone::ZoneSet;

/// Entry point: interprets `args` (without the program name), returns the
/// process exit code. All output goes to `out` so tests can capture it.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        write!(out, "{USAGE}").map_err(io_err)?;
        return Ok(2);
    };
    let rest: Vec<String> = it.cloned().collect();
    match cmd.as_str() {
        "generate" => cmd_generate(&rest, out),
        "convert" => cmd_convert(&rest, out),
        "mutate" => cmd_mutate(&rest, out),
        "stats" => cmd_stats(&rest, out),
        "zonegen" => cmd_zonegen(&rest, out),
        "serve" => cmd_serve(&rest, out),
        "replay" => cmd_replay(&rest, out),
        "top" => cmd_top(&rest, out),
        "help" | "--help" | "-h" => {
            write!(out, "{USAGE}").map_err(io_err)?;
            Ok(0)
        }
        other => Err(format!("unknown command {other:?}; see `ldplayer help`")),
    }
}

const USAGE: &str = "\
ldplayer — trace-driven DNS experimentation (LDplayer reproduction)

USAGE:
  ldplayer generate <broot|rec|syn> [--duration S] [--rate QPS] [--clients N]
                    [--level 0..4] [--seed N] -o FILE
  ldplayer convert  IN -o OUT                # formats by extension (.ldpc/.ldps/.txt)
  ldplayer mutate   IN [--all-tcp|--all-tls|--all-quic|--all-udp] [--do FRACTION]
                    [--prefix LABEL] [--speed FACTOR] [--seed N] -o OUT
  ldplayer stats    FILE...                  # Table 1-style rows
  ldplayer zonegen  CAPTURE -o DIR           # rebuild zone master files (§2.3)
  ldplayer serve    --zones DIR [--listen ADDR] [--metrics-addr ADDR]
                                               # live authoritative server
  ldplayer replay   FILE --server ADDR [--fast] [--speed FACTOR]
                    [--queriers N] [--stream] [--manifest PATH]
                    [--metrics-addr ADDR]
                                               # timing-faithful replay (§2.6);
                                               # --stream reads .ldps incrementally;
                                               # --manifest writes a run-manifest JSON
                                               #   (per-stage latency breakdown);
                                               # --metrics-addr serves Prometheus
                                               #   text metrics while running
  ldplayer top      --metrics-addr ADDR [--interval S] [--iterations N] [--raw]
                                               # live terminal view of a running
                                               # replay/serve metrics endpoint

Trace formats by extension: .ldpc binary capture | .ldps binary stream |
.txt plain text | .pcap libpcap (tcpdump/wireshark)
";

fn io_err(e: std::io::Error) -> String {
    format!("I/O error: {e}")
}

/// Tiny flag parser: `--key value` pairs plus positional arguments.
struct Flags {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Flags, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    flags.push((name.to_string(), None));
                } else if value_flags.contains(&name) {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.push((name.to_string(), Some(v.clone())));
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else if a == "-o" {
                let v = it.next().ok_or("-o needs a value")?;
                flags.push(("o".to_string(), Some(v.clone())));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    fn output(&self) -> Result<PathBuf, String> {
        self.get("o")
            .map(PathBuf::from)
            .ok_or_else(|| "missing -o OUTPUT".to_string())
    }
}

/// Trace formats selected by file extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Capture,
    Stream,
    Text,
    Pcap,
}

fn format_of(path: &Path) -> Result<Format, String> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("ldpc") => Ok(Format::Capture),
        Some("ldps") => Ok(Format::Stream),
        Some("txt") => Ok(Format::Text),
        Some("pcap") => Ok(Format::Pcap),
        other => Err(format!(
            "cannot infer trace format from extension {other:?} (use .ldpc/.ldps/.txt/.pcap)"
        )),
    }
}

fn read_trace(path: &Path) -> Result<Vec<TraceRecord>, String> {
    let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let reader = BufReader::new(file);
    let records = match format_of(path)? {
        Format::Capture => capture::CaptureReader::new(reader)
            .and_then(|r| r.collect())
            .map_err(|e| e.to_string())?,
        Format::Stream => stream::StreamReader::new(reader)
            .and_then(|r| r.collect())
            .map_err(|e| e.to_string())?,
        Format::Text => text::read_text(reader).map_err(|e| e.to_string())?,
        Format::Pcap => {
            let (records, stats) = ldp_trace::pcap::read_pcap(reader).map_err(|e| e.to_string())?;
            if stats.skipped_tcp_segments > 0 || stats.undecodable > 0 {
                eprintln!(
                    "note: pcap parse skipped {} mid-stream TCP segments, {} undecodable payloads",
                    stats.skipped_tcp_segments, stats.undecodable
                );
            }
            records
        }
    };
    Ok(records)
}

fn write_trace(path: &Path, records: &[TraceRecord]) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let mut writer = BufWriter::new(file);
    match format_of(path)? {
        Format::Capture => {
            let mut w = capture::CaptureWriter::new(&mut writer).map_err(|e| e.to_string())?;
            for r in records {
                w.write(r).map_err(|e| e.to_string())?;
            }
            w.finish().map_err(|e| e.to_string())?;
        }
        Format::Stream => {
            let mut w = stream::StreamWriter::new(&mut writer).map_err(|e| e.to_string())?;
            for r in records {
                w.write(r).map_err(|e| e.to_string())?;
            }
            w.finish().map_err(|e| e.to_string())?;
        }
        Format::Text => text::write_text(&mut writer, records).map_err(|e| e.to_string())?,
        Format::Pcap => {
            ldp_trace::pcap::write_pcap(&mut writer, records).map_err(|e| e.to_string())?
        }
    }
    writer.flush().map_err(io_err)
}

fn cmd_generate(args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let f = Flags::parse(
        args,
        &["duration", "rate", "clients", "level", "seed", "do", "tcp"],
        &[],
    )?;
    let kind = f
        .positional
        .first()
        .ok_or("generate needs a kind: broot | rec | syn")?;
    let output = f.output()?;
    let records = match kind.as_str() {
        "broot" => BRootConfig {
            duration_s: f.get_parse("duration", 30.0)?,
            mean_rate_qps: f.get_parse("rate", 1000.0)?,
            clients: f.get_parse("clients", 10_000)?,
            do_fraction: f.get_parse("do", 0.723)?,
            tcp_fraction: f.get_parse("tcp", 0.03)?,
            seed: f.get_parse("seed", 1)?,
            ..BRootConfig::default()
        }
        .generate(),
        "rec" => RecConfig {
            duration_s: f.get_parse("duration", 600.0)?,
            mean_rate_qps: f.get_parse("rate", 5.5)?,
            clients: f.get_parse("clients", 91)?,
            seed: f.get_parse("seed", 1)?,
            ..RecConfig::default()
        }
        .generate(),
        "syn" => {
            let level: u32 = f.get_parse("level", 2)?;
            if level > 4 {
                return Err("--level must be 0..=4".into());
            }
            let mut cfg = SyntheticConfig::syn(level);
            cfg.duration_s = f.get_parse("duration", 60)?;
            cfg.generate()
        }
        other => return Err(format!("unknown generator {other:?}")),
    };
    write_trace(&output, &records)?;
    writeln!(
        out,
        "wrote {} records to {}",
        records.len(),
        output.display()
    )
    .map_err(io_err)?;
    Ok(0)
}

fn cmd_convert(args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let f = Flags::parse(args, &[], &[])?;
    let input = f.positional.first().ok_or("convert needs an input file")?;
    let output = f.output()?;
    let records = read_trace(Path::new(input))?;
    write_trace(&output, &records)?;
    writeln!(
        out,
        "converted {} records: {} -> {}",
        records.len(),
        input,
        output.display()
    )
    .map_err(io_err)?;
    Ok(0)
}

fn cmd_mutate(args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let f = Flags::parse(
        args,
        &["do", "prefix", "speed", "seed", "payload"],
        &["all-tcp", "all-tls", "all-udp", "all-quic"],
    )?;
    let input = f.positional.first().ok_or("mutate needs an input file")?;
    let output = f.output()?;
    let mut records = read_trace(Path::new(input))?;

    let mut mutator = QueryMutator::new(f.get_parse("seed", 1)?);
    if f.has("all-tcp") {
        mutator = mutator.push(Mutation::SetProtocol(Protocol::Tcp));
    }
    if f.has("all-tls") {
        mutator = mutator.push(Mutation::SetProtocol(Protocol::Tls));
    }
    if f.has("all-quic") {
        mutator = mutator.push(Mutation::SetProtocol(Protocol::Quic));
    }
    if f.has("all-udp") {
        mutator = mutator.push(Mutation::SetProtocol(Protocol::Udp));
    }
    if let Some(frac) = f.get("do") {
        let frac: f64 = frac.parse().map_err(|_| "--do: bad fraction")?;
        mutator = mutator
            .push(Mutation::ClearDoBit)
            .push(Mutation::SetDoBit { fraction: frac });
    }
    if let Some(prefix) = f.get("prefix") {
        mutator = mutator.push(Mutation::PrefixQname(prefix.to_string()));
    }
    if let Some(speed) = f.get("speed") {
        let sp: f64 = speed.parse().map_err(|_| "--speed: bad factor")?;
        mutator = mutator.push(Mutation::ScaleTime(1.0 / sp.max(1e-9)));
    }
    if let Some(p) = f.get("payload") {
        let size: u16 = p.parse().map_err(|_| "--payload: bad size")?;
        mutator = mutator.push(Mutation::SetEdnsPayload(size));
    }
    mutator.apply_all(&mut records);
    write_trace(&output, &records)?;
    writeln!(
        out,
        "mutated {} records -> {}",
        records.len(),
        output.display()
    )
    .map_err(io_err)?;
    Ok(0)
}

fn cmd_stats(args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let f = Flags::parse(args, &[], &[])?;
    if f.positional.is_empty() {
        return Err("stats needs at least one trace file".into());
    }
    writeln!(
        out,
        "{:<24} {:>10} {:>14} {:>14} {:>10} {:>10} {:>12}",
        "trace", "duration_s", "ia_mean_s", "ia_stddev_s", "clients", "records", "rate_qps"
    )
    .map_err(io_err)?;
    for path in &f.positional {
        let records = read_trace(Path::new(path))?;
        let s = TraceStats::compute(&records);
        writeln!(
            out,
            "{:<24} {:>10.2} {:>14.6} {:>14.6} {:>10} {:>10} {:>12.1}",
            path,
            s.duration_s,
            s.interarrival_mean_s,
            s.interarrival_stddev_s,
            s.client_ips,
            s.records,
            s.mean_rate_qps
        )
        .map_err(io_err)?;
    }
    Ok(0)
}

fn cmd_zonegen(args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let f = Flags::parse(args, &[], &[])?;
    let input = f
        .positional
        .first()
        .ok_or("zonegen needs a capture file with responses")?;
    let dir = f.output()?;
    let records = read_trace(Path::new(input))?;
    let built = ldp_zonegen::build_from_trace(&records);
    std::fs::create_dir_all(&dir).map_err(io_err)?;
    for (file, content) in built.to_master_files() {
        std::fs::write(dir.join(&file), content).map_err(io_err)?;
        writeln!(out, "wrote {}", dir.join(&file).display()).map_err(io_err)?;
    }
    // The view bindings file: `address origin` per line, the input for
    // split-horizon serving.
    let mut bindings = String::new();
    for (addr, origin) in &built.bindings {
        bindings.push_str(&format!("{addr} {origin}\n"));
    }
    std::fs::write(dir.join("bindings.txt"), bindings).map_err(io_err)?;
    writeln!(
        out,
        "{} zones, {} bindings ({} responses scanned, {} conflicts skipped)",
        built.stats.zones_built,
        built.bindings.len(),
        built.stats.responses_scanned,
        built.stats.conflicts_skipped
    )
    .map_err(io_err)?;
    Ok(0)
}

/// Loads every `*.zone` master file in a directory into a zone set.
/// Origins come from each file's `$ORIGIN` (filename is a fallback hint).
pub fn load_zone_dir(dir: &Path) -> Result<ZoneSet, String> {
    let mut set = ZoneSet::new();
    let entries = std::fs::read_dir(dir).map_err(io_err)?;
    for entry in entries {
        let entry = entry.map_err(io_err)?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("zone") {
            continue;
        }
        let content = std::fs::read_to_string(&path).map_err(io_err)?;
        // Filename-derived origin as the parse seed; `$ORIGIN` overrides.
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default();
        let origin = if stem == "root" {
            ldp_wire::Name::root()
        } else {
            ldp_wire::Name::parse(&stem.replace('_', "."))
                .map_err(|e| format!("{}: {e}", path.display()))?
        };
        let zone = ldp_zone::master::parse_zone(&origin, &content)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        set.insert(zone);
    }
    if set.is_empty() {
        return Err(format!("no .zone files found in {}", dir.display()));
    }
    Ok(set)
}

fn cmd_serve(args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let f = Flags::parse(args, &["zones", "listen", "metrics-addr"], &[])?;
    let dir = PathBuf::from(f.get("zones").ok_or("serve needs --zones DIR")?);
    let listen: std::net::SocketAddr = f
        .get("listen")
        .unwrap_or("127.0.0.1:5300")
        .parse()
        .map_err(|_| "--listen: bad address")?;
    let metrics_addr = f.get("metrics-addr").map(str::to_string);
    let zones = load_zone_dir(&dir)?;
    writeln!(
        out,
        "serving {} zones on {listen} (udp+tcp); ctrl-c to stop",
        zones.len()
    )
    .map_err(io_err)?;
    let engine = Arc::new(AuthEngine::with_zones(Arc::new(zones)));
    let rt = tokio::runtime::Runtime::new().map_err(io_err)?;
    rt.block_on(async move {
        let server = ldp_server::live::LiveServer::spawn(engine, listen)
            .await
            .map_err(|e| format!("bind {listen}: {e}"))?;
        // The metrics endpoint lives on its own thread; the registry only
        // holds observed closures over the server's atomics, so serving a
        // scrape never touches the query path.
        let _metrics = match &metrics_addr {
            Some(addr) => {
                let registry = Arc::new(ldp_telemetry::Registry::new());
                server.register_telemetry(&registry);
                let srv = ldp_telemetry::MetricsServer::start(addr, registry)
                    .map_err(|e| format!("metrics bind {addr}: {e}"))?;
                writeln!(out, "metrics on http://{}/metrics", srv.addr()).map_err(io_err)?;
                Some(srv)
            }
            None => None,
        };
        tokio::signal::ctrl_c().await.map_err(|e| e.to_string())?;
        Ok::<(), String>(())
    })?;
    Ok(0)
}

fn cmd_replay(args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let f = Flags::parse(
        args,
        &["server", "speed", "queriers", "manifest", "metrics-addr"],
        &["fast", "stream"],
    )?;
    let input = f.positional.first().ok_or("replay needs a trace file")?;
    let server: std::net::SocketAddr = f
        .get("server")
        .ok_or("replay needs --server ADDR")?
        .parse()
        .map_err(|_| "--server: bad address")?;
    let manifest_path = f.get("manifest").map(PathBuf::from);
    let mut replay = ldp_replay::LiveReplay::new(server);
    replay.queriers_per_distributor = f.get_parse("queriers", 6usize)?;
    replay.mode = if f.has("fast") {
        ldp_replay::ReplayMode::Fast
    } else {
        ldp_replay::ReplayMode::Timed {
            speed: 1.0 / f.get_parse("speed", 1.0f64)?.max(1e-9),
        }
    };
    // `--manifest` needs the per-stage breakdown, so it forces full span
    // recording; otherwise spans follow the `LDP_OBS_SAMPLE` opt-in.
    let shards = replay.distributors * replay.queriers_per_distributor;
    let spans = if manifest_path.is_some() {
        Some(Arc::new(ldp_obs::ReplaySpans::full(shards)))
    } else {
        ldp_obs::ReplaySpans::from_env(shards)
    };
    replay.obs = spans.clone();
    // `--metrics-addr` turns on the live telemetry plane: shard counters
    // into a shared registry, a 1 s sampler building the time-series the
    // manifest will carry, and the Prometheus endpoint `ldplayer top`
    // scrapes. All off the hot path: handles are resolved at shard start,
    // sampling and serving run on their own threads.
    let telemetry = match f.get("metrics-addr") {
        Some(addr) => {
            let registry = Arc::new(ldp_telemetry::Registry::new());
            replay.telemetry = Some(registry.clone());
            let server = ldp_telemetry::MetricsServer::start(addr, registry.clone())
                .map_err(|e| format!("metrics bind {addr}: {e}"))?;
            writeln!(out, "metrics on http://{}/metrics", server.addr()).map_err(io_err)?;
            let sampler = ldp_telemetry::Sampler::new(registry, 4_096);
            let driver =
                ldp_telemetry::SamplerDriver::spawn(sampler, std::time::Duration::from_secs(1));
            Some((server, driver))
        }
        None => None,
    };
    let rt = tokio::runtime::Runtime::new().map_err(io_err)?;
    let report = if f.has("stream") {
        // Incremental read: only .ldps supports streaming decode.
        let path = Path::new(input);
        if format_of(path)? != Format::Stream {
            return Err("--stream requires a .ldps input".into());
        }
        let file = File::open(path).map_err(|e| format!("open {input}: {e}"))?;
        let reader = stream::StreamReader::new(BufReader::new(file)).map_err(|e| e.to_string())?;
        rt.block_on(replay.run_stream(reader))
            .map_err(|e| format!("replay: {e}"))?
    } else {
        let records = read_trace(Path::new(input))?;
        rt.block_on(replay.run(records))
            .map_err(|e| format!("replay: {e}"))?
    };
    // Stop the telemetry plane; one final sample so runs shorter than the
    // cadence still land points in the manifest's timeseries section.
    let sampler = telemetry.map(|(server, driver)| {
        drop(server);
        let mut sampler = driver.stop();
        sampler.sample();
        sampler
    });
    writeln!(
        out,
        "sent {} queries, {} answered ({:.1}%), {:.0} q/s",
        report.sent,
        report.answered,
        report.answered as f64 / report.sent.max(1) as f64 * 100.0,
        report.achieved_qps()
    )
    .map_err(io_err)?;
    if let Some(s) = ldp_metrics::Summary::compute(&report.latencies_ms()) {
        writeln!(
            out,
            "latency ms: median {:.2}  q3 {:.2}  p95 {:.2}",
            s.median, s.q3, s.p95
        )
        .map_err(io_err)?;
    }
    if let Some(s) = ldp_metrics::Summary::compute(&report.timing_errors_ms()) {
        writeln!(
            out,
            "timing error ms: median {:+.3}  q3 {:+.3}  max {:+.3}",
            s.median, s.q3, s.max
        )
        .map_err(io_err)?;
    }
    if let Some(path) = manifest_path {
        let spans = spans.expect("--manifest forces span recording");
        let breakdown = ldp_obs::StageBreakdown::from_events(&spans.events());
        let mut manifest = ldp_obs::RunManifest::new("cli_replay")
            .retry_policy(serde_json::json!(replay.retry))
            .stage_breakdown(&breakdown)
            .stage("end_to_end", &report.latency_hist())
            .faults(serde_json::json!({
                "timeouts": report.timeouts,
                "retries": report.retries,
                "reconnects": report.reconnects,
                "gave_up": report.gave_up,
                "errors": report.errors,
            }))
            .extra("report", serde_json::json!(report));
        if let Some(s) = &sampler {
            manifest = manifest.timeseries(s.to_manifest_value());
        }
        let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("replay");
        let written = manifest
            .write(&dir, stem)
            .map_err(|e| format!("write manifest: {e}"))?;
        writeln!(out, "manifest: {}", written.display()).map_err(io_err)?;
    }
    Ok(0)
}

fn cmd_top(args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let f = Flags::parse(args, &["metrics-addr", "interval", "iterations"], &["raw"])?;
    let addr = f
        .get("metrics-addr")
        .ok_or("top needs --metrics-addr ADDR (the replay/serve endpoint)")?
        .to_string();
    let interval_s: f64 = f.get_parse("interval", 2.0)?;
    if !interval_s.is_finite() || interval_s <= 0.0 {
        return Err("--interval must be positive".into());
    }
    let iterations = match f.get("iterations") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--iterations: cannot parse {v:?}"))?,
        ),
    };
    let opts = ldp_telemetry::TopOptions {
        addr,
        interval: std::time::Duration::from_secs_f64(interval_s),
        iterations,
        raw: f.has("raw"),
    };
    ldp_telemetry::run_top(&opts, out).map_err(|e| format!("top: {e}"))?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ldpcli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let code = run(&args, &mut out).expect("command succeeds");
        assert_eq!(code, 0, "exit code for {args:?}");
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn help_prints_usage() {
        let text = run_ok(&["help"]);
        assert!(text.contains("USAGE"));
        assert!(text.contains("zonegen"));
    }

    #[test]
    fn unknown_command_errors() {
        let mut out = Vec::new();
        assert!(run(&["frobnicate".to_string()], &mut out).is_err());
    }

    #[test]
    fn generate_stats_convert_mutate_pipeline() {
        let dir = tmpdir("pipeline");
        let cap = dir.join("t.ldpc");
        let txt = dir.join("t.txt");
        let ldps = dir.join("t.ldps");

        let msg = run_ok(&[
            "generate",
            "broot",
            "--duration",
            "2",
            "--rate",
            "200",
            "--clients",
            "50",
            "--seed",
            "7",
            "-o",
            cap.to_str().unwrap(),
        ]);
        assert!(msg.contains("wrote"));

        let stats = run_ok(&["stats", cap.to_str().unwrap()]);
        assert!(stats.contains("rate_qps"));

        run_ok(&[
            "convert",
            cap.to_str().unwrap(),
            "-o",
            txt.to_str().unwrap(),
        ]);
        let text_content = std::fs::read_to_string(&txt).unwrap();
        assert!(text_content.contains(" udp "));

        run_ok(&[
            "mutate",
            cap.to_str().unwrap(),
            "--all-tcp",
            "--do",
            "1.0",
            "--prefix",
            "t1",
            "-o",
            ldps.to_str().unwrap(),
        ]);
        let mutated = read_trace(&ldps).unwrap();
        assert!(mutated.iter().all(|r| r.protocol == Protocol::Tcp));
        assert!(mutated.iter().all(|r| r.dnssec_ok()));
        assert!(mutated[0].qname().unwrap().to_string().starts_with("t1."));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn syn_generator_levels() {
        let dir = tmpdir("syn");
        let out_file = dir.join("syn.ldps");
        run_ok(&[
            "generate",
            "syn",
            "--level",
            "1",
            "--duration",
            "3",
            "-o",
            out_file.to_str().unwrap(),
        ]);
        let records = read_trace(&out_file).unwrap();
        assert_eq!(records.len(), 30, "3s at 0.1s gaps");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zonegen_writes_master_files_and_bindings() {
        // Build a capture with harvested responses via the library, then
        // run the CLI zonegen over it.
        use ldp_wire::{Name, RData, Record as WireRecord, RrType};
        let dir = tmpdir("zonegen");
        let cap = dir.join("harvest.ldpc");
        let mut rec = TraceRecord::udp_query(
            0,
            "198.41.0.4".parse().unwrap(),
            53,
            Name::parse("www.example.com").unwrap(),
            RrType::A,
        );
        rec.direction = ldp_trace::Direction::Response;
        rec.message.header.response = true;
        rec.message.answers.push(WireRecord::new(
            Name::root(),
            518400,
            RData::Ns(Name::parse("a.root-servers.net").unwrap()),
        ));
        rec.message.additionals.push(WireRecord::new(
            Name::parse("a.root-servers.net").unwrap(),
            518400,
            RData::A("198.41.0.4".parse().unwrap()),
        ));
        write_trace(&cap, std::slice::from_ref(&rec)).unwrap();

        let zones_dir = dir.join("zones");
        let msg = run_ok(&[
            "zonegen",
            cap.to_str().unwrap(),
            "-o",
            zones_dir.to_str().unwrap(),
        ]);
        assert!(msg.contains("zones"));
        assert!(zones_dir.join("root.zone").exists());
        assert!(zones_dir.join("bindings.txt").exists());

        // And the zone dir loads back for serving.
        let set = load_zone_dir(&zones_dir).unwrap();
        assert_eq!(set.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_against_live_server() {
        // Full CLI loop: generate a trace, then replay it (library-spawned
        // server, CLI replay command with its own runtime).
        let dir = tmpdir("replay");
        let trace_file = dir.join("r.ldps");
        run_ok(&[
            "generate",
            "syn",
            "--level",
            "2",
            "--duration",
            "2",
            "-o",
            trace_file.to_str().unwrap(),
        ]);

        // Spawn the server on a dedicated runtime thread.
        let rt = tokio::runtime::Runtime::new().unwrap();
        let engine = {
            let mut set = ZoneSet::new();
            set.insert(ldp_workload::zones::wildcard_example_zone());
            Arc::new(AuthEngine::with_zones(Arc::new(set)))
        };
        let server = rt
            .block_on(ldp_server::live::LiveServer::spawn(
                engine,
                "127.0.0.1:0".parse().unwrap(),
            ))
            .unwrap();
        let addr = server.addr.to_string();
        // Keep the runtime alive on a background thread while the CLI
        // replay (which builds its own runtime) runs.
        let _keepalive = std::thread::spawn(move || {
            let _server = server;
            rt.block_on(async { tokio::time::sleep(std::time::Duration::from_secs(30)).await });
        });

        let manifest_arg = dir.join("run.json");
        let msg = run_ok(&[
            "replay",
            trace_file.to_str().unwrap(),
            "--server",
            &addr,
            "--fast",
            "--manifest",
            manifest_arg.to_str().unwrap(),
            "--metrics-addr",
            "127.0.0.1:0",
        ]);
        assert!(msg.contains("sent 200 queries"), "{msg}");
        assert!(msg.contains("latency"), "{msg}");
        assert!(msg.contains("metrics on http://127.0.0.1:"), "{msg}");

        // --manifest wrote the run manifest next to the requested path.
        let manifest_file = dir.join("run.manifest.json");
        assert!(msg.contains("manifest:"), "{msg}");
        let body = std::fs::read_to_string(&manifest_file).unwrap();
        assert!(
            body.contains("\"schema\": \"ldp.run-manifest/v2\""),
            "{body}"
        );
        for stage in ["queue_wait", "batch_wait", "send_lag", "end_to_end"] {
            assert!(body.contains(&format!("\"{stage}\"")), "missing {stage}");
        }
        assert!(body.contains("\"retry\""), "{body}");
        // --metrics-addr attached the sampled time-series (manifest v2).
        assert!(body.contains("\"timeseries\""), "{body}");
        assert!(body.contains("\"unit\": \"ticks\""), "{body}");
        assert!(body.contains("ldp_replay_sent_total"), "{body}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn top_scrapes_a_metrics_endpoint() {
        // A registry with replay-shaped metrics behind a real endpoint;
        // `top` runs one frame in each mode and exits.
        let registry = Arc::new(ldp_telemetry::Registry::new());
        registry
            .counter_with("ldp_replay_sent_total", "sent", &[("shard", "0")])
            .add(120);
        registry
            .gauge_with("ldp_replay_queue_depth", "depth", &[("shard", "0")])
            .set(3);
        let server = ldp_telemetry::MetricsServer::start("127.0.0.1:0", registry).unwrap();
        let addr = server.addr().to_string();

        let raw = run_ok(&["top", "--metrics-addr", &addr, "--iterations", "1", "--raw"]);
        assert!(
            raw.contains("ldp_replay_sent_total{shard=\"0\"} 120"),
            "{raw}"
        );

        let table = run_ok(&["top", "--metrics-addr", &addr, "--iterations", "1"]);
        assert!(table.contains("shard"), "{table}");
        assert!(table.contains("total sent 120"), "{table}");

        let mut out = Vec::new();
        let err = run(
            &["top".into(), "--metrics-addr".into(), "127.0.0.1:1".into()],
            &mut out,
        )
        .unwrap_err();
        assert!(err.contains("top:"), "{err}");
    }

    #[test]
    fn missing_flags_are_reported() {
        let mut out = Vec::new();
        assert!(run(&["generate".into(), "broot".into()], &mut out)
            .unwrap_err()
            .contains("-o"));
        assert!(run(&["replay".into(), "x.ldps".into()], &mut out)
            .unwrap_err()
            .contains("--server"));
        assert!(run(
            &[
                "generate".into(),
                "broot".into(),
                "--bogus".into(),
                "1".into()
            ],
            &mut out
        )
        .unwrap_err()
        .contains("--bogus"));
    }

    #[test]
    fn format_inference() {
        assert_eq!(format_of(Path::new("a.ldpc")).unwrap(), Format::Capture);
        assert_eq!(format_of(Path::new("a.ldps")).unwrap(), Format::Stream);
        assert_eq!(format_of(Path::new("a.txt")).unwrap(), Format::Text);
        assert_eq!(format_of(Path::new("a.pcap")).unwrap(), Format::Pcap);
        assert!(format_of(Path::new("a.erf")).is_err());
    }

    #[test]
    fn pcap_conversion_via_cli() {
        let dir = tmpdir("pcap");
        let ldpc = dir.join("t.ldpc");
        let pcap = dir.join("t.pcap");
        let back = dir.join("b.ldps");
        run_ok(&[
            "generate",
            "broot",
            "--duration",
            "1",
            "--rate",
            "100",
            "--clients",
            "20",
            "--tcp",
            "0",
            "-o",
            ldpc.to_str().unwrap(),
        ]);
        run_ok(&[
            "convert",
            ldpc.to_str().unwrap(),
            "-o",
            pcap.to_str().unwrap(),
        ]);
        let msg = run_ok(&[
            "convert",
            pcap.to_str().unwrap(),
            "-o",
            back.to_str().unwrap(),
        ]);
        assert!(msg.contains("converted"));
        let a = read_trace(&ldpc).unwrap();
        let b = read_trace(&back).unwrap();
        assert_eq!(a.len(), b.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
