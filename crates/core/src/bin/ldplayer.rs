//! The `ldplayer` CLI binary — a thin shell over [`ldplayer::cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match ldplayer::cli::run(&args, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("ldplayer: {msg}");
            std::process::exit(1);
        }
    }
}
