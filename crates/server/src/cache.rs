//! Resolver cache: TTL-respecting positive and negative caching.
//!
//! The cache is what makes recursive replay interesting — the paper's
//! motivation for *trace* replay (vs. synthetic load) is that "caching,
//! timeouts, and resource constraints" interact. Time is supplied by the
//! caller in microseconds so the same cache runs under simulated or real
//! clocks.

use std::collections::HashMap;

use ldp_wire::{Name, Record, RrType};

/// A cached entry: records plus their absolute expiry.
#[derive(Debug, Clone)]
enum Entry {
    Positive {
        records: Vec<Record>,
        expires_us: u64,
    },
    /// NXDOMAIN/NODATA cached per RFC 2308 using the SOA minimum.
    Negative { expires_us: u64 },
}

/// TTL-respecting resolver cache.
#[derive(Debug, Default)]
pub struct Cache {
    entries: HashMap<(Name, RrType), Entry>,
    pub hits: u64,
    pub misses: u64,
}

/// Result of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheOutcome {
    Hit(Vec<Record>),
    NegativeHit,
    Miss,
}

impl Cache {
    pub fn new() -> Cache {
        Cache::default()
    }

    /// Looks up (name, type) at time `now_us`.
    pub fn get(&mut self, name: &Name, rtype: RrType, now_us: u64) -> CacheOutcome {
        match self.entries.get(&(name.clone(), rtype)) {
            Some(Entry::Positive {
                records,
                expires_us,
            }) if *expires_us > now_us => {
                self.hits += 1;
                CacheOutcome::Hit(records.clone())
            }
            Some(Entry::Negative { expires_us }) if *expires_us > now_us => {
                self.hits += 1;
                CacheOutcome::NegativeHit
            }
            _ => {
                self.misses += 1;
                CacheOutcome::Miss
            }
        }
    }

    /// Caches a positive answer; TTL from the minimum record TTL.
    pub fn put(&mut self, name: Name, rtype: RrType, records: Vec<Record>, now_us: u64) {
        if records.is_empty() {
            return;
        }
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        self.entries.insert(
            (name, rtype),
            Entry::Positive {
                records,
                expires_us: now_us + ttl as u64 * 1_000_000,
            },
        );
    }

    /// Caches a negative answer for `ttl` seconds.
    pub fn put_negative(&mut self, name: Name, rtype: RrType, ttl: u32, now_us: u64) {
        self.entries.insert(
            (name, rtype),
            Entry::Negative {
                expires_us: now_us + ttl as u64 * 1_000_000,
            },
        );
    }

    /// Removes expired entries (periodic housekeeping).
    pub fn evict_expired(&mut self, now_us: u64) {
        self.entries.retain(|_, e| match e {
            Entry::Positive { expires_us, .. } | Entry::Negative { expires_us } => {
                *expires_us > now_us
            }
        });
    }

    /// Number of live entries (including not-yet-evicted expired ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops everything (cold-cache experiment resets, §2.3).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::RData;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a_rec(name: &str, ttl: u32) -> Record {
        Record::new(n(name), ttl, RData::A("192.0.2.1".parse().unwrap()))
    }

    const SEC: u64 = 1_000_000;

    #[test]
    fn miss_then_hit_then_expiry() {
        let mut c = Cache::new();
        assert_eq!(c.get(&n("x.test"), RrType::A, 0), CacheOutcome::Miss);
        c.put(n("x.test"), RrType::A, vec![a_rec("x.test", 30)], 0);
        assert!(matches!(
            c.get(&n("x.test"), RrType::A, 29 * SEC),
            CacheOutcome::Hit(_)
        ));
        assert_eq!(c.get(&n("x.test"), RrType::A, 30 * SEC), CacheOutcome::Miss);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn minimum_ttl_governs() {
        let mut c = Cache::new();
        c.put(
            n("x.test"),
            RrType::A,
            vec![a_rec("x.test", 300), a_rec("x.test", 10)],
            0,
        );
        assert!(matches!(
            c.get(&n("x.test"), RrType::A, 9 * SEC),
            CacheOutcome::Hit(_)
        ));
        assert_eq!(c.get(&n("x.test"), RrType::A, 11 * SEC), CacheOutcome::Miss);
    }

    #[test]
    fn negative_caching() {
        let mut c = Cache::new();
        c.put_negative(n("nope.test"), RrType::A, 60, 0);
        assert_eq!(
            c.get(&n("nope.test"), RrType::A, 59 * SEC),
            CacheOutcome::NegativeHit
        );
        assert_eq!(
            c.get(&n("nope.test"), RrType::A, 61 * SEC),
            CacheOutcome::Miss
        );
    }

    #[test]
    fn types_are_separate() {
        let mut c = Cache::new();
        c.put(n("x.test"), RrType::A, vec![a_rec("x.test", 60)], 0);
        assert_eq!(c.get(&n("x.test"), RrType::Aaaa, 0), CacheOutcome::Miss);
    }

    #[test]
    fn empty_records_not_cached() {
        let mut c = Cache::new();
        c.put(n("x.test"), RrType::A, vec![], 0);
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_and_clear() {
        let mut c = Cache::new();
        c.put(n("a.test"), RrType::A, vec![a_rec("a.test", 10)], 0);
        c.put(n("b.test"), RrType::A, vec![a_rec("b.test", 100)], 0);
        c.evict_expired(50 * SEC);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn case_insensitive_keys() {
        let mut c = Cache::new();
        c.put(n("X.Test"), RrType::A, vec![a_rec("x.test", 60)], 0);
        assert!(matches!(
            c.get(&n("x.TEST"), RrType::A, 0),
            CacheOutcome::Hit(_)
        ));
    }
}
