//! UDP response packet cache.
//!
//! The authoritative engine is deterministic over static zones: the
//! response wire is a pure function of (client IP, query wire minus the
//! message id). Production DNS frontends exploit exactly this with a
//! packet cache — dnsdist's `PacketCache` is the canonical example — and
//! the live server here does the same so the §4.3 throughput experiments
//! measure the *replay engine*, not redundant server-side re-encoding of
//! one identical answer.
//!
//! Keys are the raw query bytes with the id zeroed (so retransmits and
//! replayed duplicates with fresh ids still hit): values keep the client
//! IP they were computed for, because [`crate::auth::AuthEngine::respond`]
//! may vary by client view — the same wire from a different IP is a miss
//! and recomputes.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hit/miss/eviction counters, shared out of the cache so the serving
/// loop's owner (and the telemetry registry) can read them while the
/// cache itself stays thread-local to the UDP task. Atomics only for
/// cross-thread visibility — every writer is the single serving loop.
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    /// Entries discarded by the at-capacity wholesale clear.
    pub evictions: AtomicU64,
}

/// Bounded map from query wire (id zeroed) to the response template.
pub struct PacketCache {
    map: HashMap<Vec<u8>, (IpAddr, Vec<u8>)>,
    cap: usize,
    stats: Arc<CacheStats>,
}

impl PacketCache {
    /// `cap` bounds the number of distinct query wires kept; when full the
    /// cache is cleared wholesale (replay workloads are heavily skewed, so
    /// a cold restart refills with the hot set immediately).
    pub fn new(cap: usize) -> PacketCache {
        PacketCache::with_stats(cap, Arc::new(CacheStats::default()))
    }

    /// Like [`PacketCache::new`], but counting into caller-owned stats —
    /// how the live server surfaces cache behavior without owning the
    /// cache across tasks.
    pub fn with_stats(cap: usize, stats: Arc<CacheStats>) -> PacketCache {
        PacketCache {
            map: HashMap::new(),
            cap: cap.max(1),
            stats,
        }
    }

    /// Looks up `wire` (already id-zeroed) for `client`. On a hit, returns
    /// the response bytes with `id` patched in.
    pub fn get(&mut self, client: IpAddr, wire: &[u8], id: u16) -> Option<Vec<u8>> {
        match self.map.get(wire) {
            Some((ip, template)) if *ip == client => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                let mut bytes = template.clone();
                if bytes.len() >= 2 {
                    bytes[0..2].copy_from_slice(&id.to_be_bytes());
                }
                Some(bytes)
            }
            _ => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the response template for `wire` (id zeroed on both sides).
    pub fn put(&mut self, client: IpAddr, wire: &[u8], response: &[u8]) {
        if self.map.len() >= self.cap {
            self.stats
                .evictions
                .fetch_add(self.map.len() as u64, Ordering::Relaxed);
            self.map.clear();
        }
        let mut template = response.to_vec();
        if template.len() >= 2 {
            template[0..2].copy_from_slice(&[0, 0]);
        }
        self.map.insert(wire.to_vec(), (client, template));
    }

    pub fn hits(&self) -> u64 {
        self.stats.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.stats.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.stats.evictions.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn hit_patches_requested_id() {
        let mut c = PacketCache::new(16);
        let query = [0, 0, 1, 2, 3];
        c.put(ip("127.0.0.1"), &query, &[9, 9, 42, 43]);
        let got = c.get(ip("127.0.0.1"), &query, 0xBEEF).unwrap();
        assert_eq!(got, vec![0xBE, 0xEF, 42, 43], "id patched, body intact");
        // A retransmit under another id hits the same entry.
        let again = c.get(ip("127.0.0.1"), &query, 7).unwrap();
        assert_eq!(&again[2..], &[42, 43]);
        assert_eq!((c.hits(), c.misses(), c.evictions()), (2, 0, 0));
    }

    #[test]
    fn different_client_ip_misses() {
        let mut c = PacketCache::new(16);
        let query = [0, 0, 1];
        c.put(ip("127.0.0.1"), &query, &[0, 0, 1]);
        assert!(
            c.get(ip("10.0.0.9"), &query, 1).is_none(),
            "view-dependent answers must not leak across clients"
        );
        assert_eq!((c.hits(), c.misses(), c.evictions()), (0, 1, 0));
    }

    #[test]
    fn capacity_bounds_the_map() {
        let mut c = PacketCache::new(4);
        for i in 0u8..32 {
            c.put(ip("127.0.0.1"), &[0, 0, i], &[0, 0, i]);
            assert!(c.len() <= 4, "cap respected after {i} inserts");
        }
        assert!(!c.is_empty());
        // 32 distinct inserts into a cap-4 map: the wholesale clear ran 8
        // times, discarding 4 entries each — every insert beyond the live
        // map was evicted.
        assert_eq!(c.evictions(), 32 - c.len() as u64);
    }

    #[test]
    fn shared_stats_survive_the_cache() {
        let stats = Arc::new(CacheStats::default());
        let query = [0, 0, 7];
        {
            let mut c = PacketCache::with_stats(16, stats.clone());
            c.put(ip("127.0.0.1"), &query, &[0, 0, 7]);
            c.get(ip("127.0.0.1"), &query, 1).unwrap();
            c.get(ip("127.0.0.2"), &query, 1);
        }
        // The cache is gone; its owner still reads the totals.
        assert_eq!(stats.hits.load(Ordering::Relaxed), 1);
        assert_eq!(stats.misses.load(Ordering::Relaxed), 1);
    }
}
