//! UDP response packet cache.
//!
//! The authoritative engine is deterministic over static zones: the
//! response wire is a pure function of (client IP, query wire minus the
//! message id). Production DNS frontends exploit exactly this with a
//! packet cache — dnsdist's `PacketCache` is the canonical example — and
//! the live server here does the same so the §4.3 throughput experiments
//! measure the *replay engine*, not redundant server-side re-encoding of
//! one identical answer.
//!
//! Keys are the raw query bytes with the id zeroed (so retransmits and
//! replayed duplicates with fresh ids still hit); values keep the client
//! IP they were computed for, because [`crate::auth::AuthEngine::respond`]
//! may vary by client view — the same wire from a different IP is a miss
//! and recomputes.

use std::collections::HashMap;
use std::net::IpAddr;

/// Bounded map from query wire (id zeroed) to the response template.
pub struct PacketCache {
    map: HashMap<Vec<u8>, (IpAddr, Vec<u8>)>,
    cap: usize,
    pub hits: u64,
    pub misses: u64,
}

impl PacketCache {
    /// `cap` bounds the number of distinct query wires kept; when full the
    /// cache is cleared wholesale (replay workloads are heavily skewed, so
    /// a cold restart refills with the hot set immediately).
    pub fn new(cap: usize) -> PacketCache {
        PacketCache {
            map: HashMap::new(),
            cap: cap.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `wire` (already id-zeroed) for `client`. On a hit, returns
    /// the response bytes with `id` patched in.
    pub fn get(&mut self, client: IpAddr, wire: &[u8], id: u16) -> Option<Vec<u8>> {
        match self.map.get(wire) {
            Some((ip, template)) if *ip == client => {
                self.hits += 1;
                let mut bytes = template.clone();
                if bytes.len() >= 2 {
                    bytes[0..2].copy_from_slice(&id.to_be_bytes());
                }
                Some(bytes)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores the response template for `wire` (id zeroed on both sides).
    pub fn put(&mut self, client: IpAddr, wire: &[u8], response: &[u8]) {
        if self.map.len() >= self.cap {
            self.map.clear();
        }
        let mut template = response.to_vec();
        if template.len() >= 2 {
            template[0..2].copy_from_slice(&[0, 0]);
        }
        self.map.insert(wire.to_vec(), (client, template));
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn hit_patches_requested_id() {
        let mut c = PacketCache::new(16);
        let query = [0, 0, 1, 2, 3];
        c.put(ip("127.0.0.1"), &query, &[9, 9, 42, 43]);
        let got = c.get(ip("127.0.0.1"), &query, 0xBEEF).unwrap();
        assert_eq!(got, vec![0xBE, 0xEF, 42, 43], "id patched, body intact");
        // A retransmit under another id hits the same entry.
        let again = c.get(ip("127.0.0.1"), &query, 7).unwrap();
        assert_eq!(&again[2..], &[42, 43]);
        assert_eq!((c.hits, c.misses), (2, 0));
    }

    #[test]
    fn different_client_ip_misses() {
        let mut c = PacketCache::new(16);
        let query = [0, 0, 1];
        c.put(ip("127.0.0.1"), &query, &[0, 0, 1]);
        assert!(
            c.get(ip("10.0.0.9"), &query, 1).is_none(),
            "view-dependent answers must not leak across clients"
        );
        assert_eq!((c.hits, c.misses), (0, 1));
    }

    #[test]
    fn capacity_bounds_the_map() {
        let mut c = PacketCache::new(4);
        for i in 0u8..32 {
            c.put(ip("127.0.0.1"), &[0, 0, i], &[0, 0, i]);
            assert!(c.len() <= 4, "cap respected after {i} inserts");
        }
        assert!(!c.is_empty());
    }
}
