//! The authoritative answer engine.
//!
//! Pure logic: (client address, query message) → response message. The same
//! engine backs the simulated server node, the live tokio server, and unit
//! tests. Zone selection is split-horizon by client address when a
//! [`ViewTable`] is supplied (the meta-DNS-server configuration of §2.4) or
//! a single shared [`ZoneSet`] otherwise (plain authoritative replay, §4).

use std::net::IpAddr;
use std::sync::Arc;

use ldp_wire::{Message, Opcode, Rcode};
use ldp_zone::{LookupOutcome, ViewTable, ZoneSet};

/// How the engine finds zones for a client.
enum ZoneSource {
    Views(ViewTable),
    Shared(Arc<ZoneSet>),
}

/// The authoritative engine.
pub struct AuthEngine {
    source: ZoneSource,
    /// Maximum UDP response size when the query carries no EDNS.
    plain_udp_limit: usize,
}

impl AuthEngine {
    /// Meta-DNS-server mode: zones chosen by (post-proxy) client address.
    pub fn with_views(views: ViewTable) -> AuthEngine {
        AuthEngine {
            source: ZoneSource::Views(views),
            plain_udp_limit: ldp_wire::MAX_UDP_PAYLOAD,
        }
    }

    /// Single-view mode: all clients see the same zones.
    pub fn with_zones(zones: Arc<ZoneSet>) -> AuthEngine {
        AuthEngine {
            source: ZoneSource::Shared(zones),
            plain_udp_limit: ldp_wire::MAX_UDP_PAYLOAD,
        }
    }

    fn zones_for(&self, client: IpAddr) -> Option<&ZoneSet> {
        match &self.source {
            ZoneSource::Views(v) => v.select(client).map(|arc| arc.as_ref()),
            ZoneSource::Shared(z) => Some(z.as_ref()),
        }
    }

    /// Produces the response for a query. `over_stream` disables UDP
    /// truncation (TCP/TLS carry any size).
    pub fn respond(&self, client: IpAddr, query: &Message, over_stream: bool) -> Message {
        let mut resp = Message::response_for(query);
        if query.header.opcode != Opcode::Query {
            resp.header.rcode = Rcode::NotImp;
            return resp;
        }
        let Some(question) = query.question() else {
            resp.header.rcode = Rcode::FormErr;
            return resp;
        };
        let Some(zones) = self.zones_for(client) else {
            resp.header.rcode = Rcode::Refused;
            return resp;
        };
        let dnssec_ok = query.dnssec_ok();
        match zones.lookup(&question.qname, question.qtype, dnssec_ok) {
            None => {
                resp.header.rcode = Rcode::Refused;
            }
            Some((_zone, outcome)) => match outcome {
                LookupOutcome::Answer {
                    records,
                    authority,
                    additional,
                } => {
                    resp.header.authoritative = true;
                    resp.answers = records;
                    resp.authorities = authority;
                    resp.additionals = additional;
                }
                LookupOutcome::Delegation(referral) => {
                    // Referrals are not authoritative answers: AA clear,
                    // NS of the child zone in authority, glue additional.
                    resp.header.authoritative = false;
                    resp.authorities = referral.ns_records;
                    resp.authorities.extend(referral.ds_records);
                    resp.additionals = referral.glue;
                }
                LookupOutcome::NoData { soa, denial } => {
                    resp.header.authoritative = true;
                    resp.authorities.extend(soa);
                    resp.authorities.extend(denial);
                }
                LookupOutcome::NxDomain { soa, denial } => {
                    resp.header.authoritative = true;
                    resp.header.rcode = Rcode::NxDomain;
                    resp.authorities.extend(soa);
                    resp.authorities.extend(denial);
                }
                LookupOutcome::OutOfZone => {
                    resp.header.rcode = Rcode::Refused;
                }
            },
        }
        if !over_stream {
            self.truncate_if_needed(query, &mut resp);
        }
        resp
    }

    /// RFC 2181 §9 truncation: if the encoded response exceeds the client's
    /// advertised limit, strip the record sections and set TC so the client
    /// retries over TCP.
    fn truncate_if_needed(&self, query: &Message, resp: &mut Message) {
        let limit = query
            .edns
            .as_ref()
            .map(|e| e.udp_payload_size as usize)
            .unwrap_or(self.plain_udp_limit)
            .max(self.plain_udp_limit);
        if resp.wire_size_estimate() <= limit {
            return;
        }
        // Check the real encoding (compression may fit under the limit).
        match resp.to_bytes() {
            Ok(bytes) if bytes.len() <= limit => {}
            _ => {
                resp.answers.clear();
                resp.authorities.clear();
                resp.additionals.clear();
                resp.header.truncated = true;
            }
        }
    }

    /// Serves the canonical emulation scenario: is this engine configured
    /// with split-horizon views?
    pub fn is_split_horizon(&self) -> bool {
        matches!(self.source, ZoneSource::Views(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::{Edns, Name, RData, Record, RrType};
    use ldp_zone::Zone;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn hierarchy_views() -> ViewTable {
        let mut root = Zone::with_fake_soa(Name::root());
        root.add(Record::new(
            n("com"),
            172800,
            RData::Ns(n("a.gtld-servers.net")),
        ))
        .unwrap();
        root.add(Record::new(
            n("a.gtld-servers.net"),
            172800,
            RData::A("192.5.6.30".parse().unwrap()),
        ))
        .unwrap();

        let mut com = Zone::with_fake_soa(n("com"));
        com.add(Record::new(
            n("example.com"),
            172800,
            RData::Ns(n("ns1.example.com")),
        ))
        .unwrap();
        com.add(Record::new(
            n("ns1.example.com"),
            172800,
            RData::A("192.0.2.53".parse().unwrap()),
        ))
        .unwrap();

        let mut sld = Zone::with_fake_soa(n("example.com"));
        sld.add(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.80".parse().unwrap()),
        ))
        .unwrap();

        ViewTable::from_nameserver_map(vec![
            (ip("198.41.0.4"), root),
            (ip("192.5.6.30"), com),
            (ip("192.0.2.53"), sld),
        ])
    }

    #[test]
    fn split_horizon_referral_chain() {
        let engine = AuthEngine::with_views(hierarchy_views());
        assert!(engine.is_split_horizon());
        let q = Message::query(1, n("www.example.com"), RrType::A);

        // Asked "as the root" (client addr = root NS addr): com referral.
        let r = engine.respond(ip("198.41.0.4"), &q, false);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert!(!r.header.authoritative);
        assert!(r.answers.is_empty());
        assert_eq!(r.authorities[0].name, n("com"));
        assert!(!r.additionals.is_empty(), "glue expected");

        // Asked "as com": example.com referral.
        let r = engine.respond(ip("192.5.6.30"), &q, false);
        assert_eq!(r.authorities[0].name, n("example.com"));

        // Asked "as the SLD": the answer.
        let r = engine.respond(ip("192.0.2.53"), &q, false);
        assert!(r.header.authoritative);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn unknown_view_refused() {
        let engine = AuthEngine::with_views(hierarchy_views());
        let q = Message::query(1, n("www.example.com"), RrType::A);
        let r = engine.respond(ip("10.1.1.1"), &q, false);
        assert_eq!(r.header.rcode, Rcode::Refused);
    }

    #[test]
    fn shared_zones_mode() {
        let mut set = ZoneSet::new();
        let mut z = Zone::with_fake_soa(n("example.com"));
        z.add(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.80".parse().unwrap()),
        ))
        .unwrap();
        set.insert(z);
        let engine = AuthEngine::with_zones(Arc::new(set));
        let q = Message::query(9, n("www.example.com"), RrType::A);
        let r = engine.respond(ip("10.0.0.1"), &q, false);
        assert_eq!(r.header.id, 9);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn nxdomain_and_nodata() {
        let mut set = ZoneSet::new();
        let mut z = Zone::with_fake_soa(n("example.com"));
        z.add(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.80".parse().unwrap()),
        ))
        .unwrap();
        set.insert(z);
        let engine = AuthEngine::with_zones(Arc::new(set));

        let r = engine.respond(
            ip("10.0.0.1"),
            &Message::query(1, n("nope.example.com"), RrType::A),
            false,
        );
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert_eq!(r.authorities.len(), 1, "SOA in authority");

        let r = engine.respond(
            ip("10.0.0.1"),
            &Message::query(1, n("www.example.com"), RrType::Mx),
            false,
        );
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert!(r.answers.is_empty());
        assert_eq!(r.authorities.len(), 1);
    }

    #[test]
    fn out_of_zone_refused() {
        let mut set = ZoneSet::new();
        set.insert(Zone::with_fake_soa(n("example.com")));
        let engine = AuthEngine::with_zones(Arc::new(set));
        let r = engine.respond(
            ip("10.0.0.1"),
            &Message::query(1, n("example.net"), RrType::A),
            false,
        );
        assert_eq!(r.header.rcode, Rcode::Refused);
    }

    #[test]
    fn truncation_over_udp_but_not_tcp() {
        // Build a response far over 512 bytes: many TXT records.
        let mut set = ZoneSet::new();
        let mut z = Zone::with_fake_soa(n("big.test"));
        for i in 0..20 {
            z.add(Record::new(
                n("fat.big.test"),
                60,
                RData::Txt(vec![vec![b'a' + (i % 26) as u8; 200], vec![i as u8; 50]]),
            ))
            .unwrap();
        }
        set.insert(z);
        let engine = AuthEngine::with_zones(Arc::new(set));
        let q = Message::query(1, n("fat.big.test"), RrType::Txt);

        let udp = engine.respond(ip("10.0.0.1"), &q, false);
        assert!(udp.header.truncated);
        assert!(udp.answers.is_empty());

        let tcp = engine.respond(ip("10.0.0.1"), &q, true);
        assert!(!tcp.header.truncated);
        assert_eq!(tcp.answers.len(), 20);

        // EDNS with a big payload also avoids truncation.
        let mut q_edns = q.clone();
        q_edns.edns = Some(Edns {
            udp_payload_size: 65000,
            ..Edns::default()
        });
        let udp_edns = engine.respond(ip("10.0.0.1"), &q_edns, false);
        assert!(!udp_edns.header.truncated);
    }

    #[test]
    fn non_query_opcode_notimp() {
        let mut set = ZoneSet::new();
        set.insert(Zone::with_fake_soa(n("example.com")));
        let engine = AuthEngine::with_zones(Arc::new(set));
        let mut q = Message::query(1, n("example.com"), RrType::A);
        q.header.opcode = Opcode::Update;
        let r = engine.respond(ip("10.0.0.1"), &q, false);
        assert_eq!(r.header.rcode, Rcode::NotImp);
    }

    #[test]
    fn empty_question_formerr() {
        let mut set = ZoneSet::new();
        set.insert(Zone::with_fake_soa(n("example.com")));
        let engine = AuthEngine::with_zones(Arc::new(set));
        let q = Message::default();
        let r = engine.respond(ip("10.0.0.1"), &q, false);
        assert_eq!(r.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn do_bit_grows_signed_response() {
        use ldp_zone::dnssec::{sign_zone, SigningConfig};
        let mut root = Zone::with_fake_soa(Name::root());
        root.add(Record::new(
            n("com"),
            172800,
            RData::Ns(n("a.gtld-servers.net")),
        ))
        .unwrap();
        root.add(Record::new(
            n("com"),
            86400,
            RData::Ds {
                key_tag: 1,
                algorithm: 8,
                digest_type: 2,
                digest: vec![7; 32],
            },
        ))
        .unwrap();
        sign_zone(&mut root, SigningConfig::zsk2048());
        let mut set = ZoneSet::new();
        set.insert(root);
        let engine = AuthEngine::with_zones(Arc::new(set));

        let plain_q = Message::query(1, n("www.example.com"), RrType::A);
        let mut do_q = plain_q.clone();
        do_q.edns = Some(Edns::with_do());

        let plain = engine.respond(ip("10.0.0.1"), &plain_q, true);
        let signed = engine.respond(ip("10.0.0.1"), &do_q, true);
        let plain_len = plain.to_bytes().unwrap().len();
        let signed_len = signed.to_bytes().unwrap().len();
        assert!(
            signed_len > plain_len + 256,
            "DO response {signed_len} must exceed plain {plain_len} by a signature"
        );
    }
}
