//! Seeded, deterministic fault injection for the live server.
//!
//! The replay engine's fault-tolerance claims (timeouts, retransmits,
//! reconnects, graceful degradation) are only testable if the system
//! under test can be scripted to misbehave. [`ChaosPolicy`] injects that
//! misbehavior into [`crate::live::LiveServer`]: dropping, duplicating,
//! or delaying UDP responses; refusing or resetting TCP conversations;
//! and going completely dark for configured windows mid-replay.
//!
//! Determinism: per-packet fates are *content-keyed*, not drawn from
//! shared RNG state. A response's fate is a pure function of
//! `(seed, query wire, nth sighting of that wire)` via
//! [`ldp_netsim::backoff::decide`], so the decision for a given query is
//! identical across runs regardless of arrival order or thread
//! interleaving — and a *retransmit* of the same wire is a fresh sighting
//! with an independent fate, which is what lets a lossy-but-retrying
//! replay converge deterministically. TCP accept/reset fates are keyed on
//! deterministic per-listener counters the same way.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use ldp_netsim::backoff::{decide, hash_bytes};

/// What the chaos layer decided to do with one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFate {
    Deliver,
    /// Swallow the response (the client sees a timeout).
    Drop,
    /// Deliver the response twice (duplicate delivery).
    Duplicate,
    /// Deliver after an extra delay.
    Delay(Duration),
}

/// Counters for injected faults, readable by tests through the shared
/// policy handle.
#[derive(Debug, Default)]
pub struct ChaosStats {
    pub dropped: AtomicU64,
    pub duplicated: AtomicU64,
    pub delayed: AtomicU64,
    pub refused_accepts: AtomicU64,
    pub resets: AtomicU64,
}

/// A blackout phase relative to server start: every response (UDP) in
/// `[after, after + lasts)` is dropped, scripting "the server goes dark
/// for 2 s mid-replay".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DarkWindow {
    pub after: Duration,
    pub lasts: Duration,
}

/// Seeded fault-injection policy for the live server. Build with the
/// fluent constructors; pass to
/// [`crate::live::LiveServer::spawn_with_chaos`].
#[derive(Debug)]
pub struct ChaosPolicy {
    seed: u64,
    drop_p: f64,
    duplicate_p: f64,
    delay_p: f64,
    delay_by: Duration,
    refuse_accept_p: f64,
    reset_after: Option<u64>,
    dark: Vec<DarkWindow>,
    /// Per-wire sighting counts, so a retransmitted query gets a fresh,
    /// still-deterministic fate. Keyed by the content hash of the
    /// id-zeroed query wire.
    seen: Mutex<HashMap<u64, u32>>,
    accepts: AtomicU64,
    pub stats: ChaosStats,
}

/// Distinct decision salts so drop/duplicate/delay/refuse draws are
/// independent of one another for the same key.
const SALT_DROP: u64 = 0x6472_6f70; // "drop"
const SALT_DUP: u64 = 0x6475_706c; // "dupl"
const SALT_DELAY: u64 = 0x6465_6c61; // "dela"
const SALT_ACCEPT: u64 = 0x6163_6370; // "accp"

impl ChaosPolicy {
    /// No faults; compose with the builder methods below.
    pub fn new(seed: u64) -> ChaosPolicy {
        ChaosPolicy {
            seed,
            drop_p: 0.0,
            duplicate_p: 0.0,
            delay_p: 0.0,
            delay_by: Duration::ZERO,
            refuse_accept_p: 0.0,
            reset_after: None,
            dark: Vec::new(),
            seen: Mutex::new(HashMap::new()),
            accepts: AtomicU64::new(0),
            stats: ChaosStats::default(),
        }
    }

    /// Drop each UDP response with probability `p`.
    pub fn drop_responses(mut self, p: f64) -> ChaosPolicy {
        self.drop_p = p.clamp(0.0, 1.0);
        self
    }

    /// Deliver each UDP response twice with probability `p`.
    pub fn duplicate_responses(mut self, p: f64) -> ChaosPolicy {
        self.duplicate_p = p.clamp(0.0, 1.0);
        self
    }

    /// Delay each UDP response by `by` with probability `p`.
    pub fn delay_responses(mut self, p: f64, by: Duration) -> ChaosPolicy {
        self.delay_p = p.clamp(0.0, 1.0);
        self.delay_by = by;
        self
    }

    /// Refuse (immediately close) each accepted TCP connection with
    /// probability `p`.
    pub fn refuse_accepts(mut self, p: f64) -> ChaosPolicy {
        self.refuse_accept_p = p.clamp(0.0, 1.0);
        self
    }

    /// Reset (close) every TCP connection after it has served `n` queries,
    /// forcing clients to reconnect.
    pub fn reset_after(mut self, n: u64) -> ChaosPolicy {
        self.reset_after = Some(n.max(1));
        self
    }

    /// Add a blackout window: all UDP responses in
    /// `[after, after + lasts)` of server uptime are dropped.
    pub fn dark_window(mut self, after: Duration, lasts: Duration) -> ChaosPolicy {
        self.dark.push(DarkWindow { after, lasts });
        self
    }

    fn in_dark(&self, uptime: Duration) -> bool {
        self.dark
            .iter()
            .any(|w| uptime >= w.after && uptime < w.after + w.lasts)
    }

    /// Fate of the response to the query whose id-zeroed wire is
    /// `query_wire`, at server uptime `uptime`. Bumps the wire's sighting
    /// count; the decision is a pure function of
    /// `(seed, wire, sighting #)`.
    pub fn response_fate(&self, query_wire: &[u8], uptime: Duration) -> ResponseFate {
        if self.in_dark(uptime) {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return ResponseFate::Drop;
        }
        if self.drop_p <= 0.0 && self.duplicate_p <= 0.0 && self.delay_p <= 0.0 {
            return ResponseFate::Deliver;
        }
        let wire_key = hash_bytes(self.seed, query_wire);
        let sighting = {
            let mut seen = self.seen.lock();
            let n = seen.entry(wire_key).or_insert(0);
            *n += 1;
            u64::from(*n)
        };
        let key = wire_key ^ (sighting << 32);
        if decide(self.seed ^ SALT_DROP, key, self.drop_p) {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return ResponseFate::Drop;
        }
        if decide(self.seed ^ SALT_DUP, key, self.duplicate_p) {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            return ResponseFate::Duplicate;
        }
        if decide(self.seed ^ SALT_DELAY, key, self.delay_p) {
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
            return ResponseFate::Delay(self.delay_by);
        }
        ResponseFate::Deliver
    }

    /// Whether to refuse the nth accepted TCP connection (decided by a
    /// deterministic accept counter).
    pub fn refuse_accept(&self) -> bool {
        if self.refuse_accept_p <= 0.0 {
            return false;
        }
        let n = self.accepts.fetch_add(1, Ordering::Relaxed);
        let refuse = decide(self.seed ^ SALT_ACCEPT, n, self.refuse_accept_p);
        if refuse {
            self.stats.refused_accepts.fetch_add(1, Ordering::Relaxed);
        }
        refuse
    }

    /// Whether a connection that has served `queries_served` queries
    /// should now be reset. Callers should close the connection when this
    /// returns true.
    pub fn should_reset(&self, queries_served: u64) -> bool {
        let Some(n) = self.reset_after else {
            return false;
        };
        let reset = queries_served >= n;
        if reset {
            self.stats.resets.fetch_add(1, Ordering::Relaxed);
        }
        reset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_always_delivers() {
        let p = ChaosPolicy::new(1);
        for i in 0..100u32 {
            assert_eq!(
                p.response_fate(&i.to_be_bytes(), Duration::ZERO),
                ResponseFate::Deliver
            );
        }
        assert!(!p.refuse_accept());
        assert!(!p.should_reset(1_000_000));
    }

    #[test]
    fn fates_are_deterministic_across_policies_with_same_seed() {
        let a = ChaosPolicy::new(7)
            .drop_responses(0.3)
            .duplicate_responses(0.1);
        let b = ChaosPolicy::new(7)
            .drop_responses(0.3)
            .duplicate_responses(0.1);
        let fa: Vec<ResponseFate> = (0..300u32)
            .map(|i| a.response_fate(&i.to_be_bytes(), Duration::ZERO))
            .collect();
        let fb: Vec<ResponseFate> = (0..300u32)
            .map(|i| b.response_fate(&i.to_be_bytes(), Duration::ZERO))
            .collect();
        assert_eq!(fa, fb);
        assert!(fa.contains(&ResponseFate::Drop));
        let c = ChaosPolicy::new(8)
            .drop_responses(0.3)
            .duplicate_responses(0.1);
        let fc: Vec<ResponseFate> = (0..300u32)
            .map(|i| c.response_fate(&i.to_be_bytes(), Duration::ZERO))
            .collect();
        assert_ne!(fa, fc, "different seed, different fate stream");
    }

    #[test]
    fn fates_are_arrival_order_independent() {
        // The same wire set in reversed order gets the same per-wire fates.
        let a = ChaosPolicy::new(3).drop_responses(0.5);
        let b = ChaosPolicy::new(3).drop_responses(0.5);
        let fa: Vec<ResponseFate> = (0..100u32)
            .map(|i| a.response_fate(&i.to_be_bytes(), Duration::ZERO))
            .collect();
        let mut fb: Vec<(u32, ResponseFate)> = (0..100u32)
            .rev()
            .map(|i| (i, b.response_fate(&i.to_be_bytes(), Duration::ZERO)))
            .collect();
        fb.sort_by_key(|&(i, _)| i);
        for (i, fate) in fb {
            assert_eq!(fa[i as usize], fate, "wire {i}");
        }
    }

    #[test]
    fn retransmits_get_fresh_fates() {
        // With p=1.0 dark impossible but per-sighting decisions: p=0.5 over
        // many sightings of ONE wire must produce both fates.
        let p = ChaosPolicy::new(11).drop_responses(0.5);
        let fates: Vec<ResponseFate> = (0..64)
            .map(|_| p.response_fate(b"same-wire", Duration::ZERO))
            .collect();
        assert!(fates.contains(&ResponseFate::Drop));
        assert!(fates.contains(&ResponseFate::Deliver));
    }

    #[test]
    fn dark_window_drops_everything_inside() {
        let p = ChaosPolicy::new(0).dark_window(Duration::from_secs(2), Duration::from_secs(1));
        assert_eq!(
            p.response_fate(b"q", Duration::from_secs(1)),
            ResponseFate::Deliver
        );
        assert_eq!(
            p.response_fate(b"q", Duration::from_millis(2500)),
            ResponseFate::Drop
        );
        assert_eq!(
            p.response_fate(b"q", Duration::from_secs(3)),
            ResponseFate::Deliver
        );
        assert_eq!(p.stats.dropped.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reset_after_counts() {
        let p = ChaosPolicy::new(0).reset_after(3);
        assert!(!p.should_reset(2));
        assert!(p.should_reset(3));
        assert_eq!(p.stats.resets.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn refuse_rate_and_determinism() {
        let a = ChaosPolicy::new(5).refuse_accepts(0.5);
        let b = ChaosPolicy::new(5).refuse_accepts(0.5);
        let fa: Vec<bool> = (0..200).map(|_| a.refuse_accept()).collect();
        let fb: Vec<bool> = (0..200).map(|_| b.refuse_accept()).collect();
        assert_eq!(fa, fb);
        let refusals = fa.iter().filter(|&&r| r).count();
        assert!(refusals > 50 && refusals < 150, "refusals {refusals}");
    }
}
