//! DNS servers for the LDplayer reproduction.
//!
//! * [`auth`] — the authoritative answer engine: split-horizon zone
//!   selection (the meta-DNS-server of §2.4) plus response assembly with
//!   truncation handling,
//! * [`resource`] — the calibrated resource model translating protocol
//!   state (connections, handshakes, queries) into the memory/CPU numbers
//!   the §5.2 experiments report,
//! * [`cache`] — a TTL-respecting resolver cache with negative caching,
//! * [`pktcache`] — a dnsdist-style UDP packet cache keyed on the raw
//!   query wire, used by the live server's hot path,
//! * [`recursive`] — iterative resolution logic (root → TLD → SLD walks),
//! * [`sim`] — [`ldp_netsim`] node wrappers: a full authoritative server
//!   node (UDP/TCP/TLS) with resource sampling, and a recursive resolver
//!   node,
//! * [`live`] — a tokio-based authoritative server on real sockets for the
//!   loopback replay-fidelity experiments (§4),
//! * [`chaos`] — seeded, deterministic fault injection (drop/duplicate/
//!   delay responses, refuse/reset TCP, dark windows) for chaos-testing
//!   the live replay path against this server.

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod auth;
pub mod cache;
pub mod chaos;
pub mod live;
pub mod pktcache;
pub mod recursive;
pub mod resource;
pub mod sim;

pub use auth::AuthEngine;
pub use chaos::{ChaosPolicy, ChaosStats, ResponseFate};
pub use resource::{ResourceModel, ResourceUsage};
