//! The server resource model: protocol state → memory and CPU.
//!
//! The paper measured a real nsd-4.1.0 on a 64 GB, 48-thread Xeon. We can't
//! run that host, so the simulated server converts its *exact* protocol
//! state (how many established connections, how many TIME_WAIT sockets, how
//! many TLS sessions, how many handshakes and queries happened) into
//! resource numbers through this calibrated linear model.
//!
//! Calibration anchors (paper §5.2.2–§5.2.3, B-Root-17a, 20 s timeout):
//!
//! * all-UDP baseline ≈ 2 GB RSS,
//! * all-TCP ≈ 15 GB with ≈60 k established + ≈120 k TIME_WAIT
//!   → (15 GB − 2 GB) ≈ 60 k·rss_per_conn + 120 k·rss_per_time_wait
//!   → ≈ 208 kB per established connection (Linux's default ~87 kB read
//!   plus ~87 kB write buffer plus sk_buff overhead lands right there) and
//!   ~2 kB per TIME_WAIT (a minisock),
//! * all-TLS ≈ 18 GB → +3 GB over TCP across ≈60 k sessions ≈ 50 kB of
//!   OpenSSL session state per connection,
//! * CPU: all-TCP ≈ 5% of 48 cores, all-TLS ≈ 9–10%, and — the paper's
//!   surprise — the original 97%-UDP mix ≈ 10%, *more* than all-TCP. The
//!   paper attributes the TCP discount to NIC offload (TSO/TOE on the
//!   Intel X710); the model encodes it as a lower per-query CPU cost for
//!   stream transports than for UDP.
//!
//! Everything *shape-like* (growth with timeout, flatness over time, the
//! TLS premium) emerges from the connection dynamics; only these per-unit
//! constants are fixed.

use ldp_netsim::TcpSnapshot;

/// Calibrated per-unit resource costs.
#[derive(Debug, Clone, Copy)]
pub struct ResourceModel {
    /// Baseline server RSS (zones, process, UDP socket buffers), bytes.
    pub base_memory: u64,
    /// Kernel + userspace bytes per established TCP connection.
    pub per_established: u64,
    /// Bytes per TIME_WAIT minisock.
    pub per_time_wait: u64,
    /// Bytes per half-open (SYN) connection.
    pub per_syn_pending: u64,
    /// Extra bytes per live TLS session (cipher state, buffers).
    pub per_tls_session: u64,
    /// Bytes per live QUIC session: user-space connection + crypto state
    /// only — no kernel socket buffers, the big saving vs TCP.
    pub per_quic_session: u64,
    /// CPU µs per UDP query (parse, lookup, encode, one sendmsg — no
    /// offload help).
    pub cpu_us_per_udp_query: f64,
    /// CPU µs per TCP/TLS-carried query (NIC segmentation offload makes the
    /// per-message cost *lower* than UDP's, §5.2.3).
    pub cpu_us_per_stream_query: f64,
    /// CPU µs per TCP handshake (accept path, socket setup).
    pub cpu_us_per_handshake: f64,
    /// CPU µs per TLS handshake (RSA sign dominates).
    pub cpu_us_per_tls_handshake: f64,
    /// CPU µs per QUIC handshake (TLS 1.3 in one flight; similar crypto).
    pub cpu_us_per_quic_handshake: f64,
    /// CPU µs per kB of TLS record processed (symmetric crypto).
    pub cpu_us_per_tls_kb: f64,
    /// Server core count (the paper's server: 24 cores / 48 threads).
    pub cores: u32,
}

impl Default for ResourceModel {
    fn default() -> Self {
        ResourceModel {
            base_memory: 2 * GB,
            per_established: 208 * KB,
            per_time_wait: 2 * KB,
            per_syn_pending: KB,
            per_tls_session: 50 * KB,
            per_quic_session: 12 * KB,
            cpu_us_per_udp_query: 120.0,
            cpu_us_per_stream_query: 55.0,
            cpu_us_per_handshake: 80.0,
            cpu_us_per_tls_handshake: 560.0,
            cpu_us_per_quic_handshake: 460.0,
            cpu_us_per_tls_kb: 8.0,
            cores: 48,
        }
    }
}

const KB: u64 = 1024;
const GB: u64 = 1024 * 1024 * 1024;

/// Accumulated usage the server node tracks as it serves.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceUsage {
    pub udp_queries: u64,
    pub stream_queries: u64,
    pub tcp_handshakes: u64,
    pub tls_handshakes: u64,
    pub tls_bytes: u64,
    /// Live TLS sessions right now.
    pub tls_sessions: usize,
    pub quic_handshakes: u64,
    pub quic_bytes: u64,
    /// Live QUIC sessions right now.
    pub quic_sessions: usize,
}

impl ResourceModel {
    /// Total server memory (bytes) given connection state and TLS sessions.
    pub fn memory_bytes(&self, tcp: &TcpSnapshot, usage: &ResourceUsage) -> u64 {
        self.base_memory
            + tcp.established as u64 * self.per_established
            + tcp.time_wait as u64 * self.per_time_wait
            + tcp.syn_pending as u64 * self.per_syn_pending
            + usage.tls_sessions as u64 * self.per_tls_session
            + usage.quic_sessions as u64 * self.per_quic_session
    }

    /// Memory in GB (the unit Figures 13a/14a use).
    pub fn memory_gb(&self, tcp: &TcpSnapshot, usage: &ResourceUsage) -> f64 {
        self.memory_bytes(tcp, usage) as f64 / GB as f64
    }

    /// Total CPU time consumed (µs) for the accumulated work.
    pub fn cpu_us(&self, usage: &ResourceUsage) -> f64 {
        usage.udp_queries as f64 * self.cpu_us_per_udp_query
            + usage.stream_queries as f64 * self.cpu_us_per_stream_query
            + usage.tcp_handshakes as f64 * self.cpu_us_per_handshake
            + usage.tls_handshakes as f64 * self.cpu_us_per_tls_handshake
            + usage.quic_handshakes as f64 * self.cpu_us_per_quic_handshake
            + ((usage.tls_bytes + usage.quic_bytes) as f64 / 1024.0) * self.cpu_us_per_tls_kb
    }

    /// Overall CPU utilization in percent over `elapsed_us` wall time,
    /// normalized by core count — the metric of Figure 11.
    pub fn cpu_percent(&self, usage: &ResourceUsage, elapsed_us: f64) -> f64 {
        if elapsed_us <= 0.0 {
            return 0.0;
        }
        100.0 * self.cpu_us(usage) / (elapsed_us * self.cores as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(established: usize, time_wait: usize) -> TcpSnapshot {
        TcpSnapshot {
            established,
            time_wait,
            ..TcpSnapshot::default()
        }
    }

    #[test]
    fn udp_only_is_baseline() {
        let m = ResourceModel::default();
        let gb = m.memory_gb(&snap(0, 0), &ResourceUsage::default());
        assert!((gb - 2.0).abs() < 0.01, "{gb}");
    }

    #[test]
    fn paper_anchor_tcp_memory() {
        // ≈60k established + ≈120k TIME_WAIT should land near 15 GB.
        let m = ResourceModel::default();
        let gb = m.memory_gb(&snap(60_000, 120_000), &ResourceUsage::default());
        assert!((13.0..17.0).contains(&gb), "TCP memory {gb} GB out of band");
    }

    #[test]
    fn paper_anchor_tls_memory() {
        // Same connections plus 60k TLS sessions ≈ 18 GB.
        let m = ResourceModel::default();
        let usage = ResourceUsage {
            tls_sessions: 60_000,
            ..ResourceUsage::default()
        };
        let gb = m.memory_gb(&snap(60_000, 120_000), &usage);
        assert!((16.0..20.0).contains(&gb), "TLS memory {gb} GB out of band");
    }

    #[test]
    fn tls_premium_is_moderate() {
        // Paper: UDP→TCP is ~6×, TCP→TLS only ~30% more.
        let m = ResourceModel::default();
        let udp = m.memory_gb(&snap(0, 0), &ResourceUsage::default());
        let tcp = m.memory_gb(&snap(60_000, 120_000), &ResourceUsage::default());
        let tls = m.memory_gb(
            &snap(60_000, 120_000),
            &ResourceUsage {
                tls_sessions: 60_000,
                ..ResourceUsage::default()
            },
        );
        assert!(tcp / udp > 5.0, "TCP/UDP ratio {}", tcp / udp);
        let premium = (tls - tcp) / tcp;
        assert!((0.1..0.5).contains(&premium), "TLS premium {premium}");
    }

    #[test]
    fn cpu_anchor_tcp() {
        // B-Root-17a: ~39k q/s for an hour ≈ 141M queries, all TCP with
        // ~20s-lived connections. CPU should land near the paper's ~5% of
        // 48 cores.
        let m = ResourceModel::default();
        let hour_us = 3600.0 * 1e6;
        let usage = ResourceUsage {
            stream_queries: 141_000_000,
            tcp_handshakes: 9_000_000,
            ..ResourceUsage::default()
        };
        let pct = m.cpu_percent(&usage, hour_us);
        assert!((3.0..7.0).contains(&pct), "TCP CPU {pct}%");
    }

    #[test]
    fn cpu_anchor_tls_roughly_double_tcp() {
        let m = ResourceModel::default();
        let hour_us = 3600.0 * 1e6;
        let tcp_usage = ResourceUsage {
            stream_queries: 141_000_000,
            tcp_handshakes: 9_000_000,
            ..ResourceUsage::default()
        };
        let tls_usage = ResourceUsage {
            tls_handshakes: 9_000_000,
            tls_bytes: 141_000_000 * 120,
            ..tcp_usage
        };
        let tcp_pct = m.cpu_percent(&tcp_usage, hour_us);
        let tls_pct = m.cpu_percent(&tls_usage, hour_us);
        assert!(tls_pct > tcp_pct * 1.5, "TLS {tls_pct}% vs TCP {tcp_pct}%");
        assert!((6.0..14.0).contains(&tls_pct), "TLS CPU {tls_pct}%");
    }

    #[test]
    fn cpu_anchor_udp_mix_exceeds_all_tcp() {
        // The paper's surprise: the original (97% UDP) trace costs ~10%,
        // double the all-TCP replay.
        let m = ResourceModel::default();
        let hour_us = 3600.0 * 1e6;
        let mixed = ResourceUsage {
            udp_queries: 137_000_000,
            stream_queries: 4_000_000,
            tcp_handshakes: 400_000,
            ..ResourceUsage::default()
        };
        let all_tcp = ResourceUsage {
            stream_queries: 141_000_000,
            tcp_handshakes: 9_000_000,
            ..ResourceUsage::default()
        };
        let mixed_pct = m.cpu_percent(&mixed, hour_us);
        let tcp_pct = m.cpu_percent(&all_tcp, hour_us);
        assert!((8.0..13.0).contains(&mixed_pct), "mixed CPU {mixed_pct}%");
        assert!(mixed_pct > tcp_pct, "UDP-heavy mix must exceed all-TCP");
    }

    #[test]
    fn quic_memory_between_udp_and_tcp() {
        // QUIC keeps per-session state but no kernel buffers: memory per
        // connection must land far below TCP's and above bare UDP.
        let m = ResourceModel::default();
        let quic = m.memory_gb(
            &snap(0, 0),
            &ResourceUsage {
                quic_sessions: 60_000,
                ..ResourceUsage::default()
            },
        );
        let tcp = m.memory_gb(&snap(60_000, 120_000), &ResourceUsage::default());
        let udp = m.memory_gb(&snap(0, 0), &ResourceUsage::default());
        assert!(quic > udp);
        assert!(
            quic < tcp * 0.4,
            "QUIC {quic} should be well under TCP {tcp}"
        );
    }

    #[test]
    fn zero_elapsed_no_panic() {
        let m = ResourceModel::default();
        assert_eq!(m.cpu_percent(&ResourceUsage::default(), 0.0), 0.0);
    }
}
