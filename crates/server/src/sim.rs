//! Simulator node wrappers: a full authoritative server node (UDP + TCP +
//! TLS with resource sampling) and a recursive resolver node.

use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr};
use std::sync::Arc;

use ldp_netsim::quic::{self, QuicFrame, QuicServerSessions};
use ldp_netsim::{
    ConnKey, Ctx, Node, NodeEvent, Packet, Payload, SimDuration, SimTime, TcpConfig, TcpEvent,
    TcpStack, TlsEndpoint, TlsOutput, TlsRole,
};
use ldp_wire::framing::{frame_message, FrameDecoder};
use ldp_wire::{Message, DNS_PORT, DNS_TLS_PORT};

use crate::auth::AuthEngine;
use crate::recursive::{ResolverCore, ResolverStep};
use crate::resource::{ResourceModel, ResourceUsage};

/// Timer token for the periodic resource sampler (distinct from TCP-stack
/// tokens, which carry the high bit).
const SAMPLE_TOKEN: u64 = 1;
/// Timer token for QUIC idle-session expiry sweeps.
const QUIC_EXPIRE_TOKEN: u64 = 2;

/// One sample of server state (a row of Figures 13/14's time series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSample {
    pub t: SimTime,
    pub memory_gb: f64,
    pub established: usize,
    pub time_wait: usize,
    pub cpu_percent: f64,
    /// Response bandwidth over the last sample interval (Mbit/s).
    pub response_mbps: f64,
}

/// The authoritative meta-DNS-server as a simulation node.
///
/// Listens for UDP queries on port 53, DNS-over-TCP on 53, and emulated
/// DNS-over-TLS on 853. Per-connection stream state (frame reassembly, TLS
/// sessions) mirrors what an event-driven server process keeps per client.
pub struct AuthServerNode {
    /// The server's own address (also the TcpStack's local IP).
    pub addr: IpAddr,
    engine: Arc<AuthEngine>,
    pub tcp: TcpStack,
    tls: HashMap<ConnKey, TlsEndpoint>,
    framers: HashMap<ConnKey, FrameDecoder>,
    /// DNS-over-QUIC sessions (extension transport): conn-id keyed,
    /// sharing the TCP idle-timeout knob, with no TIME_WAIT.
    pub quic: QuicServerSessions,
    /// Peer address per QUIC connection id (for Close notifications).
    quic_peers: HashMap<u64, SocketAddr>,
    quic_idle_timeout: Option<SimDuration>,
    pub usage: ResourceUsage,
    pub model: ResourceModel,
    /// Cumulative response bytes (DNS payload + transport framing).
    pub response_bytes: u64,
    response_bytes_at_last_sample: u64,
    sample_interval: SimDuration,
    start: SimTime,
    pub samples: Vec<ServerSample>,
    /// Count of malformed queries dropped (failure injection visibility).
    pub malformed: u64,
}

impl AuthServerNode {
    pub fn new(
        addr: IpAddr,
        engine: Arc<AuthEngine>,
        tcp_config: TcpConfig,
        model: ResourceModel,
    ) -> AuthServerNode {
        AuthServerNode {
            addr,
            engine,
            quic_idle_timeout: tcp_config.idle_timeout,
            tcp: TcpStack::new(addr, tcp_config),
            tls: HashMap::new(),
            framers: HashMap::new(),
            quic: QuicServerSessions::new(),
            quic_peers: HashMap::new(),
            usage: ResourceUsage::default(),
            model,
            response_bytes: 0,
            response_bytes_at_last_sample: 0,
            sample_interval: SimDuration::from_secs(1),
            start: SimTime::ZERO,
            samples: Vec::new(),
            malformed: 0,
        }
    }

    /// Sets the resource sampling interval (default 1 s).
    pub fn with_sample_interval(mut self, interval: SimDuration) -> AuthServerNode {
        self.sample_interval = interval;
        self
    }

    /// Handles a DNS-over-QUIC datagram (UDP port 853). RFC 9250 keeps
    /// the 2-byte length prefix inside the stream payload; the emulation
    /// carries exactly one framed DNS message per packet.
    fn handle_quic(&mut self, ctx: &mut Ctx, packet: &Packet, data: &[u8]) {
        let Some(frame) = quic::decode(data) else {
            self.malformed += 1;
            return;
        };
        self.usage.quic_bytes += data.len() as u64;
        match frame {
            QuicFrame::Initial { conn_id } => {
                if self.quic.open(conn_id, ctx.now()) {
                    self.usage.quic_handshakes += 1;
                    self.usage.quic_sessions = self.quic.len();
                }
                self.quic_peers.insert(conn_id, packet.src);
                ctx.send(Packet::udp(
                    packet.dst,
                    packet.src,
                    quic::encode(&QuicFrame::Accept { conn_id }),
                ));
            }
            QuicFrame::App { conn_id, data } => {
                if !self.quic.touch(conn_id, ctx.now()) {
                    // Unknown session (expired): tell the client.
                    ctx.send(Packet::udp(
                        packet.dst,
                        packet.src,
                        quic::encode(&QuicFrame::Close { conn_id }),
                    ));
                    return;
                }
                // Strip the RFC 9250 2-byte length prefix.
                if data.len() < 2 {
                    self.malformed += 1;
                    return;
                }
                let dns = &data[2..];
                let Ok(query) = Message::from_bytes(dns) else {
                    self.malformed += 1;
                    return;
                };
                self.usage.stream_queries += 1;
                let resp = self.engine.respond(packet.src.ip(), &query, true);
                let Ok(bytes) = resp.to_bytes() else { return };
                let Ok(framed) = frame_message(&bytes) else {
                    return;
                };
                let reply = quic::encode(&QuicFrame::App {
                    conn_id,
                    data: framed,
                });
                self.response_bytes += 28 + reply.len() as u64;
                self.usage.quic_bytes += reply.len() as u64;
                ctx.send(Packet::udp(packet.dst, packet.src, reply));
            }
            QuicFrame::Close { conn_id } => {
                self.quic.close(conn_id);
                self.quic_peers.remove(&conn_id);
                self.usage.quic_sessions = self.quic.len();
            }
            QuicFrame::Accept { .. } => {}
        }
    }

    fn expire_quic(&mut self, ctx: &mut Ctx) {
        if let Some(timeout) = self.quic_idle_timeout {
            let expired = self.quic.expire_idle(ctx.now(), timeout);
            for conn_id in expired {
                if let Some(peer) = self.quic_peers.remove(&conn_id) {
                    ctx.send(Packet::udp(
                        SocketAddr::new(self.addr, DNS_TLS_PORT),
                        peer,
                        quic::encode(&QuicFrame::Close { conn_id }),
                    ));
                }
            }
            self.usage.quic_sessions = self.quic.len();
            ctx.set_timer(SimDuration::from_secs(1), QUIC_EXPIRE_TOKEN);
        }
    }

    fn answer_udp(&mut self, ctx: &mut Ctx, packet: &Packet, data: &[u8]) {
        let Ok(query) = Message::from_bytes(data) else {
            self.malformed += 1;
            return;
        };
        self.usage.udp_queries += 1;
        let resp = self.engine.respond(packet.src.ip(), &query, false);
        if let Ok(bytes) = resp.to_bytes() {
            self.response_bytes += 28 + bytes.len() as u64;
            ctx.send(Packet::udp(packet.dst, packet.src, bytes));
        }
    }

    fn answer_stream(&mut self, ctx: &mut Ctx, key: ConnKey, dns_bytes: &[u8], is_tls: bool) {
        let Ok(query) = Message::from_bytes(dns_bytes) else {
            self.malformed += 1;
            return;
        };
        self.usage.stream_queries += 1;
        let resp = self.engine.respond(key.remote.ip(), &query, true);
        let Ok(bytes) = resp.to_bytes() else {
            return;
        };
        let Ok(framed) = frame_message(&bytes) else {
            return;
        };
        self.response_bytes += 40 + framed.len() as u64;
        if is_tls {
            if let Some(tls) = self.tls.get_mut(&key) {
                self.usage.tls_bytes += framed.len() as u64;
                for out in tls.write_app_data(&framed) {
                    if let TlsOutput::SendBytes(wire) = out {
                        self.tcp.send(ctx, key, &wire);
                    }
                }
            }
        } else {
            self.tcp.send(ctx, key, &framed);
        }
    }

    fn handle_tcp_events(&mut self, ctx: &mut Ctx, events: Vec<TcpEvent>) {
        for event in events {
            match event {
                TcpEvent::Accepted(key) => {
                    self.usage.tcp_handshakes += 1;
                    self.framers.insert(key, FrameDecoder::new());
                    if key.local.port() == DNS_TLS_PORT {
                        self.tls.insert(key, TlsEndpoint::new(TlsRole::Server));
                    }
                }
                TcpEvent::Data(key, bytes) => {
                    if let Some(mut tls) = self.tls.remove(&key) {
                        let was_established = tls.is_established();
                        let outs = tls.on_bytes(&bytes);
                        self.usage.tls_bytes += bytes.len() as u64;
                        let mut app_frames = Vec::new();
                        for out in outs {
                            match out {
                                TlsOutput::SendBytes(wire) => self.tcp.send(ctx, key, &wire),
                                TlsOutput::HandshakeComplete => {
                                    if !was_established {
                                        self.usage.tls_handshakes += 1;
                                        self.usage.tls_sessions += 1;
                                    }
                                }
                                TlsOutput::AppData(data) => app_frames.push(data),
                            }
                        }
                        self.tls.insert(key, tls);
                        for data in app_frames {
                            self.feed_framer(ctx, key, &data, true);
                        }
                    } else {
                        self.feed_framer(ctx, key, &bytes, false);
                    }
                }
                TcpEvent::PeerClosed(key) | TcpEvent::Closed(key) => {
                    self.framers.remove(&key);
                    if self.tls.remove(&key).is_some() {
                        self.usage.tls_sessions = self.usage.tls_sessions.saturating_sub(1);
                    }
                }
                TcpEvent::Connected(_) => {}
            }
        }
    }

    fn feed_framer(&mut self, ctx: &mut Ctx, key: ConnKey, bytes: &[u8], is_tls: bool) {
        let frames = {
            let framer = self.framers.entry(key).or_default();
            framer.feed(bytes);
            framer.drain_frames()
        };
        for frame in frames {
            self.answer_stream(ctx, key, &frame, is_tls);
        }
    }

    fn take_sample(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let snap = self.tcp.snapshot();
        let elapsed_us = (now - self.start).as_secs_f64() * 1e6;
        let delta_bytes = self.response_bytes - self.response_bytes_at_last_sample;
        self.response_bytes_at_last_sample = self.response_bytes;
        let interval_s = self.sample_interval.as_secs_f64();
        self.samples.push(ServerSample {
            t: now,
            memory_gb: self.model.memory_gb(&snap, &self.usage),
            established: snap.established,
            time_wait: snap.time_wait,
            cpu_percent: self.model.cpu_percent(&self.usage, elapsed_us),
            response_mbps: delta_bytes as f64 * 8.0 / 1e6 / interval_s,
        });
        ctx.set_timer(self.sample_interval, SAMPLE_TOKEN);
    }
}

impl Node for AuthServerNode {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.start = ctx.now();
        ctx.set_timer(self.sample_interval, SAMPLE_TOKEN);
        if self.quic_idle_timeout.is_some() {
            ctx.set_timer(SimDuration::from_secs(1), QUIC_EXPIRE_TOKEN);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
        match event {
            NodeEvent::Packet(packet) => match &packet.payload {
                Payload::Udp(data) => {
                    let data = data.clone();
                    if packet.dst.port() == DNS_TLS_PORT {
                        // UDP on 853 = DNS over QUIC (RFC 9250).
                        self.handle_quic(ctx, &packet, &data);
                    } else {
                        self.answer_udp(ctx, &packet, &data);
                    }
                }
                Payload::Tcp(_) => {
                    let events = self.tcp.on_packet(ctx, &packet);
                    self.handle_tcp_events(ctx, events);
                }
            },
            NodeEvent::Timer { token } if TcpStack::owns_timer(token) => {
                let events = self.tcp.on_timer(ctx, token);
                self.handle_tcp_events(ctx, events);
            }
            NodeEvent::Timer { token } if token == SAMPLE_TOKEN => {
                self.take_sample(ctx);
            }
            NodeEvent::Timer { token } if token == QUIC_EXPIRE_TOKEN => {
                self.expire_quic(ctx);
            }
            NodeEvent::Timer { .. } => {}
        }
    }
}

/// Timer token for the recursive node's retransmission tick.
const RESOLVER_TICK_TOKEN: u64 = 3;

/// The recursive resolver as a simulation node: accepts stub queries on
/// port 53/UDP, resolves iteratively against the (emulated) hierarchy.
pub struct RecursiveNode {
    addr: IpAddr,
    pub core: ResolverCore,
    /// Source port used for iterative upstream queries.
    upstream_port: u16,
}

impl RecursiveNode {
    pub fn new(addr: IpAddr, core: ResolverCore) -> RecursiveNode {
        RecursiveNode {
            addr,
            core,
            upstream_port: 40000,
        }
    }

    fn apply_steps(&mut self, ctx: &mut Ctx, steps: Vec<ResolverStep>) {
        for step in steps {
            match step {
                ResolverStep::Respond { to, message } => {
                    if let Ok(bytes) = message.to_bytes() {
                        ctx.send(Packet::udp(SocketAddr::new(self.addr, DNS_PORT), to, bytes));
                    }
                }
                ResolverStep::Ask { server, message } => {
                    if let Ok(bytes) = message.to_bytes() {
                        ctx.send(Packet::udp(
                            SocketAddr::new(self.addr, self.upstream_port),
                            SocketAddr::new(server, DNS_PORT),
                            bytes,
                        ));
                    }
                }
            }
        }
    }
}

impl Node for RecursiveNode {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(SimDuration::from_millis(500), RESOLVER_TICK_TOKEN);
    }

    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
        if let NodeEvent::Timer { token } = event {
            if token == RESOLVER_TICK_TOKEN {
                let steps = self.core.on_tick(ctx.now().as_micros());
                self.apply_steps(ctx, steps);
                ctx.set_timer(SimDuration::from_millis(500), RESOLVER_TICK_TOKEN);
            }
            return;
        }
        let NodeEvent::Packet(packet) = event else {
            return;
        };
        let Payload::Udp(data) = &packet.payload else {
            return;
        };
        let Ok(msg) = Message::from_bytes(data) else {
            return;
        };
        let now_us = ctx.now().as_micros();
        let steps = if msg.header.response {
            self.core.on_upstream_response(&msg, now_us)
        } else {
            self.core.on_client_query(packet.src, &msg, now_us)
        };
        self.apply_steps(ctx, steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_netsim::Sim;
    use ldp_wire::{Name, RData, Record, RrType};
    use ldp_zone::{Zone, ZoneSet};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn single_zone_engine() -> Arc<AuthEngine> {
        let mut z = Zone::with_fake_soa(n("example.com"));
        z.add(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.80".parse().unwrap()),
        ))
        .unwrap();
        let mut set = ZoneSet::new();
        set.insert(z);
        Arc::new(AuthEngine::with_zones(Arc::new(set)))
    }

    /// Stub client node that sends one UDP query and records the answer.
    struct Stub {
        addr: SocketAddr,
        server: SocketAddr,
        query: Message,
        response: Option<(SimTime, Message)>,
    }

    impl Node for Stub {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.send(Packet::udp(
                self.addr,
                self.server,
                self.query.to_bytes().unwrap(),
            ));
        }
        fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
            if let NodeEvent::Packet(p) = event {
                if let Payload::Udp(data) = &p.payload {
                    if let Ok(msg) = Message::from_bytes(data) {
                        self.response = Some((ctx.now(), msg));
                    }
                }
            }
        }
    }

    #[test]
    fn udp_query_answered_in_one_rtt() {
        let mut sim = Sim::new();
        let server = sim.add_node(Box::new(AuthServerNode::new(
            "192.0.2.53".parse().unwrap(),
            single_zone_engine(),
            TcpConfig::default(),
            ResourceModel::default(),
        )));
        let stub = sim.add_node(Box::new(Stub {
            addr: "10.0.0.1:5000".parse().unwrap(),
            server: "192.0.2.53:53".parse().unwrap(),
            query: Message::query(7, n("www.example.com"), RrType::A),
            response: None,
        }));
        sim.bind("192.0.2.53".parse().unwrap(), server);
        sim.bind("10.0.0.1".parse().unwrap(), stub);
        sim.set_pair_delay(stub, server, SimDuration::from_millis(10));
        sim.run_until(SimTime::from_secs(5));

        let stub_ref: &Stub = sim.node_as(stub).unwrap();
        let (t, resp) = stub_ref.response.as_ref().expect("answer");
        assert_eq!(*t, SimTime::from_millis(20), "UDP answer = 1 RTT");
        assert_eq!(resp.header.id, 7);
        assert_eq!(resp.answers.len(), 1);

        let server_ref: &AuthServerNode = sim.node_as(server).unwrap();
        assert_eq!(server_ref.usage.udp_queries, 1);
        assert!(server_ref.response_bytes > 0);
        assert!(!server_ref.samples.is_empty(), "sampler ran");
    }

    #[test]
    fn malformed_udp_counted_not_crashing() {
        struct Garbage {
            addr: SocketAddr,
            server: SocketAddr,
        }
        impl Node for Garbage {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send(Packet::udp(self.addr, self.server, vec![1, 2, 3]));
            }
            fn on_event(&mut self, _: &mut Ctx, _: NodeEvent) {}
        }
        let mut sim = Sim::new();
        let server = sim.add_node(Box::new(AuthServerNode::new(
            "192.0.2.53".parse().unwrap(),
            single_zone_engine(),
            TcpConfig::default(),
            ResourceModel::default(),
        )));
        let g = sim.add_node(Box::new(Garbage {
            addr: "10.0.0.1:5000".parse().unwrap(),
            server: "192.0.2.53:53".parse().unwrap(),
        }));
        sim.bind("192.0.2.53".parse().unwrap(), server);
        sim.bind("10.0.0.1".parse().unwrap(), g);
        sim.run_until(SimTime::from_secs(2));
        let server_ref: &AuthServerNode = sim.node_as(server).unwrap();
        assert_eq!(server_ref.malformed, 1);
        assert_eq!(server_ref.usage.udp_queries, 0);
    }
}
