//! Live authoritative server on real sockets (tokio).
//!
//! The replay-fidelity experiments (§4) measure the *replay engine* against
//! real time, so they need a real server to answer: this module serves the
//! same [`AuthEngine`] over loopback UDP and TCP. Event-driven, one task per
//! TCP connection, no blocking calls on the runtime — per the async
//! networking guidance this codebase follows.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, UdpSocket};
use tokio::task::JoinHandle;

use ldp_metrics::LogHistogram;
use ldp_wire::Message;
use parking_lot::Mutex;

use crate::auth::AuthEngine;
use crate::chaos::{ChaosPolicy, ResponseFate};
use crate::pktcache::{CacheStats, PacketCache};

/// Counters shared with the experiment harness.
#[derive(Debug, Default)]
pub struct LiveStats {
    pub udp_queries: AtomicU64,
    pub tcp_queries: AtomicU64,
    pub tcp_connections: AtomicU64,
    pub malformed: AtomicU64,
    pub response_bytes: AtomicU64,
    /// Response sends the kernel refused (buffer pressure or a vanished
    /// peer); counted, never silently swallowed.
    pub send_failures: AtomicU64,
    /// UDP packet-cache hit/miss/eviction totals (the cache itself lives
    /// inside the serving loop; only the counters are shared).
    pub pktcache: Arc<CacheStats>,
    /// Server-side handle time (µs) per query: parse through response
    /// encode, excluding the outbound send. UDP amortizes one measurement
    /// across each `recvmmsg` batch (the lock is taken per batch, not per
    /// query); TCP records each query individually.
    handle_us: Mutex<LogHistogram>,
}

impl LiveStats {
    /// Snapshot of the server-side handle-time histogram.
    pub fn handle_hist(&self) -> LogHistogram {
        self.handle_us.lock().clone()
    }

    fn record_handle(&self, elapsed_us: u64, queries: u64) {
        if let Some(per_query) = elapsed_us.checked_div(queries) {
            self.handle_us.lock().record_n(per_query, queries);
        }
    }
}

/// A running live server; aborts its tasks on drop.
pub struct LiveServer {
    pub addr: SocketAddr,
    pub stats: Arc<LiveStats>,
    /// Kept (when chaos-spawned) so telemetry can expose the fate totals.
    chaos: Option<Arc<ChaosPolicy>>,
    tasks: Vec<JoinHandle<()>>,
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        for t in &self.tasks {
            t.abort();
        }
    }
}

impl LiveServer {
    /// Binds UDP and TCP on `bind` (use port 0 for an ephemeral port) and
    /// starts serving `engine`.
    pub async fn spawn(engine: Arc<AuthEngine>, bind: SocketAddr) -> io::Result<LiveServer> {
        LiveServer::spawn_inner(engine, bind, None).await
    }

    /// Like [`LiveServer::spawn`], but with a [`ChaosPolicy`] injecting
    /// faults into the serving path (chaos testing the replay engine).
    pub async fn spawn_with_chaos(
        engine: Arc<AuthEngine>,
        bind: SocketAddr,
        chaos: Arc<ChaosPolicy>,
    ) -> io::Result<LiveServer> {
        LiveServer::spawn_inner(engine, bind, Some(chaos)).await
    }

    async fn spawn_inner(
        engine: Arc<AuthEngine>,
        bind: SocketAddr,
        chaos: Option<Arc<ChaosPolicy>>,
    ) -> io::Result<LiveServer> {
        let udp = UdpSocket::bind(bind).await?;
        let addr = udp.local_addr()?;
        let tcp = TcpListener::bind(addr).await?;
        let stats = Arc::new(LiveStats::default());

        let udp_task = tokio::spawn(serve_udp(udp, engine.clone(), stats.clone(), chaos.clone()));
        let tcp_task = tokio::spawn(serve_tcp(tcp, engine, stats.clone(), chaos.clone()));
        Ok(LiveServer {
            addr,
            stats,
            chaos,
            tasks: vec![udp_task, tcp_task],
        })
    }

    /// Registers this server's counters with a live-telemetry registry:
    /// query/malformed/byte totals, packet-cache behavior, and — when the
    /// server was chaos-spawned — the injected-fault totals. Everything is
    /// *observed* (closures over the atomics the serving loops already
    /// bump), so serving pays nothing beyond its existing counters.
    pub fn register_telemetry(&self, reg: &ldp_telemetry::Registry) {
        let stats = self.stats.clone();
        reg.observe_counter(
            "ldp_server_queries_total",
            "Queries handled",
            &[("proto", "udp")],
            {
                let s = stats.clone();
                move || s.udp_queries.load(Ordering::Relaxed)
            },
        );
        reg.observe_counter(
            "ldp_server_queries_total",
            "Queries handled",
            &[("proto", "tcp")],
            {
                let s = stats.clone();
                move || s.tcp_queries.load(Ordering::Relaxed)
            },
        );
        reg.observe_counter(
            "ldp_server_tcp_connections_total",
            "TCP connections accepted",
            &[],
            {
                let s = stats.clone();
                move || s.tcp_connections.load(Ordering::Relaxed)
            },
        );
        reg.observe_counter(
            "ldp_server_malformed_total",
            "Messages that failed to parse",
            &[],
            {
                let s = stats.clone();
                move || s.malformed.load(Ordering::Relaxed)
            },
        );
        reg.observe_counter(
            "ldp_server_response_bytes_total",
            "Response bytes produced",
            &[],
            {
                let s = stats.clone();
                move || s.response_bytes.load(Ordering::Relaxed)
            },
        );
        reg.observe_counter(
            "ldp_server_send_failures_total",
            "Response sends the kernel refused",
            &[],
            {
                let s = stats.clone();
                move || s.send_failures.load(Ordering::Relaxed)
            },
        );
        let cache_help = "UDP packet-cache events";
        for (event, read) in [
            ("hit", {
                let c = stats.pktcache.clone();
                Box::new(move || c.hits.load(Ordering::Relaxed))
                    as Box<dyn Fn() -> u64 + Send + Sync>
            }),
            ("miss", {
                let c = stats.pktcache.clone();
                Box::new(move || c.misses.load(Ordering::Relaxed))
                    as Box<dyn Fn() -> u64 + Send + Sync>
            }),
            ("eviction", {
                let c = stats.pktcache.clone();
                Box::new(move || c.evictions.load(Ordering::Relaxed))
                    as Box<dyn Fn() -> u64 + Send + Sync>
            }),
        ] {
            reg.observe_counter(
                "ldp_server_pktcache_total",
                cache_help,
                &[("event", event)],
                read,
            );
        }
        if let Some(chaos) = &self.chaos {
            for (fate, read) in [
                ("dropped", {
                    let c = chaos.clone();
                    Box::new(move || c.stats.dropped.load(Ordering::Relaxed))
                        as Box<dyn Fn() -> u64 + Send + Sync>
                }),
                ("duplicated", {
                    let c = chaos.clone();
                    Box::new(move || c.stats.duplicated.load(Ordering::Relaxed))
                        as Box<dyn Fn() -> u64 + Send + Sync>
                }),
                ("delayed", {
                    let c = chaos.clone();
                    Box::new(move || c.stats.delayed.load(Ordering::Relaxed))
                        as Box<dyn Fn() -> u64 + Send + Sync>
                }),
                ("refused_accept", {
                    let c = chaos.clone();
                    Box::new(move || c.stats.refused_accepts.load(Ordering::Relaxed))
                        as Box<dyn Fn() -> u64 + Send + Sync>
                }),
                ("reset", {
                    let c = chaos.clone();
                    Box::new(move || c.stats.resets.load(Ordering::Relaxed))
                        as Box<dyn Fn() -> u64 + Send + Sync>
                }),
            ] {
                reg.observe_counter(
                    "ldp_server_chaos_total",
                    "Injected chaos fates",
                    &[("fate", fate)],
                    read,
                );
            }
        }
    }
}

/// Datagrams per `recvmmsg` batch. Under load a replay client's sendmmsg
/// bursts queue dozens of queries between server wakeups; draining them in
/// one kernel entry (and answering with one `sendmmsg`) cuts the server's
/// syscall cost from two per query to two per batch.
const UDP_BATCH: usize = 64;

/// Routes each UDP response through the chaos policy's fate for it (or
/// delivers unconditionally when no policy is installed).
struct ReplyRouter {
    socket: Arc<UdpSocket>,
    stats: Arc<LiveStats>,
    chaos: Option<Arc<ChaosPolicy>>,
    started: Instant,
}

impl ReplyRouter {
    /// Queues one response onto `replies` (delayed fates are sent out of
    /// band). `query_wire` must be the id-zeroed query so retransmits of
    /// the same query share a sighting sequence.
    fn queue(
        &self,
        replies: &mut Vec<(Vec<u8>, SocketAddr)>,
        query_wire: &[u8],
        bytes: Vec<u8>,
        peer: SocketAddr,
    ) {
        let fate = match &self.chaos {
            Some(c) => c.response_fate(query_wire, self.started.elapsed()),
            None => ResponseFate::Deliver,
        };
        match fate {
            ResponseFate::Deliver => replies.push((bytes, peer)),
            ResponseFate::Drop => {}
            ResponseFate::Duplicate => {
                replies.push((bytes.clone(), peer));
                replies.push((bytes, peer));
            }
            ResponseFate::Delay(by) => {
                let socket = self.socket.clone();
                let stats = self.stats.clone();
                tokio::spawn(async move {
                    tokio::time::sleep(by).await;
                    if socket.send_to(&bytes, peer).await.is_err() {
                        stats.send_failures.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        }
    }
}

async fn serve_udp(
    socket: UdpSocket,
    engine: Arc<AuthEngine>,
    stats: Arc<LiveStats>,
    chaos: Option<Arc<ChaosPolicy>>,
) {
    let socket = Arc::new(socket);
    let router = ReplyRouter {
        socket: socket.clone(),
        stats: stats.clone(),
        chaos,
        started: Instant::now(),
    };
    let mut bufs: Vec<Vec<u8>> = (0..UDP_BATCH).map(|_| vec![0u8; 65_535]).collect();
    let mut replies: Vec<(Vec<u8>, SocketAddr)> = Vec::with_capacity(UDP_BATCH);
    // Answers are deterministic over static zones, so identical query
    // wires (ignoring the id) short-circuit the parse → lookup → encode
    // path entirely; see [`crate::pktcache`].
    let mut cache = PacketCache::with_stats(8_192, stats.pktcache.clone());
    loop {
        let Ok(received) = socket.recv_many(&mut bufs).await else {
            continue;
        };
        let handle_start = Instant::now();
        let queries_before = stats.udp_queries.load(Ordering::Relaxed);
        replies.clear();
        for (i, &(len, peer)) in received.iter().enumerate() {
            let buf = &mut bufs[i];
            if len >= 2 {
                // Zero the id in place: the cache key must match across
                // retransmits, and parsing doesn't need it (the response
                // id is patched from `id` either way).
                let id = u16::from_be_bytes([buf[0], buf[1]]);
                buf[0] = 0;
                buf[1] = 0;
                if let Some(bytes) = cache.get(peer.ip(), &buf[..len], id) {
                    stats.udp_queries.fetch_add(1, Ordering::Relaxed);
                    stats
                        .response_bytes
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    router.queue(&mut replies, &buf[..len], bytes, peer);
                    continue;
                }
                let Ok(query) = Message::from_bytes(&buf[..len]) else {
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                stats.udp_queries.fetch_add(1, Ordering::Relaxed);
                let resp = engine.respond(peer.ip(), &query, false);
                if let Ok(mut bytes) = resp.to_bytes() {
                    cache.put(peer.ip(), &buf[..len], &bytes);
                    bytes[0..2].copy_from_slice(&id.to_be_bytes());
                    stats
                        .response_bytes
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    router.queue(&mut replies, &buf[..len], bytes, peer);
                }
            } else {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let handled = stats.udp_queries.load(Ordering::Relaxed) - queries_before;
        stats.record_handle(handle_start.elapsed().as_micros() as u64, handled);
        let msgs: Vec<(&[u8], SocketAddr)> =
            replies.iter().map(|(b, p)| (b.as_slice(), *p)).collect();
        let sent = socket.send_many_to_each(&msgs).await.unwrap_or(0);
        for (bytes, peer) in &msgs[sent..] {
            if socket.send_to(bytes, *peer).await.is_err() {
                stats.send_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

async fn serve_tcp(
    listener: TcpListener,
    engine: Arc<AuthEngine>,
    stats: Arc<LiveStats>,
    chaos: Option<Arc<ChaosPolicy>>,
) {
    loop {
        let Ok((stream, peer)) = listener.accept().await else {
            continue;
        };
        // Injected accept refusal: close the connection before it counts
        // as served; the client sees an immediate EOF/reset.
        if chaos.as_ref().is_some_and(|c| c.refuse_accept()) {
            drop(stream);
            continue;
        }
        stats.tcp_connections.fetch_add(1, Ordering::Relaxed);
        let engine = engine.clone();
        let stats = stats.clone();
        let chaos = chaos.clone();
        tokio::spawn(async move {
            let _ = serve_tcp_conn(stream, peer, engine, stats, chaos).await;
        });
    }
}

async fn serve_tcp_conn(
    mut stream: tokio::net::TcpStream,
    peer: SocketAddr,
    engine: Arc<AuthEngine>,
    stats: Arc<LiveStats>,
    chaos: Option<Arc<ChaosPolicy>>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut served = 0u64;
    loop {
        // RFC 1035 §4.2.2 framing: 2-byte length, then the message.
        let mut lenbuf = [0u8; 2];
        match stream.read_exact(&mut lenbuf).await {
            Ok(_) => {}
            Err(_) => return Ok(()), // peer closed
        }
        let len = u16::from_be_bytes(lenbuf) as usize;
        let mut msg = vec![0u8; len];
        stream.read_exact(&mut msg).await?;
        let handle_start = Instant::now();
        let Ok(query) = Message::from_bytes(&msg) else {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        stats.tcp_queries.fetch_add(1, Ordering::Relaxed);
        let resp = engine.respond(peer.ip(), &query, true);
        let Ok(bytes) = resp.to_bytes() else { continue };
        stats
            .response_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let framed = ldp_wire::framing::frame_message(&bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "oversized response"))?;
        stats.record_handle(handle_start.elapsed().as_micros() as u64, 1);
        stream.write_all(&framed).await?;
        served += 1;
        // Injected mid-conversation reset: close after serving the
        // configured number of queries on this connection.
        if chaos.as_ref().is_some_and(|c| c.should_reset(served)) {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::{Name, RData, Record, RrType};
    use ldp_zone::{Zone, ZoneSet};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn engine() -> Arc<AuthEngine> {
        let mut z = Zone::with_fake_soa(n("example.com"));
        z.add(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.80".parse().unwrap()),
        ))
        .unwrap();
        z.add(Record::new(
            n("*.wild.example.com"),
            60,
            RData::A("192.0.2.99".parse().unwrap()),
        ))
        .unwrap();
        let mut set = ZoneSet::new();
        set.insert(z);
        Arc::new(AuthEngine::with_zones(Arc::new(set)))
    }

    #[tokio::test]
    async fn udp_roundtrip() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let q = Message::query(42, n("www.example.com"), RrType::A);
        client
            .send_to(&q.to_bytes().unwrap(), server.addr)
            .await
            .unwrap();
        let mut buf = vec![0u8; 4096];
        let (len, _) = client.recv_from(&mut buf).await.unwrap();
        let resp = Message::from_bytes(&buf[..len]).unwrap();
        assert_eq!(resp.header.id, 42);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(server.stats.udp_queries.load(Ordering::Relaxed), 1);
        let hist = server.stats.handle_hist();
        assert_eq!(hist.count(), 1, "one handle-time sample per UDP query");
    }

    #[tokio::test]
    async fn tcp_roundtrip_with_connection_reuse() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut stream = tokio::net::TcpStream::connect(server.addr).await.unwrap();
        for i in 0..3u16 {
            let q = Message::query(i, n(&format!("q{i}.wild.example.com")), RrType::A);
            let framed = ldp_wire::framing::frame_message(&q.to_bytes().unwrap()).unwrap();
            stream.write_all(&framed).await.unwrap();
            let mut lenbuf = [0u8; 2];
            stream.read_exact(&mut lenbuf).await.unwrap();
            let mut msg = vec![0u8; u16::from_be_bytes(lenbuf) as usize];
            stream.read_exact(&mut msg).await.unwrap();
            let resp = Message::from_bytes(&msg).unwrap();
            assert_eq!(resp.header.id, i);
            assert_eq!(resp.answers.len(), 1, "wildcard answers each name");
        }
        assert_eq!(server.stats.tcp_queries.load(Ordering::Relaxed), 3);
        assert_eq!(
            server.stats.tcp_connections.load(Ordering::Relaxed),
            1,
            "one connection reused for all three queries"
        );
        assert_eq!(
            server.stats.handle_hist().count(),
            3,
            "one handle-time sample per TCP query"
        );
    }

    #[tokio::test]
    async fn pktcache_counters_surface_through_stats_and_telemetry() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let reg = ldp_telemetry::Registry::new();
        server.register_telemetry(&reg);
        let client = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let mut buf = vec![0u8; 4096];
        // The same question under three ids: one miss fills the cache,
        // the retransmits hit.
        for id in 0..3u16 {
            let q = Message::query(id, n("www.example.com"), RrType::A);
            client
                .send_to(&q.to_bytes().unwrap(), server.addr)
                .await
                .unwrap();
            let (len, _) = client.recv_from(&mut buf).await.unwrap();
            assert_eq!(Message::from_bytes(&buf[..len]).unwrap().header.id, id);
        }
        assert_eq!(server.stats.pktcache.misses.load(Ordering::Relaxed), 1);
        assert_eq!(server.stats.pktcache.hits.load(Ordering::Relaxed), 2);
        let samples = reg.snapshot();
        let value = |event: &str| {
            samples
                .iter()
                .find(|s| {
                    s.name == "ldp_server_pktcache_total"
                        && s.labels.iter().any(|(_, v)| v == event)
                })
                .map(|s| s.value)
        };
        assert_eq!(value("hit"), Some(2));
        assert_eq!(value("miss"), Some(1));
        assert_eq!(value("eviction"), Some(0));
        // Query totals ride along on the same registry.
        assert!(samples
            .iter()
            .any(|s| s.name == "ldp_server_queries_total" && s.value == 3));
    }

    #[tokio::test]
    async fn malformed_udp_ignored() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        client.send_to(&[1, 2, 3], server.addr).await.unwrap();
        // Then a valid query still gets served.
        let q = Message::query(1, n("www.example.com"), RrType::A);
        client
            .send_to(&q.to_bytes().unwrap(), server.addr)
            .await
            .unwrap();
        let mut buf = vec![0u8; 4096];
        let (len, _) = client.recv_from(&mut buf).await.unwrap();
        assert!(Message::from_bytes(&buf[..len]).is_ok());
        assert_eq!(server.stats.malformed.load(Ordering::Relaxed), 1);
    }
}
