//! Recursive resolver core: iterative resolution down the DNS hierarchy.
//!
//! This is the component whose behaviour the hierarchy emulation must keep
//! honest: with a cold cache it must actually walk root → TLD → SLD, making
//! one round trip per level, because that query sequence is what the
//! paper's recursive-replay experiments reproduce (§2.4's worked example).
//!
//! The core is transport-agnostic: callers feed it client queries and
//! upstream responses, and it emits [`ResolverStep`]s (send-to-client /
//! ask-upstream). [`crate::sim::RecursiveNode`] adapts it to the simulator;
//! tests drive it directly.

use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr};

use ldp_wire::{Message, Name, RData, Rcode, Record, RrType};

use crate::cache::{Cache, CacheOutcome};

/// Resolution limits.
#[derive(Debug, Clone, Copy)]
pub struct ResolverConfig {
    /// Maximum referral depth per query (root→TLD→SLD→… hops).
    pub max_depth: usize,
    /// Maximum CNAME chase restarts per client query.
    pub max_cname_chase: usize,
    /// Negative-cache TTL when the upstream SOA doesn't say (seconds).
    pub default_negative_ttl: u32,
    /// Retransmit an unanswered iterative query after this long (µs).
    pub retry_timeout_us: u64,
    /// Give up (SERVFAIL to the client) after this many retransmissions
    /// of the same hop.
    pub max_retries: u32,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            max_depth: 16,
            max_cname_chase: 8,
            default_negative_ttl: 60,
            retry_timeout_us: 2_000_000,
            max_retries: 3,
        }
    }
}

/// Actions the resolver wants performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolverStep {
    /// Send a final response back to a client.
    Respond { to: SocketAddr, message: Message },
    /// Send an iterative query to an authoritative server.
    Ask { server: IpAddr, message: Message },
}

#[derive(Debug)]
struct Resolution {
    client: SocketAddr,
    client_id: u16,
    /// The name currently being resolved (changes on CNAME chase).
    qname: Name,
    qtype: RrType,
    /// The original question (for the response).
    original_qname: Name,
    dnssec_ok: bool,
    depth: usize,
    chase: usize,
    /// Answer records accumulated across CNAME chases.
    collected: Vec<Record>,
    /// The hop currently in flight, for retransmission: (server, query).
    last_ask: Option<(IpAddr, Message)>,
    /// When the in-flight hop was (re)sent, µs on the caller's clock.
    asked_at_us: u64,
    /// Retransmissions of the current hop so far.
    retries: u32,
}

/// The resolver state machine.
pub struct ResolverCore {
    /// Root server addresses (the hints file equivalent).
    hints: Vec<IpAddr>,
    pub cache: Cache,
    config: ResolverConfig,
    inflight: HashMap<u16, Resolution>,
    next_id: u16,
    /// Total client queries accepted.
    pub client_queries: u64,
    /// Total upstream (iterative) queries sent — the quantity that proves
    /// the hierarchy walk really happens.
    pub upstream_queries: u64,
    /// Retransmissions issued by [`ResolverCore::on_tick`].
    pub upstream_retries: u64,
}

impl ResolverCore {
    pub fn new(hints: Vec<IpAddr>, config: ResolverConfig) -> ResolverCore {
        ResolverCore {
            hints,
            cache: Cache::new(),
            config,
            inflight: HashMap::new(),
            next_id: 1,
            client_queries: 0,
            upstream_queries: 0,
            upstream_retries: 0,
        }
    }

    fn alloc_id(&mut self) -> u16 {
        // Skip ids currently in flight.
        loop {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1).max(1);
            if !self.inflight.contains_key(&id) {
                return id;
            }
        }
    }

    /// Handles a stub/client query.
    pub fn on_client_query(
        &mut self,
        from: SocketAddr,
        msg: &Message,
        now_us: u64,
    ) -> Vec<ResolverStep> {
        self.client_queries += 1;
        let Some(q) = msg.question() else {
            let mut resp = Message::response_for(msg);
            resp.header.rcode = Rcode::FormErr;
            return vec![ResolverStep::Respond {
                to: from,
                message: resp,
            }];
        };
        let (qname, qtype) = (q.qname.clone(), q.qtype);

        // Cache first.
        match self.cache.get(&qname, qtype, now_us) {
            CacheOutcome::Hit(records) => {
                let mut resp = Message::response_for(msg);
                resp.header.recursion_available = true;
                resp.answers = records;
                return vec![ResolverStep::Respond {
                    to: from,
                    message: resp,
                }];
            }
            CacheOutcome::NegativeHit => {
                let mut resp = Message::response_for(msg);
                resp.header.recursion_available = true;
                resp.header.rcode = Rcode::NxDomain;
                return vec![ResolverStep::Respond {
                    to: from,
                    message: resp,
                }];
            }
            CacheOutcome::Miss => {}
        }

        let Some(&root) = self.hints.first() else {
            let mut resp = Message::response_for(msg);
            resp.header.rcode = Rcode::ServFail;
            return vec![ResolverStep::Respond {
                to: from,
                message: resp,
            }];
        };
        let id = self.alloc_id();
        let message = iterative_query(id, qname.clone(), qtype, msg.dnssec_ok());
        let resolution = Resolution {
            client: from,
            client_id: msg.header.id,
            qname: qname.clone(),
            qtype,
            original_qname: qname.clone(),
            dnssec_ok: msg.dnssec_ok(),
            depth: 0,
            chase: 0,
            collected: Vec::new(),
            last_ask: Some((root, message.clone())),
            asked_at_us: now_us,
            retries: 0,
        };
        self.inflight.insert(id, resolution);
        self.upstream_queries += 1;
        vec![ResolverStep::Ask {
            server: root,
            message,
        }]
    }

    /// Drives retransmission: call periodically with the current time.
    /// Unanswered hops older than the retry timeout are re-sent; after
    /// `max_retries` the client gets SERVFAIL — without this, one lost
    /// packet would strand the resolution forever.
    pub fn on_tick(&mut self, now_us: u64) -> Vec<ResolverStep> {
        let mut steps = Vec::new();
        let mut give_up = Vec::new();
        for (&id, res) in self.inflight.iter_mut() {
            if now_us.saturating_sub(res.asked_at_us) < self.config.retry_timeout_us {
                continue;
            }
            if res.retries >= self.config.max_retries {
                give_up.push(id);
                continue;
            }
            if let Some((server, message)) = res.last_ask.clone() {
                res.retries += 1;
                res.asked_at_us = now_us;
                self.upstream_retries += 1;
                steps.push(ResolverStep::Ask { server, message });
            }
        }
        for id in give_up {
            if let Some(res) = self.inflight.remove(&id) {
                steps.push(self.finish(res, Rcode::ServFail));
            }
        }
        steps
    }

    /// Handles a response from an authoritative server.
    pub fn on_upstream_response(&mut self, msg: &Message, now_us: u64) -> Vec<ResolverStep> {
        let Some(mut res) = self.inflight.remove(&msg.header.id) else {
            return Vec::new(); // unsolicited or late
        };

        // NXDOMAIN: cache negative and answer.
        if msg.header.rcode == Rcode::NxDomain {
            let ttl = soa_minimum(msg).unwrap_or(self.config.default_negative_ttl);
            self.cache
                .put_negative(res.qname.clone(), res.qtype, ttl, now_us);
            return vec![self.finish(res, Rcode::NxDomain)];
        }
        if msg.header.rcode != Rcode::NoError {
            return vec![self.finish(res, msg.header.rcode)];
        }

        if !msg.answers.is_empty() {
            // Final (or CNAME) answer.
            res.collected.extend(msg.answers.iter().cloned());
            let has_final = msg
                .answers
                .iter()
                .any(|r| r.rtype == res.qtype || res.qtype == RrType::Any);
            if has_final || res.qtype == RrType::Cname {
                self.cache.put(
                    res.original_qname.clone(),
                    res.qtype,
                    res.collected.clone(),
                    now_us,
                );
                return vec![self.finish(res, Rcode::NoError)];
            }
            // CNAME chase: restart from the hints for the last target.
            let target = msg.answers.iter().rev().find_map(|r| match &r.rdata {
                RData::Cname(t) => Some(t.clone()),
                _ => None,
            });
            let Some(target) = target else {
                return vec![self.finish(res, Rcode::NoError)];
            };
            res.chase += 1;
            if res.chase > self.config.max_cname_chase {
                return vec![self.finish(res, Rcode::ServFail)];
            }
            res.qname = target.clone();
            res.depth = 0;
            let Some(&root) = self.hints.first() else {
                return vec![self.finish(res, Rcode::ServFail)];
            };
            let id = self.alloc_id();
            let message = iterative_query(id, target, res.qtype, res.dnssec_ok);
            res.last_ask = Some((root, message.clone()));
            res.asked_at_us = now_us;
            res.retries = 0;
            let ask = ResolverStep::Ask {
                server: root,
                message,
            };
            self.inflight.insert(id, res);
            self.upstream_queries += 1;
            return vec![ask];
        }

        // Referral: authority has NS records pointing down the tree.
        let ns_names: Vec<Name> = msg
            .authorities
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Ns(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        if ns_names.is_empty() {
            // NODATA: name exists, no records of this type.
            let ttl = soa_minimum(msg).unwrap_or(self.config.default_negative_ttl);
            self.cache
                .put_negative(res.qname.clone(), res.qtype, ttl, now_us);
            return vec![self.finish(res, Rcode::NoError)];
        }
        res.depth += 1;
        if res.depth > self.config.max_depth {
            return vec![self.finish(res, Rcode::ServFail)];
        }
        // Find a glue address for any of the NS names.
        let glue = msg.additionals.iter().find_map(|r| {
            if ns_names.contains(&r.name) {
                match &r.rdata {
                    RData::A(a) => Some(IpAddr::V4(*a)),
                    RData::Aaaa(a) => Some(IpAddr::V6(*a)),
                    _ => None,
                }
            } else {
                None
            }
        });
        let Some(next_server) = glue else {
            // Glueless delegation: the reconstructed zones always include
            // glue (§2.3 harvests NS host addresses), so treat gluelessness
            // as a broken hierarchy.
            return vec![self.finish(res, Rcode::ServFail)];
        };
        let id = self.alloc_id();
        let message = iterative_query(id, res.qname.clone(), res.qtype, res.dnssec_ok);
        res.last_ask = Some((next_server, message.clone()));
        res.asked_at_us = now_us;
        res.retries = 0;
        let ask = ResolverStep::Ask {
            server: next_server,
            message,
        };
        self.inflight.insert(id, res);
        self.upstream_queries += 1;
        vec![ask]
    }

    fn finish(&mut self, res: Resolution, rcode: Rcode) -> ResolverStep {
        let mut resp = Message::default();
        resp.header.id = res.client_id;
        resp.header.response = true;
        resp.header.recursion_desired = true;
        resp.header.recursion_available = true;
        resp.header.rcode = rcode;
        resp.questions = vec![ldp_wire::Question::new(
            res.original_qname.clone(),
            res.qtype,
        )];
        resp.answers = res.collected;
        ResolverStep::Respond {
            to: res.client,
            message: resp,
        }
    }

    /// Number of in-flight resolutions.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }
}

fn iterative_query(id: u16, qname: Name, qtype: RrType, dnssec_ok: bool) -> Message {
    let mut m = Message::query(id, qname, qtype);
    m.header.recursion_desired = false;
    if dnssec_ok {
        m.edns = Some(ldp_wire::Edns::with_do());
    }
    m
}

fn soa_minimum(msg: &Message) -> Option<u32> {
    msg.authorities.iter().find_map(|r| match &r.rdata {
        RData::Soa(soa) => Some(soa.minimum),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthEngine;
    use ldp_wire::Record;
    use ldp_zone::{ViewTable, Zone};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn sa(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    /// Drives the resolver against an in-process meta engine (no network).
    /// The engine is split-horizon keyed by the *asked server address*,
    /// exactly what the proxy pair synthesizes in the real deployment.
    fn drive(
        resolver: &mut ResolverCore,
        engine: &AuthEngine,
        client: SocketAddr,
        query: Message,
    ) -> (Message, usize) {
        let mut hops = 0;
        let mut steps = resolver.on_client_query(client, &query, 0);
        loop {
            assert!(hops < 64, "resolution did not converge");
            let step = steps.pop().expect("resolver must emit a step");
            match step {
                ResolverStep::Respond { to, message } => {
                    assert_eq!(to, client);
                    return (message, hops);
                }
                ResolverStep::Ask { server, message } => {
                    hops += 1;
                    let answer = engine.respond(server, &message, false);
                    steps = resolver.on_upstream_response(&answer, 0);
                }
            }
        }
    }

    fn hierarchy_engine() -> AuthEngine {
        let mut root = Zone::with_fake_soa(Name::root());
        root.add(Record::new(
            n("com"),
            172800,
            RData::Ns(n("a.gtld-servers.net")),
        ))
        .unwrap();
        root.add(Record::new(
            n("a.gtld-servers.net"),
            172800,
            RData::A("192.5.6.30".parse().unwrap()),
        ))
        .unwrap();

        let mut com = Zone::with_fake_soa(n("com"));
        com.add(Record::new(
            n("example.com"),
            172800,
            RData::Ns(n("ns1.example.com")),
        ))
        .unwrap();
        com.add(Record::new(
            n("ns1.example.com"),
            172800,
            RData::A("192.0.2.53".parse().unwrap()),
        ))
        .unwrap();

        let mut sld = Zone::with_fake_soa(n("example.com"));
        sld.add(Record::new(
            n("example.com"),
            3600,
            RData::Ns(n("ns1.example.com")),
        ))
        .unwrap();
        sld.add(Record::new(
            n("ns1.example.com"),
            3600,
            RData::A("192.0.2.53".parse().unwrap()),
        ))
        .unwrap();
        sld.add(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.80".parse().unwrap()),
        ))
        .unwrap();
        sld.add(Record::new(
            n("alias.example.com"),
            300,
            RData::Cname(n("www.example.com")),
        ))
        .unwrap();

        AuthEngine::with_views(ViewTable::from_nameserver_map(vec![
            (ip("198.41.0.4"), root),
            (ip("192.5.6.30"), com),
            (ip("192.0.2.53"), sld),
        ]))
    }

    fn resolver() -> ResolverCore {
        ResolverCore::new(vec![ip("198.41.0.4")], ResolverConfig::default())
    }

    #[test]
    fn cold_cache_walks_three_levels() {
        let mut r = resolver();
        let engine = hierarchy_engine();
        let q = Message::query(7, n("www.example.com"), RrType::A);
        let (resp, hops) = drive(&mut r, &engine, sa("10.9.9.9:5353"), q);
        assert_eq!(hops, 3, "root, com, example.com — one query each");
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert_eq!(resp.header.id, 7);
        assert!(resp.header.recursion_available);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(
            resp.answers[0].rdata,
            RData::A("192.0.2.80".parse().unwrap())
        );
        assert_eq!(r.upstream_queries, 3);
    }

    #[test]
    fn warm_cache_answers_locally() {
        let mut r = resolver();
        let engine = hierarchy_engine();
        let q = Message::query(7, n("www.example.com"), RrType::A);
        drive(&mut r, &engine, sa("10.9.9.9:5353"), q.clone());
        let (resp, hops) = drive(&mut r, &engine, sa("10.9.9.9:5353"), q);
        assert_eq!(hops, 0, "second query must be a cache hit");
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(r.upstream_queries, 3, "no new upstream traffic");
    }

    #[test]
    fn nxdomain_resolved_and_negatively_cached() {
        let mut r = resolver();
        let engine = hierarchy_engine();
        let q = Message::query(3, n("missing.example.com"), RrType::A);
        let (resp, hops) = drive(&mut r, &engine, sa("10.9.9.9:5353"), q.clone());
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert_eq!(hops, 3);
        let (resp2, hops2) = drive(&mut r, &engine, sa("10.9.9.9:5353"), q);
        assert_eq!(resp2.header.rcode, Rcode::NxDomain);
        assert_eq!(hops2, 0, "negative cache hit");
    }

    #[test]
    fn cname_answer_included() {
        let mut r = resolver();
        let engine = hierarchy_engine();
        let q = Message::query(4, n("alias.example.com"), RrType::A);
        let (resp, _) = drive(&mut r, &engine, sa("10.9.9.9:5353"), q);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        // The SLD chases the CNAME in-zone, so the answer has both records.
        assert_eq!(resp.answers.len(), 2);
        assert_eq!(resp.answers[0].rtype, RrType::Cname);
        assert_eq!(resp.answers[1].rtype, RrType::A);
    }

    #[test]
    fn unsolicited_response_ignored() {
        let mut r = resolver();
        let engine = hierarchy_engine();
        let stray = engine.respond(
            ip("198.41.0.4"),
            &Message::query(999, n("com"), RrType::Ns),
            false,
        );
        assert!(r.on_upstream_response(&stray, 0).is_empty());
    }

    #[test]
    fn formerr_for_empty_question() {
        let mut r = resolver();
        let steps = r.on_client_query(sa("10.0.0.1:1"), &Message::default(), 0);
        match &steps[0] {
            ResolverStep::Respond { message, .. } => {
                assert_eq!(message.header.rcode, Rcode::FormErr)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_hints_servfail() {
        let mut r = ResolverCore::new(vec![], ResolverConfig::default());
        let q = Message::query(1, n("x.test"), RrType::A);
        let steps = r.on_client_query(sa("10.0.0.1:1"), &q, 0);
        match &steps[0] {
            ResolverStep::Respond { message, .. } => {
                assert_eq!(message.header.rcode, Rcode::ServFail)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn depth_limit_enforced() {
        // A zone that refers forever to itself.
        let mut evil = Zone::with_fake_soa(Name::root());
        evil.add(Record::new(
            n("loop.test"),
            60,
            RData::Ns(n("ns.loop.test")),
        ))
        .unwrap();
        evil.add(Record::new(
            n("ns.loop.test"),
            60,
            RData::A("198.41.0.4".parse().unwrap()),
        ))
        .unwrap();
        let engine = AuthEngine::with_views(ViewTable::from_nameserver_map(vec![(
            ip("198.41.0.4"),
            evil,
        )]));
        let mut r = ResolverCore::new(
            vec![ip("198.41.0.4")],
            ResolverConfig {
                max_depth: 4,
                ..ResolverConfig::default()
            },
        );
        let q = Message::query(1, n("x.loop.test"), RrType::A);
        let (resp, hops) = drive(&mut r, &engine, sa("10.0.0.1:1"), q);
        assert_eq!(resp.header.rcode, Rcode::ServFail);
        assert!(hops <= 5);
    }

    #[test]
    fn lost_upstream_answer_retransmits_then_servfails() {
        let mut r = resolver();
        let q = Message::query(1, n("www.example.com"), RrType::A);
        let steps = r.on_client_query(sa("10.0.0.1:1"), &q, 0);
        let first = match &steps[0] {
            ResolverStep::Ask { server, message } => (*server, message.clone()),
            other => panic!("{other:?}"),
        };
        // Nothing comes back. Before the timeout: no action.
        assert!(r.on_tick(1_000_000).is_empty());
        // After the timeout: the same hop is re-asked, verbatim.
        let retry = r.on_tick(2_500_000);
        match &retry[..] {
            [ResolverStep::Ask { server, message }] => {
                assert_eq!(*server, first.0);
                assert_eq!(message, &first.1, "retransmission must be identical");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.upstream_retries, 1);
        // Exhaust the retries; the final tick SERVFAILs to the client.
        let mut t = 2_500_000u64;
        let mut finished = false;
        for _ in 0..5 {
            t += 2_500_000;
            for step in r.on_tick(t) {
                if let ResolverStep::Respond { message, .. } = step {
                    assert_eq!(message.header.rcode, Rcode::ServFail);
                    finished = true;
                }
            }
        }
        assert!(finished, "resolution must not be stranded forever");
        assert_eq!(r.inflight_count(), 0);
    }

    #[test]
    fn retry_state_resets_per_hop() {
        // A hop that *does* answer resets the retry budget for the next
        // hop: drive one referral normally, then let the second hop lose
        // packets and observe fresh retries.
        let mut r = resolver();
        let engine = hierarchy_engine();
        let q = Message::query(2, n("www.example.com"), RrType::A);
        let steps = r.on_client_query(sa("10.0.0.1:1"), &q, 0);
        let (server, message) = match &steps[0] {
            ResolverStep::Ask { server, message } => (*server, message.clone()),
            other => panic!("{other:?}"),
        };
        let answer = engine.respond(server, &message, false);
        let steps = r.on_upstream_response(&answer, 1_000_000);
        assert!(matches!(steps[0], ResolverStep::Ask { .. }));
        // The com hop times out once and retries with budget intact.
        let retry = r.on_tick(3_500_000);
        assert_eq!(retry.len(), 1);
        assert_eq!(r.upstream_retries, 1);
    }

    #[test]
    fn dnssec_ok_propagates_upstream() {
        let mut r = resolver();
        let mut q = Message::query(1, n("www.example.com"), RrType::A);
        q.edns = Some(ldp_wire::Edns::with_do());
        let steps = r.on_client_query(sa("10.0.0.1:1"), &q, 0);
        match &steps[0] {
            ResolverStep::Ask { message, .. } => {
                assert!(message.dnssec_ok());
                assert!(!message.header.recursion_desired);
            }
            other => panic!("{other:?}"),
        }
    }
}
