// R2 fixture: lossy narrowing casts in wire-style code.
pub fn encode_len(len: usize) -> [u8; 2] {
    (len as u16).to_be_bytes()
}

pub fn low_byte(v: u32) -> u8 {
    v as u8
}
