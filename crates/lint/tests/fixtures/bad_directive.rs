// Directive-hygiene fixture: malformed escape hatches are themselves errors.
pub fn f(v: Option<u8>) -> u8 {
    // ldp-lint: allow(r1)
    v.unwrap_or(0)
}

pub fn g(v: Option<u8>) -> u8 {
    // ldp-lint: allow(bogus-rule) -- reason present but rule unknown
    v.unwrap_or(0)
}
