// R4 fixture: the entry point is covered by a round-trip test in-file.
pub fn from_bytes(bytes: &[u8]) -> Result<u16, &'static str> {
    if bytes.len() < 2 {
        return Err("short");
    }
    Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
}

pub fn to_bytes(v: u16) -> [u8; 2] {
    v.to_be_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_from_bytes() {
        for v in [0u16, 1, 0xBEEF, u16::MAX] {
            assert_eq!(from_bytes(&to_bytes(v)).unwrap(), v);
        }
    }
}
