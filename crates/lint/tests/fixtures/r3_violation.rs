// R3 fixture: blocking calls inside async bodies.
pub async fn handler() {
    std::thread::sleep(std::time::Duration::from_millis(5));
    let _ = std::fs::read_to_string("/etc/hosts");
}

pub fn spawner() {
    let _fut = async move {
        let _ = std::net::TcpStream::connect("127.0.0.1:53");
    };
}
