// R1 fixture: a justified escape hatch suppresses the diagnostic.
pub fn hot(v: Option<u8>) -> u8 {
    // ldp-lint: allow(r1) -- invariant: caller checked is_some() one line up
    v.unwrap()
}

pub fn hot_trailing(v: Option<u8>) -> u8 {
    v.unwrap() // ldp-lint: allow(hot-path-panic) -- fixture exercises the alias form
}
