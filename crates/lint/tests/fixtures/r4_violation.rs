// R4 fixture: a public parser entry point with no round-trip test anywhere.
pub fn from_bytes(bytes: &[u8]) -> Result<u16, &'static str> {
    if bytes.len() < 2 {
        return Err("short");
    }
    Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
}
