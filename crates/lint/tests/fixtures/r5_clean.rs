// R5 fixture: handled send results (and non-send discards) are fine.
pub fn hot(sock: &std::net::UdpSocket, buf: &[u8]) -> std::io::Result<()> {
    let sent = sock.send(buf)?;
    if sock.send(buf).is_err() {
        return Ok(());
    }
    let _ = sent;
    let _ = buf.len();
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_discard_sends() {
        let (tx, _rx) = std::sync::mpsc::channel();
        let _ = tx.send(1u8);
    }
}
