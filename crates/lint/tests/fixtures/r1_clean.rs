// R1 fixture: hot-path code with typed errors, panics only under #[cfg(test)].
pub fn hot(v: Option<u8>) -> Result<u8, &'static str> {
    v.ok_or("missing")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(hot(Some(3)).unwrap(), 3);
    }
}
