// R5 fixture: a justified escape hatch suppresses the diagnostic.
pub fn hot(tx: &std::sync::mpsc::Sender<u8>) {
    let _ = tx.send(1); // ldp-lint: allow(r5) -- fire-and-forget wakeup, loss is benign
    // ldp-lint: allow(swallowed-send) -- fixture exercises the alias form
    let _ = tx.send(2);
}
