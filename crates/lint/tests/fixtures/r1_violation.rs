// R1 fixture: panicking calls in (what fixture mode treats as) hot-path code.
pub fn hot(v: Option<u8>) -> u8 {
    let a = v.unwrap();
    let b = v.expect("present");
    if a == 0 {
        panic!("zero");
    }
    if b == 1 {
        unreachable!();
    }
    a + b
}
