// R2 fixture: deliberate masked truncation with a reasoned allow.
pub fn opcode_bits(flags: u16) -> u8 {
    (flags >> 11 & 0xF) as u8 // ldp-lint: allow(r2) -- masked to 4 bits
}
