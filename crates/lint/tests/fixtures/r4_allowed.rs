// R4 fixture: entry point with no round-trip test but a reasoned allow
// (e.g. a parser for a one-way format with no encoder to round-trip against).
// ldp-lint: allow(r4) -- one-way format: nothing encodes this, only decoding exists
pub fn parse(input: &str) -> Result<u32, &'static str> {
    input.trim().parse().map_err(|_| "not a number")
}
