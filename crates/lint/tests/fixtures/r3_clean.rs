// R3 fixture: blocking calls are fine in sync fns; async bodies stay async.
pub fn sync_setup() {
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = std::fs::read_to_string("/etc/hosts");
}

pub async fn handler(tx: tokio::sync::mpsc::Sender<u8>) {
    if tx.send(1).await.is_err() {
        return;
    }
    tokio::time::sleep(std::time::Duration::from_millis(1)).await;
}
