// R2 fixture: checked conversions only; widening `as` to u64/usize is fine.
pub fn encode_len(len: usize) -> Result<[u8; 2], &'static str> {
    let len = u16::try_from(len).map_err(|_| "too long")?;
    Ok(len.to_be_bytes())
}

pub fn widen(v: u16) -> u64 {
    v as u64
}
