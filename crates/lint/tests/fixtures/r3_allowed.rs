// R3 fixture: suppressed blocking call (e.g. known-tiny config read at startup).
pub async fn boot() {
    // ldp-lint: allow(r3) -- one-time startup read before serving begins
    let _ = std::fs::read_to_string("conf.toml");
}
