// R5 fixture: discarded send results in (what fixture mode treats as)
// hot-path code.
pub fn hot(sock: &std::net::UdpSocket, tx: &std::sync::mpsc::Sender<u8>, buf: &[u8]) {
    let _ = sock.send(buf);
    let _ = sock.send_to(buf, "127.0.0.1:53");
    let _ = tx.send(1);
}
