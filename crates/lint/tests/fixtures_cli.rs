//! End-to-end tests: run the built `ldp-lint` binary against the fixture
//! files and assert on exit status and `file:line` diagnostics.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(files: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ldp-lint"));
    for f in files {
        cmd.arg(fixture(f));
    }
    cmd.output().expect("spawn ldp-lint")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[track_caller]
fn assert_clean(files: &[&str]) {
    let out = run(files);
    assert!(
        out.status.success(),
        "expected clean for {files:?}, got:\n{}",
        stdout(&out)
    );
    assert!(stdout(&out).contains("ldp-lint: clean"));
}

#[track_caller]
fn assert_violations(files: &[&str], rule: &str, want: &[u32]) {
    let out = run(files);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected violations for {files:?}, got:\n{}",
        stdout(&out)
    );
    let text = stdout(&out);
    for line in want {
        let file_line = format!("{}:{line}:", fixture(files[0]).display());
        assert!(
            text.lines()
                .any(|l| l.starts_with(&file_line) && l.contains(rule)),
            "missing `{file_line} ... {rule}` in:\n{text}"
        );
    }
    let reported = text
        .lines()
        .filter(|l| l.contains(&format!("[{rule}]")))
        .count();
    assert_eq!(
        reported,
        want.len(),
        "diagnostic count for {rule} in:\n{text}"
    );
}

#[test]
fn r1_fixtures() {
    assert_violations(&["r1_violation.rs"], "R1", &[3, 4, 6, 9]);
    assert_clean(&["r1_clean.rs"]);
    assert_clean(&["r1_allowed.rs"]);
}

#[test]
fn r2_fixtures() {
    assert_violations(&["r2_violation.rs"], "R2", &[3, 7]);
    assert_clean(&["r2_clean.rs"]);
    assert_clean(&["r2_allowed.rs"]);
}

#[test]
fn r3_fixtures() {
    assert_violations(&["r3_violation.rs"], "R3", &[3, 4, 9]);
    assert_clean(&["r3_clean.rs"]);
    assert_clean(&["r3_allowed.rs"]);
}

#[test]
fn r4_fixtures() {
    assert_violations(&["r4_violation.rs"], "R4", &[2]);
    assert_clean(&["r4_clean.rs"]);
    assert_clean(&["r4_allowed.rs"]);
    // An uncovered entry point in one file is satisfied by a round-trip test
    // in another file of the same set.
    assert_clean(&["r4_violation.rs", "r4_clean.rs"]);
}

#[test]
fn r5_fixtures() {
    assert_violations(&["r5_violation.rs"], "R5", &[4, 5, 6]);
    assert_clean(&["r5_clean.rs"]);
    assert_clean(&["r5_allowed.rs"]);
}

#[test]
fn malformed_directives_are_diagnosed() {
    let out = run(&["bad_directive.rs"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(
        text.contains(":3:"),
        "missing line 3 (no reason) in:\n{text}"
    );
    assert!(
        text.contains(":8:"),
        "missing line 8 (unknown rule) in:\n{text}"
    );
}

#[test]
fn workspace_mode_is_clean_on_this_repo() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_ldp-lint"))
        .arg("--workspace")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn ldp-lint");
    assert!(
        out.status.success(),
        "workspace must lint clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_ldp-lint"))
        .output()
        .expect("spawn ldp-lint");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_ldp-lint"))
        .arg("--unknown-flag")
        .output()
        .expect("spawn ldp-lint");
    assert_eq!(out.status.code(), Some(2));
}
