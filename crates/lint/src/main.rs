//! CLI for `ldp-lint`.
//!
//! ```text
//! ldp-lint --workspace [--root <dir>]   # lint the whole workspace
//! ldp-lint <file.rs>...                 # lint explicit files, all rules on
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: ldp-lint --workspace [--root <dir>]\n       ldp-lint <file.rs>..."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(&format!("unknown flag `{arg}`")),
            _ => files.push(PathBuf::from(arg)),
        }
    }

    let result = if workspace {
        if !files.is_empty() {
            return usage("--workspace and explicit files are mutually exclusive");
        }
        let root = root.unwrap_or_else(|| PathBuf::from("."));
        if !root.join("crates").is_dir() {
            eprintln!(
                "ldp-lint: `{}` does not look like the workspace root (no crates/); \
                 run from the repo root or pass --root",
                root.display()
            );
            return ExitCode::from(2);
        }
        ldp_lint::lint_workspace(&root)
    } else if files.is_empty() {
        return usage("pass --workspace or at least one file");
    } else {
        ldp_lint::lint_files(&files)
    };

    match result {
        Ok(diags) if diags.is_empty() => {
            println!("ldp-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("ldp-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ldp-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!(
        "ldp-lint: {why}\nusage: ldp-lint --workspace [--root <dir>] | ldp-lint <file.rs>..."
    );
    ExitCode::from(2)
}
