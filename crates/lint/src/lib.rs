//! `ldp-lint`: a dependency-free source-level analyzer enforcing the
//! workspace's safety invariants as machine-checkable rules.
//!
//! | rule | alias              | what it forbids                                            |
//! |------|--------------------|------------------------------------------------------------|
//! | R1   | `hot-path-panic`   | `unwrap`/`expect`/`panic!`/`unreachable!` in hot paths     |
//! | R2   | `lossy-cast`       | `as u8`/`as u16`/`as u32` in wire-format code              |
//! | R3   | `blocking-async`   | `thread::sleep` / blocking I/O inside async bodies         |
//! | R4   | `parser-roundtrip` | public parser entry points without a round-trip test       |
//! | R5   | `swallowed-send`   | `let _ = …send…(…)` discarding I/O results in hot paths    |
//!
//! Escape hatch (requires a reason):
//! `// ldp-lint: allow(r1) -- justification`, either trailing on the
//! offending line or on its own line directly above it.
//!
//! Why source-level rather than a rustc driver: the rules are lexical
//! invariants about *this* codebase (designated hot-path files, a naming
//! convention for tests), the linter must build offline with zero
//! dependencies, and token-stream analysis with comment/string stripping
//! is already exact enough to have no false positives here.

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod lexer;
pub mod regions;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{
    check_r4, entry_points, roundtrip_tests, Diagnostic, FileAnalysis, FileScope, Rule,
};

/// Hot-path modules for R1/R5: every file in these crates' `src` trees...
const HOT_PATH_CRATES: &[&str] = &["wire", "server", "proxy"];
/// ...plus these individual files.
const HOT_PATH_FILES: &[&str] = &[
    "crates/replay/src/engine.rs",
    "crates/replay/src/retry.rs",
    "crates/netsim/src/tcp.rs",
    // The span ring records a stamp per query stage inside the send path;
    // a panic or allocation spike here would distort the very latencies
    // it exists to measure.
    "crates/obs/src/span.rs",
    // Telemetry counter/gauge handles are bumped on every send/receive;
    // the registry's hot-path methods must stay panic-free and lock-free.
    "crates/telemetry/src/registry.rs",
];

/// Crates whose parser entry points R4 audits.
const R4_CRATES: &[&str] = &["wire", "zone"];

/// Files outside `crates/wire` that also emit wire-format fields — the
/// trace on-disk writers — so R2's no-lossy-cast rule covers them too.
const R2_WIRE_FILES: &[&str] = &[
    "crates/trace/src/capture.rs",
    "crates/trace/src/pcap.rs",
    "crates/trace/src/stream.rs",
];

/// Derives the rule scope for one file from its workspace-relative path.
pub fn workspace_scope(rel: &Path) -> FileScope {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let in_crate_src = |krate: &str| rel_str.starts_with(&format!("crates/{krate}/src/"));
    FileScope {
        hot_path: HOT_PATH_CRATES.iter().any(|c| in_crate_src(c))
            || HOT_PATH_FILES.iter().any(|f| rel_str == *f),
        wire: in_crate_src("wire") || R2_WIRE_FILES.iter().any(|f| rel_str == *f),
        // All first-party async code must not block, wherever it lives.
        async_blocking: true,
    }
}

/// Lints the whole workspace rooted at `root`. Scans `crates/*/{src,tests}`
/// and the root package's `src`, `tests`, and `examples`; skips `vendor`
/// and `target` entirely.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    files.sort();

    let mut diags = Vec::new();
    // Per-crate R4 state, keyed by crate name.
    type R4State = (Vec<rules::EntryPoint>, Vec<(PathBuf, String)>);
    let mut r4: std::collections::BTreeMap<String, R4State> = Default::default();
    let mut allows: Vec<FileAnalysis> = Vec::new();

    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let src = std::fs::read_to_string(&path)?;
        let analysis = FileAnalysis::new(rel.clone(), src.as_str());
        let rel_str = rel.to_string_lossy().replace('\\', "/");

        // R1–R3 only audit library/binary sources, not test or bench code
        // (tests are free to unwrap).
        let is_test_file = rel_str.contains("/tests/") || rel_str.starts_with("tests/");
        if !is_test_file {
            diags.extend(analysis.check(workspace_scope(&rel)));
        } else {
            // Directive hygiene still applies everywhere.
            diags.extend(analysis.check(FileScope::default()));
        }

        // R4 bookkeeping for the audited crates.
        if let Some(krate) = R4_CRATES
            .iter()
            .find(|c| rel_str.starts_with(&format!("crates/{c}/")))
        {
            let slot = r4.entry((*krate).to_string()).or_default();
            if rel_str.contains("/src/") && !is_test_file {
                slot.0.extend(entry_points(&analysis));
            }
            slot.1.extend(roundtrip_tests(&analysis));
            allows.push(analysis);
        }
    }

    for (entries, tests) in r4.values() {
        diags.extend(check_r4(entries, tests, |file, line| {
            allows.iter().any(|a| {
                a.path == file
                    && a.lexed
                        .allows
                        .get(&line)
                        .is_some_and(|r| r.contains(&Rule::R4))
            })
        }));
    }

    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diags)
}

/// Lints an explicit file list with every rule enabled (fixture mode).
/// R4 treats the given set as one crate: entry points anywhere in the set
/// must be covered by round-trip tests anywhere in the set.
pub fn lint_files(paths: &[PathBuf]) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut analyses = Vec::new();
    for path in paths {
        let src = std::fs::read_to_string(path)?;
        analyses.push(FileAnalysis::new(path.clone(), src.as_str()));
    }
    let mut entries = Vec::new();
    let mut tests = Vec::new();
    for analysis in &analyses {
        diags.extend(analysis.check(FileScope::all()));
        entries.extend(entry_points(analysis));
        tests.extend(roundtrip_tests(analysis));
    }
    diags.extend(check_r4(&entries, &tests, |file, line| {
        analyses.iter().any(|a| {
            a.path == file
                && a.lexed
                    .allows
                    .get(&line)
                    .is_some_and(|r| r.contains(&Rule::R4))
        })
    }));
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diags)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            // `fixtures` directories hold linter test data with deliberate
            // violations — they are inputs for `lint_files`, not source.
            if name == "target" || name == "vendor" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_is_path_derived() {
        let s = workspace_scope(Path::new("crates/wire/src/message.rs"));
        assert!(s.hot_path && s.wire);
        let s = workspace_scope(Path::new("crates/replay/src/engine.rs"));
        assert!(s.hot_path && !s.wire);
        let s = workspace_scope(Path::new("crates/replay/src/retry.rs"));
        assert!(s.hot_path, "the retry layer rides the engine hot path");
        let s = workspace_scope(Path::new("crates/replay/src/plan.rs"));
        assert!(!s.hot_path);
        let s = workspace_scope(Path::new("crates/netsim/src/tcp.rs"));
        assert!(s.hot_path);
        let s = workspace_scope(Path::new("crates/obs/src/span.rs"));
        assert!(s.hot_path, "span stamping rides the engine hot path");
        let s = workspace_scope(Path::new("crates/obs/src/manifest.rs"));
        assert!(!s.hot_path, "manifest emission is post-run, not hot");
        let s = workspace_scope(Path::new("crates/telemetry/src/registry.rs"));
        assert!(s.hot_path, "counter handles are bumped per send/receive");
        let s = workspace_scope(Path::new("crates/telemetry/src/http.rs"));
        assert!(!s.hot_path, "scrape serving is off the send path");
        let s = workspace_scope(Path::new("crates/metrics/src/report.rs"));
        assert!(!s.hot_path && !s.wire && s.async_blocking);
        // The trace on-disk writers are wire scope without being hot path.
        for f in ["capture.rs", "pcap.rs", "stream.rs"] {
            let s = workspace_scope(&Path::new("crates/trace/src").join(f));
            assert!(s.wire && !s.hot_path, "{f} should be R2 wire scope");
        }
        let s = workspace_scope(Path::new("crates/trace/src/text.rs"));
        assert!(!s.wire, "text format is not packed binary wire scope");
    }
}
