//! Region analysis over the token stream: which line spans belong to
//! `#[cfg(test)]` / `#[test]` items, and which belong to `async` bodies.
//! Both are computed by brace matching — no full parse needed, because the
//! rules only ask "is this line inside such a region".

use crate::lexer::Token;

/// Inclusive line spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

pub fn in_any(spans: &[Span], line: u32) -> bool {
    spans.iter().any(|s| s.contains(line))
}

/// Line spans of test-only code: items under `#[cfg(test)]` (or any
/// `cfg(...)` whose arguments mention `test`) and `#[test]` functions.
pub fn test_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = match matching(tokens, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            if attr_is_test(&tokens[i + 2..attr_end]) {
                if let Some(span) = item_body_span(tokens, attr_end + 1) {
                    spans.push(span);
                }
            }
            i = attr_end + 1;
        } else {
            i += 1;
        }
    }
    merge(spans)
}

/// Line spans of `async fn` bodies and `async`/`async move` blocks.
pub fn async_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("async") {
            let next = tokens.get(i + 1);
            if next.is_some_and(|t| t.is_ident("fn")) {
                if let Some(span) = item_body_span(tokens, i + 2) {
                    spans.push(span);
                }
            } else if next.is_some_and(|t| t.is_ident("move") || t.is_punct('{')) {
                let open = if next.is_some_and(|t| t.is_punct('{')) {
                    i + 1
                } else {
                    i + 2
                };
                if tokens.get(open).is_some_and(|t| t.is_punct('{')) {
                    if let Some(close) = matching(tokens, open, '{', '}') {
                        spans.push(Span {
                            start: tokens[open].line,
                            end: tokens[close].line,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    merge(spans)
}

/// Does an attribute's inner token list mark test code? Covers `test`,
/// `cfg(test)`, `cfg(all(test, ...))`, `tokio::test(...)`. A `not(...)`
/// anywhere means the item is compiled *outside* tests (`cfg(not(test))`),
/// so it stays subject to the rules.
fn attr_is_test(inner: &[Token]) -> bool {
    inner.iter().any(|t| t.is_ident("test")) && !inner.iter().any(|t| t.is_ident("not"))
}

/// From an item's first token (after its attribute), the line span of its
/// brace-delimited body; `None` for braceless items (`#[cfg(test)] use ...`).
fn item_body_span(tokens: &[Token], mut i: usize) -> Option<Span> {
    let start_line = tokens.get(i)?.line;
    // Scan to the body `{`, stopping at `;` (no body). Skip stacked
    // attributes and any nested delimiters in the signature (generics use
    // `<`>` which we don't track; parens and brackets we do).
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            let close = matching(tokens, i, '{', '}')?;
            return Some(Span {
                start: start_line,
                end: tokens[close].line,
            });
        }
        if t.is_punct(';') {
            return None;
        }
        if t.is_punct('(') {
            i = matching(tokens, i, '(', ')')? + 1;
            continue;
        }
        if t.is_punct('[') {
            i = matching(tokens, i, '[', ']')? + 1;
            continue;
        }
        i += 1;
    }
    None
}

/// Index of the delimiter matching `tokens[open]`.
fn matching(tokens: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    debug_assert!(tokens[open].is_punct(open_c));
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn merge(mut spans: Vec<Span>) -> Vec<Span> {
    spans.sort_by_key(|s| (s.start, s.end));
    let mut out: Vec<Span> = Vec::with_capacity(spans.len());
    for s in spans {
        match out.last_mut() {
            Some(last) if s.start <= last.end => last.end = last.end.max(s.end),
            _ => out.push(s),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_spanned() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn also_real() {}
";
        let spans = test_spans(&lex(src).tokens);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].contains(3) && spans[0].contains(5));
        assert!(!spans[0].contains(1) && !spans[0].contains(6));
    }

    #[test]
    fn test_attr_fn_is_spanned() {
        let src = "\
#[test]
fn check() {
    body();
}
fn not_test() {}
";
        let spans = test_spans(&lex(src).tokens);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].contains(3));
        assert!(!spans[0].contains(5));
    }

    #[test]
    fn cfg_test_on_braceless_item_is_skipped() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn real() {}\n";
        let spans = test_spans(&lex(src).tokens);
        assert!(spans.is_empty());
    }

    #[test]
    fn async_fn_and_block_spans() {
        let src = "\
async fn handler() {
    work().await;
}
fn sync_fn() {
    let fut = async move {
        more().await;
    };
}
";
        let spans = async_spans(&lex(src).tokens);
        assert_eq!(spans.len(), 2);
        assert!(in_any(&spans, 2));
        assert!(in_any(&spans, 6));
        assert!(!in_any(&spans, 4));
    }

    #[test]
    fn tokio_test_attr_counts_as_test() {
        let src = "#[tokio::test(flavor = \"multi_thread\")]\nasync fn t() {\n x();\n}\n";
        let spans = test_spans(&lex(src).tokens);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].contains(3));
    }
}
