//! A minimal Rust token scanner: enough lexical fidelity to search for
//! patterns (`.unwrap()`, `as u16`, `thread::sleep`) without false matches
//! inside comments, strings, char literals, or raw strings — the failure
//! mode that makes grep-based audits untrustworthy.
//!
//! Also extracts `// ldp-lint: allow(<rules>) -- <reason>` escape-hatch
//! directives, attaching each to the source line it suppresses.

use std::collections::{HashMap, HashSet};

use crate::rules::Rule;

/// One significant token; literals are opaque (their text never matters to
/// any rule, only that they do not leak identifier-shaped fragments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    Ident(String),
    Punct(char),
    Literal,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, text: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == text)
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokenKind::Punct(p) if *p == c)
    }

    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(i) => Some(i),
            _ => None,
        }
    }
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// line number → rules suppressed on that line.
    pub allows: HashMap<u32, HashSet<Rule>>,
    /// Malformed or unknown-rule directives: (line, what is wrong).
    pub bad_directives: Vec<(u32, String)>,
}

pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    // Directives seen on comment-only lines; they apply to the next line
    // that produces a token. (line, rules)
    let mut pending: Vec<(u32, HashSet<Rule>)> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_token = false;

    macro_rules! push_tok {
        ($kind:expr) => {{
            // A pending standalone directive covers the first line that
            // carries real tokens after it.
            if !line_has_token && !pending.is_empty() {
                for (_, rules) in pending.drain(..) {
                    out.allows.entry(line).or_default().extend(rules);
                }
            }
            line_has_token = true;
            out.tokens.push(Token { kind: $kind, line });
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                line_has_token = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                let text = &src[start..end];
                if let Some(directive) = text.trim_start().strip_prefix("ldp-lint:") {
                    match parse_directive(directive) {
                        Ok(rules) => {
                            if line_has_token {
                                out.allows.entry(line).or_default().extend(rules);
                            } else {
                                pending.push((line, rules));
                            }
                        }
                        Err(why) => out.bad_directives.push((line, why)),
                    }
                }
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, counting newlines.
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_has_token = false;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line, &mut line_has_token);
                push_tok!(TokenKind::Literal);
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = bytes.get(i + 1).copied();
                if next == Some(b'\\') {
                    // Escaped char literal.
                    i += 2; // past '\
                    if i < bytes.len() {
                        i += 1; // escaped char (covers \n \t \' \\ \0; \x.. and
                                // \u{..} tails are consumed by the quote scan)
                    }
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    push_tok!(TokenKind::Literal);
                } else if next.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                    // Find where the ident run ends; a closing quote right
                    // after a single char means char literal.
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if j == i + 2 && bytes.get(j) == Some(&b'\'') {
                        i = j + 1;
                        push_tok!(TokenKind::Literal);
                    } else {
                        // Lifetime: skip it entirely (no rule cares).
                        i = j;
                    }
                } else {
                    // Bare quote (e.g. in macro), treat as punct.
                    push_tok!(TokenKind::Punct('\''));
                    i += 1;
                }
            }
            b'r' | b'b' if is_literal_prefix(bytes, i) => {
                i = skip_prefixed_literal(bytes, i, &mut line, &mut line_has_token);
                push_tok!(TokenKind::Literal);
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push_tok!(TokenKind::Ident(src[start..i].to_string()));
            }
            _ if b.is_ascii_digit() => {
                // Number literal; a single dot continues it only when
                // followed by a digit (so `0..10` leaves the range dots).
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    let continues = c.is_ascii_alphanumeric()
                        || c == b'_'
                        || (c == b'.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()));
                    if continues {
                        i += 1;
                    } else {
                        break;
                    }
                }
                push_tok!(TokenKind::Literal);
            }
            _ => {
                push_tok!(TokenKind::Punct(b as char));
                i += 1;
            }
        }
    }
    // Trailing standalone directives suppress nothing; report them so a
    // typo at end-of-file is not silently ignored.
    for (dline, _) in pending {
        out.bad_directives.push((
            dline,
            "allow directive does not precede any code".to_string(),
        ));
    }
    out
}

/// Parses the text after `ldp-lint:`; expects `allow(<r1>[, <r2>...]) -- <reason>`.
fn parse_directive(text: &str) -> Result<HashSet<Rule>, String> {
    let text = text.trim();
    let inner = text
        .strip_prefix("allow(")
        .ok_or_else(|| format!("expected `allow(<rule>) -- <reason>`, got `{text}`"))?;
    let close = inner
        .find(')')
        .ok_or_else(|| "unclosed `allow(` directive".to_string())?;
    let (list, rest) = inner.split_at(close);
    let rest = rest[1..].trim();
    let reason = rest.strip_prefix("--").map(str::trim).unwrap_or_default();
    if reason.is_empty() {
        return Err("allow directive needs a justification: `-- <reason>`".to_string());
    }
    let mut rules = HashSet::new();
    for name in list.split(',') {
        let name = name.trim();
        let rule = Rule::from_name(name)
            .ok_or_else(|| format!("unknown rule `{name}` in allow directive"))?;
        rules.insert(rule);
    }
    if rules.is_empty() {
        return Err("allow directive lists no rules".to_string());
    }
    Ok(rules)
}

/// Is `bytes[i..]` the start of a raw/byte string or byte char literal
/// (`r"`, `r#"`, `b"`, `br"`, `b'`, `br#"` ...)?
fn is_literal_prefix(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    let after_prefix = |n: usize| -> Option<u8> { rest.get(n).copied() };
    match rest[0] {
        b'r' => matches!(after_prefix(1), Some(b'"') | Some(b'#')),
        b'b' => match after_prefix(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(after_prefix(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skips a `"`-delimited string starting at `bytes[i] == b'"'`; returns the
/// index just past the closing quote.
fn skip_string(bytes: &[u8], i: usize, line: &mut u32, line_has_token: &mut bool) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                *line_has_token = false;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skips `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, or `b'x'`.
fn skip_prefixed_literal(
    bytes: &[u8],
    i: usize,
    line: &mut u32,
    line_has_token: &mut bool,
) -> usize {
    let mut j = i;
    let mut raw = false;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        raw |= bytes[j] == b'r';
        j += 1;
    }
    if !raw {
        return match bytes.get(j) {
            Some(b'"') => skip_string(bytes, j, line, line_has_token),
            Some(b'\'') => {
                // Byte char literal b'x' or b'\n'.
                let mut k = j + 1;
                if bytes.get(k) == Some(&b'\\') {
                    k += 1;
                }
                k += 1;
                while k < bytes.len() && bytes[k] != b'\'' {
                    k += 1;
                }
                k + 1
            }
            _ => j + 1,
        };
    }
    // Raw string: count hashes, then scan for `"` + same number of hashes.
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return j; // not actually a raw string; resync
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            *line += 1;
            *line_has_token = false;
            j += 1;
            continue;
        }
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r##"
            // not.unwrap() here
            /* nor.unwrap() /* nested */ here */
            let s = "x.unwrap()";
            let r = r#"y.unwrap()"#;
            let c = '\'';
            real.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|i| *i == "unwrap").count(),
            1,
            "only the real call should survive: {ids:?}"
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'q';";
        let lexed = lex(src);
        // The char literal is one Literal token; lifetimes vanish.
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 1);
    }

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let src = "let x = y.unwrap(); // ldp-lint: allow(r1) -- test shim\n";
        let lexed = lex(src);
        assert!(lexed.allows.get(&1).is_some_and(|r| r.contains(&Rule::R1)));
        assert!(lexed.bad_directives.is_empty());
    }

    #[test]
    fn standalone_allow_applies_to_next_line() {
        let src = "\n// ldp-lint: allow(r2, r3) -- fixture\nlet x = 1;\n";
        let lexed = lex(src);
        let rules = lexed.allows.get(&3).expect("next code line covered");
        assert!(rules.contains(&Rule::R2) && rules.contains(&Rule::R3));
    }

    #[test]
    fn directive_without_reason_is_rejected() {
        let lexed = lex("// ldp-lint: allow(r1)\nlet x = 1;\n");
        assert_eq!(lexed.bad_directives.len(), 1);
        assert!(lexed.allows.is_empty());
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let lexed = lex("// ldp-lint: allow(r9) -- what\nlet x = 1;\n");
        assert_eq!(lexed.bad_directives.len(), 1);
    }

    #[test]
    fn number_ranges_keep_their_dots() {
        let lexed = lex("let r = 0..10; let f = 1.5;");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "range dots survive, float dot is absorbed");
    }
}
