//! The five project rules. Each check walks the token stream of one file;
//! R4 additionally correlates parser entry points with round-trip tests
//! across a whole crate.

use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{Lexed, Token};
use crate::regions::{in_any, Span};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// No `unwrap`/`expect`/`panic!`/`unreachable!` in hot-path modules.
    R1,
    /// No lossy `as u8`/`as u16`/`as u32` casts in wire-format code
    /// (`crates/wire` plus the trace on-disk writers).
    R2,
    /// No `thread::sleep` or blocking I/O inside async code.
    R3,
    /// Public parser entry points need a round-trip test (name convention).
    R4,
    /// No `let _ = ...send...(...)` in hot-path modules: a discarded send
    /// result silently swallows an I/O failure the replay must account for.
    R5,
    /// Meta: a malformed or unknown `ldp-lint:` directive.
    Directive,
}

impl Rule {
    pub fn from_name(name: &str) -> Option<Rule> {
        match name.to_ascii_lowercase().as_str() {
            "r1" | "hot-path-panic" => Some(Rule::R1),
            "r2" | "lossy-cast" => Some(Rule::R2),
            "r3" | "blocking-async" => Some(Rule::R3),
            "r4" | "parser-roundtrip" => Some(Rule::R4),
            "r5" | "swallowed-send" => Some(Rule::R5),
            _ => None,
        }
    }

    pub fn id(&self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::Directive => "directive",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: PathBuf,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rules apply to one file; workspace mode derives this from the
/// path, fixture mode turns everything on.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileScope {
    /// R1: the file is a designated hot-path module.
    pub hot_path: bool,
    /// R2: the file emits wire-format bytes (`crates/wire` or a trace
    /// on-disk writer).
    pub wire: bool,
    /// R3: async bodies in this file must not block.
    pub async_blocking: bool,
}

impl FileScope {
    pub fn all() -> FileScope {
        FileScope {
            hot_path: true,
            wire: true,
            async_blocking: true,
        }
    }
}

/// One file, lexed and region-annotated, ready for rule checks.
pub struct FileAnalysis {
    pub path: PathBuf,
    pub lexed: Lexed,
    pub test_spans: Vec<Span>,
    pub async_spans: Vec<Span>,
}

impl FileAnalysis {
    pub fn new(path: PathBuf, src: &str) -> FileAnalysis {
        let lexed = crate::lexer::lex(src);
        let test_spans = crate::regions::test_spans(&lexed.tokens);
        let async_spans = crate::regions::async_spans(&lexed.tokens);
        FileAnalysis {
            path,
            lexed,
            test_spans,
            async_spans,
        }
    }

    fn allowed(&self, line: u32, rule: Rule) -> bool {
        self.lexed
            .allows
            .get(&line)
            .is_some_and(|rules| rules.contains(&rule))
    }

    fn diag(&self, diags: &mut Vec<Diagnostic>, line: u32, rule: Rule, message: String) {
        if rule != Rule::Directive && self.allowed(line, rule) {
            return;
        }
        diags.push(Diagnostic {
            file: self.path.clone(),
            line,
            rule,
            message,
        });
    }

    /// Runs the per-file rules (R1–R3 plus directive hygiene).
    pub fn check(&self, scope: FileScope) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for &(line, ref why) in &self.lexed.bad_directives {
            self.diag(&mut diags, line, Rule::Directive, why.clone());
        }
        if scope.hot_path {
            self.check_r1(&mut diags);
            self.check_r5(&mut diags);
        }
        if scope.wire {
            self.check_r2(&mut diags);
        }
        if scope.async_blocking {
            self.check_r3(&mut diags);
        }
        diags
    }

    /// R1: `.unwrap()` / `.expect(` / `panic!` / `unreachable!` outside
    /// `#[cfg(test)]`.
    fn check_r1(&self, diags: &mut Vec<Diagnostic>) {
        let toks = &self.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if in_any(&self.test_spans, t.line) {
                continue;
            }
            let Some(name) = t.ident() else { continue };
            let hit = match name {
                "unwrap" | "expect" => {
                    // Require `.name(` so type names and our own rule
                    // definitions don't match.
                    i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                }
                "panic" | "unreachable" => toks.get(i + 1).is_some_and(|n| n.is_punct('!')),
                _ => false,
            };
            if hit {
                let what = match name {
                    "unwrap" | "expect" => format!(".{name}()"),
                    _ => format!("{name}!"),
                };
                self.diag(
                    diags,
                    t.line,
                    Rule::R1,
                    format!("`{what}` in hot-path code; return a typed error instead"),
                );
            }
        }
    }

    /// R2: `as u8`/`as u16`/`as u32` outside `#[cfg(test)]`.
    fn check_r2(&self, diags: &mut Vec<Diagnostic>) {
        let toks = &self.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("as") || in_any(&self.test_spans, t.line) {
                continue;
            }
            let Some(target) = toks.get(i + 1).and_then(Token::ident) else {
                continue;
            };
            if matches!(target, "u8" | "u16" | "u32") {
                self.diag(
                    diags,
                    t.line,
                    Rule::R2,
                    format!(
                        "lossy `as {target}` cast in wire code; use `{target}::try_from` \
                         (or annotate a deliberate truncation)"
                    ),
                );
            }
        }
    }

    /// R3: blocking calls inside async bodies (outside tests — the test
    /// runtime is allowed to block).
    fn check_r3(&self, diags: &mut Vec<Diagnostic>) {
        let toks = &self.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            let line = t.line;
            if !in_any(&self.async_spans, line) || in_any(&self.test_spans, line) {
                continue;
            }
            // `thread::sleep` (with or without a `std::` prefix).
            if t.is_ident("thread")
                && path_sep(toks, i + 1)
                && toks.get(i + 3).is_some_and(|n| n.is_ident("sleep"))
            {
                self.diag(
                    diags,
                    line,
                    Rule::R3,
                    "`thread::sleep` inside async fn blocks the executor; \
                     use `tokio::time::sleep`"
                        .to_string(),
                );
            }
            // Blocking std I/O constructors: `std::fs::...`,
            // `std::net::{TcpStream,TcpListener,UdpSocket}::...`,
            // `File::open/create`.
            if t.is_ident("std") && path_sep(toks, i + 1) {
                match toks.get(i + 3).and_then(Token::ident) {
                    Some("fs") => self.diag(
                        diags,
                        line,
                        Rule::R3,
                        "blocking `std::fs` call inside async fn; \
                         use `tokio::task::spawn_blocking`"
                            .to_string(),
                    ),
                    Some("net")
                        if path_sep(toks, i + 4)
                            && matches!(
                                toks.get(i + 6).and_then(Token::ident),
                                Some("TcpStream" | "TcpListener" | "UdpSocket")
                            ) =>
                    {
                        self.diag(
                            diags,
                            line,
                            Rule::R3,
                            "blocking `std::net` socket inside async fn; \
                             use the `tokio::net` equivalents"
                                .to_string(),
                        );
                    }
                    _ => {}
                }
            }
            if t.is_ident("File")
                && path_sep(toks, i + 1)
                && matches!(
                    toks.get(i + 3).and_then(Token::ident),
                    Some("open" | "create")
                )
            {
                self.diag(
                    diags,
                    line,
                    Rule::R3,
                    "blocking `File` I/O inside async fn; \
                     use `tokio::task::spawn_blocking`"
                        .to_string(),
                );
            }
        }
    }

    /// R5: `let _ = ...send...(...)` outside `#[cfg(test)]`. Discarding a
    /// send result in hot-path code swallows the very failures the
    /// fault-tolerance counters exist to account for.
    fn check_r5(&self, diags: &mut Vec<Diagnostic>) {
        let toks = &self.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("let") || in_any(&self.test_spans, t.line) {
                continue;
            }
            if !(toks.get(i + 1).is_some_and(|n| n.is_ident("_"))
                && toks.get(i + 2).is_some_and(|n| n.is_punct('=')))
            {
                continue;
            }
            // Scan the initializer (up to its terminating `;`) for a call
            // to an identifier containing `send`.
            for j in i + 3..toks.len() {
                if toks[j].is_punct(';') {
                    break;
                }
                let Some(name) = toks[j].ident() else {
                    continue;
                };
                if name.contains("send") && toks.get(j + 1).is_some_and(|n| n.is_punct('(')) {
                    self.diag(
                        diags,
                        t.line,
                        Rule::R5,
                        format!(
                            "`let _ =` discards the result of `{name}(...)` in hot-path \
                             code; handle the error or count the failure"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

/// Are `toks[i]`, `toks[i+1]` the two colons of a `::`?
fn path_sep(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(':')) && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
}

/// Function names treated as public parser entry points by R4.
const ENTRY_POINT_NAMES: &[&str] = &["from_bytes", "parse", "decode", "decode_body", "parse_zone"];

#[derive(Debug)]
pub struct EntryPoint {
    pub file: PathBuf,
    pub line: u32,
    pub fn_name: String,
    /// File stem of the defining module (`message` for `message.rs`).
    pub module: String,
}

/// Collects `pub fn <entry-point-name>` declarations outside test regions.
pub fn entry_points(analysis: &FileAnalysis) -> Vec<EntryPoint> {
    let toks = &analysis.lexed.tokens;
    let module = analysis
        .path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("pub") || in_any(&analysis.test_spans, t.line) {
            continue;
        }
        // `pub fn name` or `pub(crate) fn name` — the latter is not a
        // public entry point, so require `fn` directly after `pub`.
        let Some(ft) = toks.get(i + 1) else { continue };
        if !ft.is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 2).and_then(Token::ident) else {
            continue;
        };
        if ENTRY_POINT_NAMES.contains(&name) {
            out.push(EntryPoint {
                file: analysis.path.clone(),
                line: toks[i + 2].line,
                fn_name: name.to_string(),
                module: module.clone(),
            });
        }
    }
    out
}

/// Collects names of `#[test]` functions whose name contains `roundtrip`
/// or `round_trip`, paired with the file they live in.
pub fn roundtrip_tests(analysis: &FileAnalysis) -> Vec<(PathBuf, String)> {
    let toks = &analysis.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
            continue;
        };
        if !(name.contains("roundtrip") || name.contains("round_trip")) {
            continue;
        }
        // Must be a test: inside a test span, or in a `tests/` integration
        // file (where `#[test]` fns are not under `#[cfg(test)]`).
        let in_tests_dir = analysis.path.components().any(|c| c.as_os_str() == "tests");
        if in_any(&analysis.test_spans, t.line) || in_tests_dir {
            out.push((analysis.path.clone(), name.to_string()));
        }
    }
    out
}

/// R4: every entry point must be covered by some round-trip test — one in
/// the same file, one whose name mentions the module, or one whose name
/// mentions the entry point's own name.
pub fn check_r4(
    entries: &[EntryPoint],
    tests: &[(PathBuf, String)],
    allows: impl Fn(&Path, u32) -> bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let names: HashSet<&str> = tests.iter().map(|(_, n)| n.as_str()).collect();
    for ep in entries {
        if allows(&ep.file, ep.line) {
            continue;
        }
        let covered = tests.iter().any(|(file, _)| file == &ep.file)
            || names
                .iter()
                .any(|n| n.contains(ep.module.as_str()) || n.contains(ep.fn_name.as_str()));
        if !covered {
            diags.push(Diagnostic {
                file: ep.file.clone(),
                line: ep.line,
                rule: Rule::R4,
                message: format!(
                    "public parser entry point `{}` (module `{}`) has no round-trip \
                     test; add a `#[test]` whose name contains `roundtrip` and \
                     `{}` or `{}`",
                    ep.fn_name, ep.module, ep.module, ep.fn_name
                ),
            });
        }
    }
    diags
}
