//! Querier nodes for the discrete-event simulator — the client side of the
//! §5 protocol experiments.
//!
//! A [`SimQuerier`] replays a pre-partitioned slice of the trace against
//! the simulated authoritative server, pacing sends by trace time (virtual
//! time makes the ΔT arithmetic exact), emulating original sources as
//! distinct local ports, and reusing one TCP connection (or TLS session)
//! per original source, reconnecting when the server's idle timeout closes
//! it — precisely the client behaviour whose consequences Figures 13–15
//! measure.

use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr};

use ldp_netsim::quic::{self, QuicFrame};
use ldp_netsim::{
    ConnKey, Ctx, Node, NodeEvent, Packet, Payload, SimTime, TcpConfig, TcpEvent, TcpStack,
    TlsEndpoint, TlsOutput, TlsRole,
};
use ldp_trace::{Protocol, TraceRecord};
use ldp_wire::framing::{frame_message, FrameDecoder};
use ldp_wire::{DNS_PORT, DNS_TLS_PORT};

/// Token for the single chained send timer. Bit 63 is clear, so it can
/// never collide with the tokens [`TcpStack`] stamps with `TCP_TIMER_BIT`.
const SEND_TIMER: u64 = 0;

/// Result of one replayed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// The original source this query came from.
    pub src: IpAddr,
    /// Trace timestamp (µs).
    pub trace_time_us: u64,
    /// When the querier actually handed the query to the transport.
    pub sent_at: SimTime,
    /// When the response arrived, if it did.
    pub answered_at: Option<SimTime>,
    pub protocol: Protocol,
    /// The UDP answer came back truncated and the query was retried over
    /// TCP (RFC 7766 fallback); `answered_at` then reflects the TCP
    /// answer — truncation is the latency penalty DNSSEC-sized responses
    /// pay on small-payload paths.
    pub tc_retried: bool,
}

impl SimOutcome {
    /// Query latency in milliseconds, if answered.
    pub fn latency_ms(&self) -> Option<f64> {
        self.answered_at
            .map(|a| (a - self.sent_at).as_secs_f64() * 1000.0)
    }

    /// Query latency in whole microseconds, if answered — the integer
    /// tick the latency histograms bucket by.
    pub fn latency_us(&self) -> Option<u64> {
        self.answered_at.map(|a| (a - self.sent_at).as_micros())
    }
}

/// Per-original-source QUIC session state.
struct QuicConn {
    conn_id: u64,
    established: bool,
    /// Framed DNS messages queued until the 1-RTT handshake completes.
    queued: Vec<Vec<u8>>,
}

/// Per-original-source TCP/TLS connection state.
struct SourceConn {
    key: ConnKey,
    tls: Option<TlsEndpoint>,
    framer: FrameDecoder,
    established: bool,
    /// Writes queued until the connection (and TLS session) is up.
    queued: Vec<Vec<u8>>,
}

/// A simulated querier node.
pub struct SimQuerier {
    addr: IpAddr,
    server: IpAddr,
    records: Vec<TraceRecord>,
    /// Next unsent record (records are time-ordered; see [`Self::drain_due`]).
    cursor: usize,
    pub tcp: TcpStack,
    conns: HashMap<IpAddr, SourceConn>,
    conn_owner: HashMap<ConnKey, IpAddr>,
    /// UDP local port per original source.
    udp_ports: HashMap<IpAddr, u16>,
    next_udp_port: u16,
    /// In-flight queries: (local port, DNS id) → outcome index.
    pending_udp: HashMap<(u16, u16), usize>,
    /// In-flight stream queries: (source, DNS id) → outcome index.
    pending_stream: HashMap<(IpAddr, u16), usize>,
    next_id: u16,
    pub outcomes: Vec<SimOutcome>,
    /// Maps outcome index → source record index (needed by the TC-retry
    /// path; send order tracks record order except when an encode fails).
    outcome_record: Vec<usize>,
    /// QUIC sessions per original source (extension transport).
    quic_conns: HashMap<IpAddr, QuicConn>,
    quic_by_id: HashMap<u64, IpAddr>,
    next_quic_id: u64,
    /// Local UDP port carrying QUIC traffic (one per querier suffices:
    /// sessions are distinguished by connection id, not 4-tuple).
    quic_port: u16,
    /// Queries whose connection died before they could be sent.
    pub aborted: u64,
}

impl SimQuerier {
    /// `records` must be time-ordered (the plan partition preserves this).
    pub fn new(
        addr: IpAddr,
        server: IpAddr,
        tcp_config: TcpConfig,
        records: Vec<TraceRecord>,
    ) -> SimQuerier {
        SimQuerier {
            addr,
            server,
            tcp: TcpStack::new(addr, tcp_config),
            conns: HashMap::new(),
            conn_owner: HashMap::new(),
            udp_ports: HashMap::new(),
            next_udp_port: 10_000,
            pending_udp: HashMap::new(),
            pending_stream: HashMap::new(),
            next_id: 0,
            outcomes: Vec::with_capacity(records.len()),
            outcome_record: Vec::with_capacity(records.len()),
            quic_conns: HashMap::new(),
            quic_by_id: HashMap::new(),
            // Connection IDs must be globally unique across queriers (real
            // clients pick random 64-bit CIDs); seed the counter's high
            // bits from this querier's address so parallel queriers never
            // collide at the server's session table.
            next_quic_id: (addr_seed(addr) << 32) | 1,
            quic_port: 8853,
            aborted: 0,
            cursor: 0,
            records,
        }
    }

    /// Sends every record due at or before the current virtual time, then
    /// arms one timer for the next future record. A single chained timer
    /// replaces the old timer-per-record scheme: a querier holding a
    /// million-record slice no longer floods the event queue at start, and
    /// co-due records drain batch-style in one wakeup, in trace order.
    fn drain_due(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        while self.cursor < self.records.len() {
            let due = SimTime::from_micros(self.records[self.cursor].time_us);
            if due > now {
                ctx.set_timer(due - now, SEND_TIMER);
                return;
            }
            let index = self.cursor;
            self.cursor += 1;
            self.send_query(ctx, index);
        }
    }

    /// Fraction of queries answered.
    pub fn answer_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.answered_at.is_some())
            .count() as f64
            / self.outcomes.len() as f64
    }

    fn udp_port_for(&mut self, src: IpAddr) -> u16 {
        if let Some(&p) = self.udp_ports.get(&src) {
            return p;
        }
        let p = self.next_udp_port;
        self.next_udp_port = self.next_udp_port.checked_add(1).unwrap_or(10_000);
        self.udp_ports.insert(src, p);
        p
    }

    fn send_query(&mut self, ctx: &mut Ctx, index: usize) {
        let rec = self.records[index].clone();
        self.next_id = self.next_id.wrapping_add(1);
        let id = self.next_id;
        let mut msg = rec.message.clone();
        msg.header.id = id;
        let Ok(wire) = msg.to_bytes() else {
            return;
        };
        let outcome_idx = self.outcomes.len();
        self.outcomes.push(SimOutcome {
            src: rec.src,
            trace_time_us: rec.time_us,
            sent_at: ctx.now(),
            answered_at: None,
            protocol: rec.protocol,
            tc_retried: false,
        });
        self.outcome_record.push(index);
        match rec.protocol {
            Protocol::Udp => {
                let port = self.udp_port_for(rec.src);
                self.pending_udp.insert((port, id), outcome_idx);
                ctx.send(Packet::udp(
                    SocketAddr::new(self.addr, port),
                    SocketAddr::new(self.server, DNS_PORT),
                    wire,
                ));
            }
            Protocol::Tcp | Protocol::Tls => {
                self.pending_stream.insert((rec.src, id), outcome_idx);
                let Ok(framed) = frame_message(&wire) else {
                    return;
                };
                self.send_stream(ctx, rec.src, rec.protocol, framed);
            }
            Protocol::Quic => {
                self.pending_stream.insert((rec.src, id), outcome_idx);
                let Ok(framed) = frame_message(&wire) else {
                    return;
                };
                self.send_quic(ctx, rec.src, framed);
            }
        }
    }

    /// Sends a framed DNS message over the source's QUIC session, opening
    /// one (1-RTT handshake) when needed.
    fn send_quic(&mut self, ctx: &mut Ctx, src: IpAddr, framed: Vec<u8>) {
        if !self.quic_conns.contains_key(&src) {
            let conn_id = self.next_quic_id;
            self.next_quic_id += 1;
            self.quic_by_id.insert(conn_id, src);
            self.quic_conns.insert(
                src,
                QuicConn {
                    conn_id,
                    established: false,
                    queued: Vec::new(),
                },
            );
            ctx.send(Packet::udp(
                SocketAddr::new(self.addr, self.quic_port),
                SocketAddr::new(self.server, DNS_TLS_PORT),
                quic::encode(&QuicFrame::Initial { conn_id }),
            ));
        }
        let conn = self.quic_conns.get_mut(&src).expect("just ensured");
        if conn.established {
            let frame = quic::encode(&QuicFrame::App {
                conn_id: conn.conn_id,
                data: framed,
            });
            ctx.send(Packet::udp(
                SocketAddr::new(self.addr, self.quic_port),
                SocketAddr::new(self.server, DNS_TLS_PORT),
                frame,
            ));
        } else {
            conn.queued.push(framed);
        }
    }

    /// Handles a QUIC datagram from the server.
    fn handle_quic(&mut self, ctx: &mut Ctx, data: &[u8]) {
        let Some(frame) = quic::decode(data) else {
            return;
        };
        match frame {
            QuicFrame::Accept { conn_id } => {
                let Some(&src) = self.quic_by_id.get(&conn_id) else {
                    return;
                };
                let Some(conn) = self.quic_conns.get_mut(&src) else {
                    return;
                };
                conn.established = true;
                let queued = std::mem::take(&mut conn.queued);
                for framed in queued {
                    let frame = quic::encode(&QuicFrame::App {
                        conn_id,
                        data: framed,
                    });
                    ctx.send(Packet::udp(
                        SocketAddr::new(self.addr, self.quic_port),
                        SocketAddr::new(self.server, DNS_TLS_PORT),
                        frame,
                    ));
                }
            }
            QuicFrame::App { conn_id, data } => {
                let Some(&src) = self.quic_by_id.get(&conn_id) else {
                    return;
                };
                if data.len() >= 4 {
                    // Strip the 2-byte length prefix; match by DNS id.
                    let id = u16::from_be_bytes([data[2], data[3]]);
                    if let Some(idx) = self.pending_stream.remove(&(src, id)) {
                        self.outcomes[idx].answered_at = Some(ctx.now());
                    }
                }
            }
            QuicFrame::Close { conn_id } => {
                // Server idle-expired the session: next query re-handshakes.
                if let Some(src) = self.quic_by_id.remove(&conn_id) {
                    if let Some(conn) = self.quic_conns.remove(&src) {
                        self.aborted += conn.queued.len() as u64;
                    }
                }
            }
            QuicFrame::Initial { .. } => {}
        }
    }

    fn send_stream(&mut self, ctx: &mut Ctx, src: IpAddr, protocol: Protocol, framed: Vec<u8>) {
        // One connection per original source, opened on demand and reused
        // until the server's idle timeout closes it (§2.6).
        if !self.conns.contains_key(&src) {
            let port = match protocol {
                Protocol::Tls => DNS_TLS_PORT,
                _ => DNS_PORT,
            };
            let key = self
                .tcp
                .connect(ctx, None, SocketAddr::new(self.server, port));
            self.conn_owner.insert(key, src);
            self.conns.insert(
                src,
                SourceConn {
                    key,
                    tls: (protocol == Protocol::Tls).then(|| TlsEndpoint::new(TlsRole::Client)),
                    framer: FrameDecoder::new(),
                    established: false,
                    queued: Vec::new(),
                },
            );
        }
        let conn = self.conns.get_mut(&src).expect("just ensured");
        if !conn.established {
            conn.queued.push(framed);
            return;
        }
        let key = conn.key;
        match conn.tls.as_mut() {
            Some(tls) if tls.is_established() => {
                let outs = tls.write_app_data(&framed);
                for out in outs {
                    if let TlsOutput::SendBytes(bytes) = out {
                        self.tcp.send(ctx, key, &bytes);
                    }
                }
            }
            Some(tls) => {
                // TLS still handshaking: queue inside the endpoint.
                let _ = tls.write_app_data(&framed);
            }
            None => self.tcp.send(ctx, key, &framed),
        }
    }

    fn handle_tcp_events(&mut self, ctx: &mut Ctx, events: Vec<TcpEvent>) {
        for event in events {
            match event {
                TcpEvent::Connected(key) => {
                    let Some(&src) = self.conn_owner.get(&key) else {
                        continue;
                    };
                    let Some(conn) = self.conns.get_mut(&src) else {
                        continue;
                    };
                    conn.established = true;
                    if let Some(tls) = conn.tls.as_mut() {
                        // Kick off the TLS handshake; queued app data
                        // flushes when it completes.
                        let queued = std::mem::take(&mut conn.queued);
                        let mut outs = tls.on_tcp_connected();
                        for data in queued {
                            outs.extend(tls.write_app_data(&data));
                        }
                        for out in outs {
                            if let TlsOutput::SendBytes(bytes) = out {
                                self.tcp.send(ctx, key, &bytes);
                            }
                        }
                    } else {
                        let queued = std::mem::take(&mut conn.queued);
                        for data in queued {
                            self.tcp.send(ctx, key, &data);
                        }
                    }
                }
                TcpEvent::Data(key, bytes) => {
                    let Some(&src) = self.conn_owner.get(&key) else {
                        continue;
                    };
                    let Some(conn) = self.conns.get_mut(&src) else {
                        continue;
                    };
                    let mut app_bytes: Vec<Vec<u8>> = Vec::new();
                    if let Some(tls) = conn.tls.as_mut() {
                        for out in tls.on_bytes(&bytes) {
                            match out {
                                TlsOutput::SendBytes(b) => self.tcp.send(ctx, key, &b),
                                TlsOutput::AppData(d) => app_bytes.push(d),
                                TlsOutput::HandshakeComplete => {}
                            }
                        }
                    } else {
                        app_bytes.push(bytes);
                    }
                    // Re-borrow after possible tcp sends.
                    let Some(conn) = self.conns.get_mut(&src) else {
                        continue;
                    };
                    let mut frames = Vec::new();
                    for data in app_bytes {
                        conn.framer.feed(&data);
                        frames.extend(conn.framer.drain_frames());
                    }
                    for frame in frames {
                        self.match_stream_response(ctx.now(), src, &frame);
                    }
                }
                TcpEvent::PeerClosed(key) | TcpEvent::Closed(key) => {
                    // Server idle-timeout (or our own close): drop the
                    // mapping so the next query reconnects fresh — that
                    // reconnect is the 2-RTT latency mode of Figure 15b.
                    if let Some(src) = self.conn_owner.remove(&key) {
                        if let Some(conn) = self.conns.remove(&src) {
                            self.aborted += conn.queued.len() as u64;
                        }
                    }
                }
                TcpEvent::Accepted(_) => {}
            }
        }
    }

    /// RFC 7766 truncation fallback: re-issue the query over TCP on the
    /// source's (possibly fresh) connection. The original send time is
    /// kept so the outcome's latency includes the wasted UDP round trip,
    /// exactly what a stub experiences.
    fn retry_over_tcp(&mut self, ctx: &mut Ctx, outcome_idx: usize, id: u16) {
        let src = {
            let o = &mut self.outcomes[outcome_idx];
            o.tc_retried = true;
            o.src
        };
        let Some(rec) = self
            .outcome_record
            .get(outcome_idx)
            .and_then(|&i| self.records.get(i))
        else {
            return;
        };
        let mut msg = rec.message.clone();
        msg.header.id = id;
        let Ok(wire) = msg.to_bytes() else { return };
        let Ok(framed) = frame_message(&wire) else {
            return;
        };
        self.pending_stream.insert((src, id), outcome_idx);
        self.send_stream(ctx, src, Protocol::Tcp, framed);
    }

    fn match_stream_response(&mut self, now: SimTime, src: IpAddr, frame: &[u8]) {
        if frame.len() < 2 {
            return;
        }
        let id = u16::from_be_bytes([frame[0], frame[1]]);
        if let Some(idx) = self.pending_stream.remove(&(src, id)) {
            self.outcomes[idx].answered_at = Some(now);
        }
    }
}

impl Node for SimQuerier {
    fn on_start(&mut self, ctx: &mut Ctx) {
        // Chained ΔT scheduling: arm only the next record's timer; each
        // wakeup drains everything due (virtual time makes the arithmetic
        // exact — ΔT degenerates to "fire at t̄ᵢ").
        self.drain_due(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
        match event {
            NodeEvent::Timer { token } if TcpStack::owns_timer(token) => {
                let events = self.tcp.on_timer(ctx, token);
                self.handle_tcp_events(ctx, events);
            }
            NodeEvent::Timer { .. } => {
                self.drain_due(ctx);
            }
            NodeEvent::Packet(packet) => match &packet.payload {
                Payload::Udp(data) => {
                    if packet.dst.port() == self.quic_port {
                        let data = data.clone();
                        self.handle_quic(ctx, &data);
                        return;
                    }
                    if data.len() < 3 {
                        return;
                    }
                    let id = u16::from_be_bytes([data[0], data[1]]);
                    let port = packet.dst.port();
                    // TC bit: flags byte 2, bit 0x02 (RFC 1035 §4.1.1).
                    let truncated = data[2] & 0x02 != 0;
                    if truncated {
                        if let Some(idx) = self.pending_udp.remove(&(port, id)) {
                            self.retry_over_tcp(ctx, idx, id);
                        }
                        return;
                    }
                    if let Some(idx) = self.pending_udp.remove(&(port, id)) {
                        self.outcomes[idx].answered_at = Some(ctx.now());
                    }
                }
                Payload::Tcp(_) => {
                    let events = self.tcp.on_packet(ctx, &packet);
                    self.handle_tcp_events(ctx, events);
                }
            },
        }
    }
}

/// Derives a querier-unique seed from its address (IPv4 bits or a hash of
/// the IPv6 octets).
fn addr_seed(addr: IpAddr) -> u64 {
    match addr {
        IpAddr::V4(v4) => u32::from(v4) as u64,
        IpAddr::V6(v6) => {
            let o = v6.octets();
            u64::from_be_bytes(o[8..16].try_into().expect("eight octets"))
        }
    }
}

/// Per-client query counts — Figure 15c's distribution, and the filter for
/// the "non-busy clients" cut of Figure 15b.
pub fn per_client_counts(outcomes: &[SimOutcome]) -> HashMap<IpAddr, u64> {
    let mut counts = HashMap::new();
    for o in outcomes {
        *counts.entry(o.src).or_default() += 1;
    }
    counts
}

/// Latencies (ms) filtered to clients with fewer than `max_queries`
/// queries (Figure 15b: "non-busy clients that send less than 250
/// queries").
pub fn non_busy_latencies_ms(outcomes: &[SimOutcome], max_queries: u64) -> Vec<f64> {
    let counts = per_client_counts(outcomes);
    outcomes
        .iter()
        .filter(|o| counts[&o.src] < max_queries)
        .filter_map(|o| o.latency_ms())
        .collect()
}

/// Fixed-memory histogram (µs) of the same non-busy cut — the form the
/// Figure 15b quantiles are read from, so arbitrarily large traces don't
/// need their raw latency vectors held and sorted.
pub fn non_busy_latency_hist(
    outcomes: &[SimOutcome],
    max_queries: u64,
) -> ldp_metrics::LogHistogram {
    let counts = per_client_counts(outcomes);
    let mut hist = ldp_metrics::LogHistogram::new();
    for o in outcomes {
        if counts[&o.src] < max_queries {
            if let Some(us) = o.latency_us() {
                hist.record(us);
            }
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_netsim::{Sim, SimDuration};
    use ldp_server::auth::AuthEngine;
    use ldp_server::resource::ResourceModel;
    use ldp_server::sim::AuthServerNode;
    use ldp_wire::{Name, RrType};
    use ldp_workload::zones::wildcard_example_zone;
    use ldp_zone::ZoneSet;
    use std::sync::Arc;

    fn engine() -> Arc<AuthEngine> {
        let mut set = ZoneSet::new();
        set.insert(wildcard_example_zone());
        Arc::new(AuthEngine::with_zones(Arc::new(set)))
    }

    fn trace(n: u64, gap_us: u64, protocol: Protocol, sources: u32) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                let mut rec = TraceRecord::udp_query(
                    1000 + i * gap_us,
                    format!("10.9.0.{}", 1 + (i as u32 % sources))
                        .parse()
                        .unwrap(),
                    (2000 + i) as u16,
                    Name::parse(&format!("q{i}.example.com")).unwrap(),
                    RrType::A,
                );
                rec.protocol = protocol;
                rec
            })
            .collect()
    }

    fn world(
        records: Vec<TraceRecord>,
        server_tcp: TcpConfig,
        rtt_ms: u64,
    ) -> (Sim, ldp_netsim::NodeId, ldp_netsim::NodeId) {
        let mut sim = Sim::new();
        let q = sim.add_node(Box::new(SimQuerier::new(
            "10.9.9.9".parse().unwrap(),
            "192.0.2.53".parse().unwrap(),
            TcpConfig::default(),
            records,
        )));
        let s = sim.add_node(Box::new(AuthServerNode::new(
            "192.0.2.53".parse().unwrap(),
            engine(),
            server_tcp,
            ResourceModel::default(),
        )));
        sim.bind("10.9.9.9".parse().unwrap(), q);
        sim.bind("192.0.2.53".parse().unwrap(), s);
        sim.set_pair_delay(q, s, SimDuration::from_millis(rtt_ms / 2));
        (sim, q, s)
    }

    #[test]
    fn udp_latency_is_one_rtt() {
        let (mut sim, q, _) = world(trace(10, 1000, Protocol::Udp, 3), TcpConfig::default(), 40);
        sim.run_until(SimTime::from_secs(5));
        let querier: &SimQuerier = sim.node_as(q).unwrap();
        assert_eq!(querier.outcomes.len(), 10);
        assert!((querier.answer_rate() - 1.0).abs() < 1e-9);
        for o in &querier.outcomes {
            assert_eq!(o.latency_ms(), Some(40.0), "UDP = exactly 1 RTT");
            // Sent exactly at trace time (virtual clock).
            assert_eq!(o.sent_at, SimTime::from_micros(o.trace_time_us));
        }
    }

    #[test]
    fn tcp_first_query_two_rtt_then_reuse_one_rtt() {
        let (mut sim, q, s) = world(
            trace(5, 100_000, Protocol::Tcp, 1),
            TcpConfig::default(),
            40,
        );
        sim.run_until(SimTime::from_secs(5));
        let querier: &SimQuerier = sim.node_as(q).unwrap();
        assert!((querier.answer_rate() - 1.0).abs() < 1e-9);
        let lat: Vec<f64> = querier
            .outcomes
            .iter()
            .map(|o| o.latency_ms().unwrap())
            .collect();
        assert_eq!(lat[0], 80.0, "fresh connection: 2 RTT");
        for &l in &lat[1..] {
            assert_eq!(l, 40.0, "reused connection: 1 RTT");
        }
        // Server saw exactly one handshake.
        let server: &AuthServerNode = sim.node_as(s).unwrap();
        assert_eq!(server.usage.tcp_handshakes, 1);
        assert_eq!(server.usage.stream_queries, 5);
    }

    #[test]
    fn tls_first_query_four_rtt_then_reuse() {
        let (mut sim, q, s) = world(
            trace(4, 200_000, Protocol::Tls, 1),
            TcpConfig::default(),
            40,
        );
        sim.run_until(SimTime::from_secs(5));
        let querier: &SimQuerier = sim.node_as(q).unwrap();
        assert!(
            (querier.answer_rate() - 1.0).abs() < 1e-9,
            "rate {}",
            querier.answer_rate()
        );
        let lat: Vec<f64> = querier
            .outcomes
            .iter()
            .map(|o| o.latency_ms().unwrap())
            .collect();
        assert_eq!(lat[0], 160.0, "TCP(1) + TLS(2) + query(1) = 4 RTT");
        for &l in &lat[1..] {
            assert_eq!(l, 40.0, "established session: 1 RTT");
        }
        let server: &AuthServerNode = sim.node_as(s).unwrap();
        assert_eq!(server.usage.tls_handshakes, 1);
    }

    #[test]
    fn quic_first_query_two_rtt_then_reuse_one_rtt() {
        // QUIC folds crypto into the transport handshake: fresh session =
        // 2 RTT total (1 handshake + 1 query), reuse = 1 RTT — half of
        // TLS's fresh cost.
        let (mut sim, q, s) = world(
            trace(4, 100_000, Protocol::Quic, 1),
            TcpConfig::default(),
            40,
        );
        sim.run_until(SimTime::from_secs(5));
        let querier: &SimQuerier = sim.node_as(q).unwrap();
        assert!(
            (querier.answer_rate() - 1.0).abs() < 1e-9,
            "rate {}",
            querier.answer_rate()
        );
        let lat: Vec<f64> = querier
            .outcomes
            .iter()
            .map(|o| o.latency_ms().unwrap())
            .collect();
        assert_eq!(lat[0], 80.0, "fresh QUIC session: 2 RTT");
        for &l in &lat[1..] {
            assert_eq!(l, 40.0, "established session: 1 RTT");
        }
        let server: &AuthServerNode = sim.node_as(s).unwrap();
        assert_eq!(server.usage.quic_handshakes, 1);
        assert_eq!(server.usage.stream_queries, 4);
        assert_eq!(server.quic.len(), 1);
        // And crucially: no TCP state at all — no TIME_WAIT ever.
        assert_eq!(server.tcp.snapshot().established, 0);
        assert_eq!(server.tcp.snapshot().time_wait, 0);
    }

    #[test]
    fn quic_sessions_expire_and_rehandshake() {
        // Two queries 30 s apart with a 20 s idle timeout: the session is
        // swept, the client learns via Close, and the second query pays
        // the handshake again — but leaves no TIME_WAIT residue.
        let records = vec![trace(1, 0, Protocol::Quic, 1).remove(0), {
            let mut r = trace(1, 0, Protocol::Quic, 1).remove(0);
            r.time_us = 30_000_000;
            r
        }];
        let server_tcp = TcpConfig {
            idle_timeout: Some(SimDuration::from_secs(20)),
            ..TcpConfig::default()
        };
        let (mut sim, q, s) = world(records, server_tcp, 40);
        sim.run_until(SimTime::from_secs(120));
        let querier: &SimQuerier = sim.node_as(q).unwrap();
        let lat: Vec<f64> = querier
            .outcomes
            .iter()
            .map(|o| o.latency_ms().unwrap())
            .collect();
        assert_eq!(lat, vec![80.0, 80.0], "both queries on fresh sessions");
        let server: &AuthServerNode = sim.node_as(s).unwrap();
        assert_eq!(server.usage.quic_handshakes, 2);
        assert_eq!(server.quic.idle_closed, 2);
        assert_eq!(server.tcp.snapshot().time_wait, 0, "no TIME_WAIT in QUIC");
    }

    #[test]
    fn server_idle_timeout_forces_reconnect() {
        // Two queries 30s apart with a 20s server idle timeout: the second
        // query pays the fresh-connection 2 RTT again.
        let records = vec![trace(1, 0, Protocol::Tcp, 1).remove(0), {
            let mut r = trace(1, 0, Protocol::Tcp, 1).remove(0);
            r.time_us = 30_000_000;
            r
        }];
        let server_tcp = TcpConfig {
            idle_timeout: Some(SimDuration::from_secs(20)),
            ..TcpConfig::default()
        };
        let (mut sim, q, s) = world(records, server_tcp, 40);
        sim.run_until(SimTime::from_secs(120));
        let querier: &SimQuerier = sim.node_as(q).unwrap();
        let lat: Vec<f64> = querier
            .outcomes
            .iter()
            .map(|o| o.latency_ms().unwrap())
            .collect();
        assert_eq!(lat, vec![80.0, 80.0], "both queries on fresh connections");
        let server: &AuthServerNode = sim.node_as(s).unwrap();
        assert_eq!(server.usage.tcp_handshakes, 2);
        assert_eq!(server.tcp.snapshot().idle_closed, 2);
    }

    #[test]
    fn mixed_protocol_trace() {
        let mut records = trace(20, 10_000, Protocol::Udp, 4);
        for (i, r) in records.iter_mut().enumerate() {
            if i % 3 == 0 {
                r.protocol = Protocol::Tcp;
            }
        }
        let (mut sim, q, _) = world(records, TcpConfig::default(), 10);
        sim.run_until(SimTime::from_secs(5));
        let querier: &SimQuerier = sim.node_as(q).unwrap();
        assert!((querier.answer_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn truncated_udp_retries_over_tcp() {
        use ldp_wire::Edns;
        use ldp_zone::dnssec::SigningConfig;
        // The signed root's apex DNSKEY answer (two keys + signature)
        // exceeds 512 bytes; a query with a small advertised payload gets
        // TC over UDP and must fall back to TCP, paying the extra round
        // trips but ultimately answering.
        let mut zones = ZoneSet::new();
        zones.insert(ldp_workload::zones::signed_root_zone(
            5,
            SigningConfig::zsk2048(),
        ));
        let engine = Arc::new(AuthEngine::with_zones(Arc::new(zones)));

        let mut rec = TraceRecord::udp_query(
            1000,
            "10.9.0.1".parse().unwrap(),
            4000,
            Name::root(),
            RrType::Dnskey,
        );
        rec.message.edns = Some(Edns {
            udp_payload_size: 512,
            dnssec_ok: true,
            ..Edns::default()
        });

        let mut sim = Sim::new();
        let q = sim.add_node(Box::new(SimQuerier::new(
            "10.9.9.9".parse().unwrap(),
            "192.0.2.53".parse().unwrap(),
            TcpConfig::default(),
            vec![rec],
        )));
        let s = sim.add_node(Box::new(AuthServerNode::new(
            "192.0.2.53".parse().unwrap(),
            engine,
            TcpConfig::default(),
            ResourceModel::default(),
        )));
        sim.bind("10.9.9.9".parse().unwrap(), q);
        sim.bind("192.0.2.53".parse().unwrap(), s);
        sim.set_pair_delay(q, s, SimDuration::from_millis(20));
        sim.run_until(SimTime::from_secs(5));

        let querier: &SimQuerier = sim.node_as(q).unwrap();
        assert_eq!(querier.outcomes.len(), 1);
        let o = &querier.outcomes[0];
        assert!(o.tc_retried, "truncated answer must trigger TCP fallback");
        // 1 RTT wasted on UDP+TC, then 2 RTT for connect+query = 3 RTT.
        assert_eq!(o.latency_ms(), Some(120.0));
        let server: &AuthServerNode = sim.node_as(s).unwrap();
        assert_eq!(server.usage.udp_queries, 1);
        assert_eq!(server.usage.stream_queries, 1);
    }

    #[test]
    fn per_client_helpers() {
        let (mut sim, q, _) = world(trace(30, 1000, Protocol::Udp, 3), TcpConfig::default(), 10);
        sim.run_until(SimTime::from_secs(5));
        let querier: &SimQuerier = sim.node_as(q).unwrap();
        let counts = per_client_counts(&querier.outcomes);
        assert_eq!(counts.len(), 3);
        assert_eq!(counts.values().sum::<u64>(), 30);
        let quiet = non_busy_latencies_ms(&querier.outcomes, 5);
        assert!(quiet.is_empty(), "all 3 clients sent 10 ≥ 5 queries");
        let all = non_busy_latencies_ms(&querier.outcomes, 100);
        assert_eq!(all.len(), 30);
    }
}
