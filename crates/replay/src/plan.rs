//! Distribution planning: same-source affinity through the two-level tree.
//!
//! "We distribute queries from the same sources in the original trace to
//! the same end queriers for replay, in order to emulate queries from the
//! same sources which is critical for connection reuse" (§2.6). Each level
//! (controller → distributor, distributor → querier) remembers where it
//! last sent each source and routes repeats the same way; unseen sources
//! are balanced round-robin (the paper says "randomly"; round-robin is the
//! deterministic equivalent and balances identically in expectation).

use std::collections::HashMap;
use std::net::IpAddr;

/// Sticky assignment of sources to `n` children.
#[derive(Debug, Clone)]
pub struct StickyBalancer {
    n: usize,
    assignment: HashMap<IpAddr, usize>,
    next: usize,
}

impl StickyBalancer {
    pub fn new(n: usize) -> StickyBalancer {
        assert!(n > 0, "at least one child required");
        StickyBalancer {
            n,
            assignment: HashMap::new(),
            next: 0,
        }
    }

    /// Child index for `source`, assigning round-robin on first sight.
    pub fn route(&mut self, source: IpAddr) -> usize {
        if let Some(&idx) = self.assignment.get(&source) {
            return idx;
        }
        let idx = self.next;
        self.next = (self.next + 1) % self.n;
        self.assignment.insert(source, idx);
        idx
    }

    /// Number of distinct sources seen.
    pub fn sources(&self) -> usize {
        self.assignment.len()
    }

    /// Per-child source counts (balance diagnostics).
    pub fn load(&self) -> Vec<usize> {
        let mut load = vec![0; self.n];
        for &idx in self.assignment.values() {
            load[idx] += 1;
        }
        load
    }
}

/// The full two-level plan: `distributors × queriers_per_distributor` end
/// queriers, with a global querier index for each source.
#[derive(Debug, Clone)]
pub struct ReplayPlan {
    controller: StickyBalancer,
    distributors: Vec<StickyBalancer>,
    queriers_per_distributor: usize,
}

impl ReplayPlan {
    pub fn new(distributors: usize, queriers_per_distributor: usize) -> ReplayPlan {
        ReplayPlan {
            controller: StickyBalancer::new(distributors),
            distributors: (0..distributors)
                .map(|_| StickyBalancer::new(queriers_per_distributor))
                .collect(),
            queriers_per_distributor,
        }
    }

    /// Total querier count.
    pub fn querier_count(&self) -> usize {
        self.distributors.len() * self.queriers_per_distributor
    }

    /// Routes a source through both levels; returns (distributor, querier,
    /// global querier index).
    pub fn route(&mut self, source: IpAddr) -> (usize, usize, usize) {
        let d = self.controller.route(source);
        let q = self.distributors[d].route(source);
        (d, q, d * self.queriers_per_distributor + q)
    }

    /// Partitions a set of records by global querier index, preserving
    /// per-querier time order. The generic lets callers partition any
    /// record type with a source address.
    pub fn partition<T, F: Fn(&T) -> IpAddr>(
        &mut self,
        records: Vec<T>,
        source_of: F,
    ) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..self.querier_count()).map(|_| Vec::new()).collect();
        for rec in records {
            let (_, _, idx) = self.route(source_of(&rec));
            out[idx].push(rec);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(i: u32) -> IpAddr {
        IpAddr::V4(std::net::Ipv4Addr::from(0x0A00_0000 + i))
    }

    #[test]
    fn same_source_same_child() {
        let mut b = StickyBalancer::new(4);
        let first = b.route(ip(7));
        for _ in 0..10 {
            assert_eq!(b.route(ip(7)), first);
        }
    }

    #[test]
    fn new_sources_balanced() {
        let mut b = StickyBalancer::new(4);
        for i in 0..100 {
            b.route(ip(i));
        }
        assert_eq!(b.sources(), 100);
        for l in b.load() {
            assert_eq!(l, 25);
        }
    }

    #[test]
    fn two_level_affinity_stable() {
        let mut plan = ReplayPlan::new(3, 5);
        assert_eq!(plan.querier_count(), 15);
        let mut seen: HashMap<IpAddr, usize> = HashMap::new();
        // Interleave many sources, many times; the global querier index per
        // source never changes.
        for round in 0..5 {
            for i in 0..60 {
                let (_, _, idx) = plan.route(ip(i));
                if round == 0 {
                    seen.insert(ip(i), idx);
                } else {
                    assert_eq!(seen[&ip(i)], idx, "source {i} moved between rounds");
                }
            }
        }
        // And all queriers got work.
        let used: std::collections::HashSet<usize> = seen.values().copied().collect();
        assert_eq!(used.len(), 15);
    }

    #[test]
    fn partition_preserves_order_and_affinity() {
        let mut plan = ReplayPlan::new(2, 2);
        let records: Vec<(IpAddr, u64)> = (0..100u64).map(|t| (ip((t % 10) as u32), t)).collect();
        let parts = plan.partition(records, |r| r.0);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        for part in &parts {
            // Time-ordered within each querier.
            for w in part.windows(2) {
                assert!(w[0].1 < w[1].1);
            }
            // Each source appears in exactly one partition.
        }
        let mut source_home: HashMap<IpAddr, usize> = HashMap::new();
        for (pi, part) in parts.iter().enumerate() {
            for (src, _) in part {
                if let Some(&home) = source_home.get(src) {
                    assert_eq!(home, pi, "source split across queriers");
                } else {
                    source_home.insert(*src, pi);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_children_rejected() {
        StickyBalancer::new(0);
    }
}
