//! Distribution planning: same-source affinity through the two-level tree.
//!
//! "We distribute queries from the same sources in the original trace to
//! the same end queriers for replay, in order to emulate queries from the
//! same sources which is critical for connection reuse" (§2.6). Each level
//! (controller → distributor, distributor → querier) remembers where it
//! last sent each source and routes repeats the same way; unseen sources
//! are balanced round-robin (the paper says "randomly"; round-robin is the
//! deterministic equivalent and balances identically in expectation).

use std::collections::HashMap;
use std::net::IpAddr;

/// Sticky assignment of sources to `n` children.
#[derive(Debug, Clone)]
pub struct StickyBalancer {
    n: usize,
    assignment: HashMap<IpAddr, usize>,
    next: usize,
}

impl StickyBalancer {
    pub fn new(n: usize) -> StickyBalancer {
        assert!(n > 0, "at least one child required");
        StickyBalancer {
            n,
            assignment: HashMap::new(),
            next: 0,
        }
    }

    /// Child index for `source`, assigning round-robin on first sight.
    pub fn route(&mut self, source: IpAddr) -> usize {
        if let Some(&idx) = self.assignment.get(&source) {
            return idx;
        }
        let idx = self.next;
        self.next = (self.next + 1) % self.n;
        self.assignment.insert(source, idx);
        idx
    }

    /// Number of distinct sources seen.
    pub fn sources(&self) -> usize {
        self.assignment.len()
    }

    /// Per-child source counts (balance diagnostics).
    pub fn load(&self) -> Vec<usize> {
        let mut load = vec![0; self.n];
        for &idx in self.assignment.values() {
            load[idx] += 1;
        }
        load
    }
}

/// The full two-level plan: `distributors × queriers_per_distributor` end
/// queriers, with a global querier index for each source.
#[derive(Debug, Clone)]
pub struct ReplayPlan {
    controller: StickyBalancer,
    distributors: Vec<StickyBalancer>,
    queriers_per_distributor: usize,
}

impl ReplayPlan {
    pub fn new(distributors: usize, queriers_per_distributor: usize) -> ReplayPlan {
        ReplayPlan {
            controller: StickyBalancer::new(distributors),
            distributors: (0..distributors)
                .map(|_| StickyBalancer::new(queriers_per_distributor))
                .collect(),
            queriers_per_distributor,
        }
    }

    /// Total querier count.
    pub fn querier_count(&self) -> usize {
        self.distributors.len() * self.queriers_per_distributor
    }

    /// Routes a source through both levels; returns (distributor, querier,
    /// global querier index).
    pub fn route(&mut self, source: IpAddr) -> (usize, usize, usize) {
        let d = self.controller.route(source);
        let q = self.distributors[d].route(source);
        (d, q, d * self.queriers_per_distributor + q)
    }

    /// Partitions a set of records by global querier index, preserving
    /// per-querier time order. The generic lets callers partition any
    /// record type with a source address.
    pub fn partition<T, F: Fn(&T) -> IpAddr>(
        &mut self,
        records: Vec<T>,
        source_of: F,
    ) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..self.querier_count()).map(|_| Vec::new()).collect();
        for rec in records {
            let (_, _, idx) = self.route(source_of(&rec));
            out[idx].push(rec);
        }
        out
    }
}

/// The Postman's batching stage: routes records through a [`ReplayPlan`]
/// and accumulates them into per-querier batches, so the engine moves
/// whole `Vec`s across querier channels instead of paying per-record
/// channel synchronization. Flushes happen on three triggers:
///
/// 1. **full** — a querier's buffer reached `batch_size`;
/// 2. **ripe** — the stream's trace time moved more than `horizon_us`
///    past a buffer's oldest record (so timed replays never hold a
///    record hostage to a slow-filling batch; pass `u64::MAX` to disable
///    for `Fast` mode);
/// 3. **finish** — end of input drains every remainder.
///
/// Within a querier, batches and the records inside them preserve input
/// order, so same-source order (affinity-routed to one querier) is
/// preserved end to end. Spines donated back via [`Batcher::donate`] are
/// reused, making steady-state batching allocation-free.
#[derive(Debug)]
pub struct Batcher<T> {
    plan: ReplayPlan,
    batch_size: usize,
    horizon_us: u64,
    buffers: Vec<Vec<T>>,
    /// Trace time of each buffer's oldest record (ripeness clock).
    first_time_us: Vec<Option<u64>>,
    /// Recycled spines (cleared, capacity retained).
    spare: Vec<Vec<T>>,
}

impl<T> Batcher<T> {
    pub fn new(plan: ReplayPlan, batch_size: usize, horizon_us: u64) -> Batcher<T> {
        assert!(batch_size > 0, "batch size must be positive");
        let n = plan.querier_count();
        Batcher {
            plan,
            batch_size,
            horizon_us,
            buffers: (0..n).map(|_| Vec::new()).collect(),
            first_time_us: vec![None; n],
            spare: Vec::new(),
        }
    }

    /// Routes one record and appends every flush it triggers (the target
    /// querier's now-full batch, plus any batch gone ripe at `time_us`)
    /// to `out` as `(querier index, batch)` pairs. Returns the querier
    /// index the record was routed to, so callers can attribute the
    /// record (span tracking, per-shard accounting) without re-routing.
    pub fn push(
        &mut self,
        source: IpAddr,
        time_us: u64,
        item: T,
        out: &mut Vec<(usize, Vec<T>)>,
    ) -> usize {
        let (_, _, idx) = self.plan.route(source);
        if self.buffers[idx].is_empty() {
            self.first_time_us[idx] = Some(time_us);
        }
        self.buffers[idx].push(item);
        if self.buffers[idx].len() >= self.batch_size {
            out.push((idx, self.take(idx)));
        }
        if self.horizon_us < u64::MAX {
            for q in 0..self.buffers.len() {
                if self.first_time_us[q]
                    .is_some_and(|t0| time_us.saturating_sub(t0) > self.horizon_us)
                {
                    out.push((q, self.take(q)));
                }
            }
        }
        idx
    }

    /// Returns a cleared spine to the pool for reuse.
    pub fn donate(&mut self, mut spine: Vec<T>) {
        spine.clear();
        self.spare.push(spine);
    }

    /// Drains every non-empty buffer in querier order.
    pub fn finish(mut self) -> Vec<(usize, Vec<T>)> {
        let mut out = Vec::new();
        for q in 0..self.buffers.len() {
            if !self.buffers[q].is_empty() {
                out.push((q, std::mem::take(&mut self.buffers[q])));
            }
        }
        out
    }

    fn take(&mut self, q: usize) -> Vec<T> {
        self.first_time_us[q] = None;
        let fresh = self.spare.pop().unwrap_or_default();
        std::mem::replace(&mut self.buffers[q], fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(i: u32) -> IpAddr {
        IpAddr::V4(std::net::Ipv4Addr::from(0x0A00_0000 + i))
    }

    #[test]
    fn same_source_same_child() {
        let mut b = StickyBalancer::new(4);
        let first = b.route(ip(7));
        for _ in 0..10 {
            assert_eq!(b.route(ip(7)), first);
        }
    }

    #[test]
    fn new_sources_balanced() {
        let mut b = StickyBalancer::new(4);
        for i in 0..100 {
            b.route(ip(i));
        }
        assert_eq!(b.sources(), 100);
        for l in b.load() {
            assert_eq!(l, 25);
        }
    }

    #[test]
    fn two_level_affinity_stable() {
        let mut plan = ReplayPlan::new(3, 5);
        assert_eq!(plan.querier_count(), 15);
        let mut seen: HashMap<IpAddr, usize> = HashMap::new();
        // Interleave many sources, many times; the global querier index per
        // source never changes.
        for round in 0..5 {
            for i in 0..60 {
                let (_, _, idx) = plan.route(ip(i));
                if round == 0 {
                    seen.insert(ip(i), idx);
                } else {
                    assert_eq!(seen[&ip(i)], idx, "source {i} moved between rounds");
                }
            }
        }
        // And all queriers got work.
        let used: std::collections::HashSet<usize> = seen.values().copied().collect();
        assert_eq!(used.len(), 15);
    }

    #[test]
    fn partition_preserves_order_and_affinity() {
        let mut plan = ReplayPlan::new(2, 2);
        let records: Vec<(IpAddr, u64)> = (0..100u64).map(|t| (ip((t % 10) as u32), t)).collect();
        let parts = plan.partition(records, |r| r.0);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        for part in &parts {
            // Time-ordered within each querier.
            for w in part.windows(2) {
                assert!(w[0].1 < w[1].1);
            }
            // Each source appears in exactly one partition.
        }
        let mut source_home: HashMap<IpAddr, usize> = HashMap::new();
        for (pi, part) in parts.iter().enumerate() {
            for (src, _) in part {
                if let Some(&home) = source_home.get(src) {
                    assert_eq!(home, pi, "source split across queriers");
                } else {
                    source_home.insert(*src, pi);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_children_rejected() {
        StickyBalancer::new(0);
    }

    #[test]
    fn batcher_flushes_on_full() {
        let mut b: Batcher<u64> = Batcher::new(ReplayPlan::new(1, 2), 3, u64::MAX);
        let mut out = Vec::new();
        // One source → one querier; the 3rd record fills the batch.
        for t in 0..3 {
            b.push(ip(1), t, t, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, vec![0, 1, 2]);
        assert!(b.finish().is_empty());
    }

    #[test]
    fn batcher_flushes_ripe_buffers_on_horizon() {
        let mut b: Batcher<u64> = Batcher::new(ReplayPlan::new(1, 2), 100, 1_000);
        let mut out = Vec::new();
        b.push(ip(1), 0, 0, &mut out); // querier 0
        b.push(ip(2), 10, 1, &mut out); // querier 1
        assert!(out.is_empty());
        // Trace time jumps past the horizon: both stale buffers flush,
        // even the one this record did not route to.
        b.push(ip(1), 2_000, 2, &mut out);
        assert_eq!(out.len(), 2);
        let total: usize = out.iter().map(|(_, batch)| batch.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn batcher_finish_drains_remainders_in_order() {
        let mut b: Batcher<u64> = Batcher::new(ReplayPlan::new(1, 3), 100, u64::MAX);
        let mut out = Vec::new();
        for t in 0..30 {
            b.push(ip((t % 7) as u32), t, t, &mut out);
        }
        assert!(out.is_empty());
        let rest = b.finish();
        let total: usize = rest.iter().map(|(_, batch)| batch.len()).sum();
        assert_eq!(total, 30);
        // Input order survives within each querier's batch.
        for (_, batch) in &rest {
            assert!(batch.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn batcher_reuses_donated_spines() {
        let mut b: Batcher<u64> = Batcher::new(ReplayPlan::new(1, 1), 2, u64::MAX);
        let mut out = Vec::new();
        b.push(ip(1), 0, 0, &mut out);
        b.push(ip(1), 1, 1, &mut out);
        let (_, batch) = out.pop().unwrap();
        let spine_cap = batch.capacity();
        b.donate(batch);
        b.push(ip(1), 2, 2, &mut out);
        b.push(ip(1), 3, 3, &mut out);
        let (_, batch) = out.pop().unwrap();
        assert_eq!(batch, vec![2, 3]);
        assert!(batch.capacity() >= spine_cap);
    }
}
