//! Replay timing: the paper's scheduling rule (§2.6, "Correct timing for
//! replayed queries").
//!
//! On the time-synchronization broadcast each querier latches the trace
//! epoch t̄₁ and the real epoch t₁. For query qᵢ with trace time t̄ᵢ seen
//! at real time tᵢ it computes
//!
//! ```text
//! Δt̄ᵢ = t̄ᵢ − t̄₁     (ideal delay from trace start)
//! Δtᵢ = tᵢ − t₁      (processing delay already accumulated)
//! ΔTᵢ = Δt̄ᵢ − Δtᵢ    (timer to arm; ≤ 0 → send immediately)
//! ```
//!
//! which continuously subtracts input-processing delay rather than letting
//! it accumulate — the property behind Figures 6–8's sub-10 ms errors.

/// Per-querier replay clock.
#[derive(Debug, Clone, Copy)]
pub struct ReplayClock {
    /// Trace epoch t̄₁ (µs, trace timeline).
    trace_epoch_us: u64,
    /// Real epoch t₁ (µs, caller's clock).
    real_epoch_us: u64,
    /// Time-scaling factor (1.0 = real time, 0.5 = replay twice as fast).
    speed: f64,
}

impl ReplayClock {
    /// Latches the epochs (the time-sync broadcast).
    pub fn synchronize(trace_epoch_us: u64, real_epoch_us: u64) -> ReplayClock {
        ReplayClock {
            trace_epoch_us,
            real_epoch_us,
            speed: 1.0,
        }
    }

    /// Scales replay speed: delays are multiplied by `factor`, so
    /// **smaller is faster** — `0.5` replays the trace in half the wall
    /// time, `2.0` in double. See DESIGN.md ("Replay speed convention").
    ///
    /// ```
    /// use ldp_replay::ReplayClock;
    ///
    /// // A query 10 ms into the trace...
    /// let real_time = ReplayClock::synchronize(0, 0);
    /// assert_eq!(real_time.delay_us(10_000, 0), Some(10_000));
    ///
    /// // ...is due at 5 ms when speed = 0.5 (twice as fast)...
    /// let doubled = ReplayClock::synchronize(0, 0).with_speed(0.5);
    /// assert_eq!(doubled.delay_us(10_000, 0), Some(5_000));
    /// assert_eq!(doubled.target_real_us(10_000), 5_000);
    ///
    /// // ...and at 20 ms when speed = 2.0 (half speed).
    /// let halved = ReplayClock::synchronize(0, 0).with_speed(2.0);
    /// assert_eq!(halved.delay_us(10_000, 0), Some(20_000));
    /// ```
    pub fn with_speed(mut self, factor: f64) -> ReplayClock {
        // Deadlines must stay monotone in trace time: a negative or NaN
        // factor would reorder sends relative to the trace.
        debug_assert!(
            factor.is_finite() && factor >= 0.0,
            "replay speed must be finite and non-negative, got {factor}"
        );
        self.speed = factor;
        self
    }

    /// ΔTᵢ: how long to wait, from `now_real_us`, before sending the query
    /// stamped `trace_time_us`. `None` means the replay is behind schedule
    /// — send immediately.
    pub fn delay_us(&self, trace_time_us: u64, now_real_us: u64) -> Option<u64> {
        let ideal = (trace_time_us.saturating_sub(self.trace_epoch_us) as f64 * self.speed) as u64;
        let elapsed = now_real_us.saturating_sub(self.real_epoch_us);
        if ideal > elapsed {
            Some(ideal - elapsed)
        } else {
            None
        }
    }

    /// Absolute target send time on the real clock (µs).
    pub fn target_real_us(&self, trace_time_us: u64) -> u64 {
        let ideal = (trace_time_us.saturating_sub(self.trace_epoch_us) as f64 * self.speed) as u64;
        self.real_epoch_us + ideal
    }

    /// The replay-timing error for a query actually sent at
    /// `sent_real_us`: positive = late, negative = early. This is the
    /// quantity Figure 6 plots.
    pub fn error_us(&self, trace_time_us: u64, sent_real_us: u64) -> i64 {
        sent_real_us as i64 - self.target_real_us(trace_time_us) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_schedule_waits_the_gap() {
        // Trace starts at 500, real clock at 1000.
        let clock = ReplayClock::synchronize(500, 1000);
        // A query 250µs into the trace, asked about at real 1100 (100µs
        // elapsed): wait 150 more.
        assert_eq!(clock.delay_us(750, 1100), Some(150));
    }

    #[test]
    fn behind_schedule_sends_immediately() {
        let clock = ReplayClock::synchronize(0, 0);
        // Query at trace 100µs, but 300µs already elapsed.
        assert_eq!(clock.delay_us(100, 300), None);
    }

    #[test]
    fn exactly_on_time_sends_now() {
        let clock = ReplayClock::synchronize(0, 0);
        assert_eq!(clock.delay_us(100, 100), None);
    }

    #[test]
    fn processing_delay_subtracted_not_accumulated() {
        // Three queries 100µs apart in the trace; input processing lags by
        // 30µs by the time each is seen. Targets stay absolute: errors
        // don't stack.
        let clock = ReplayClock::synchronize(0, 0);
        for i in 1..=3u64 {
            let trace_t = i * 100;
            let seen_at = trace_t - 70; // seen 70µs before its slot
            assert_eq!(clock.delay_us(trace_t, seen_at), Some(70));
        }
    }

    #[test]
    fn speed_scaling() {
        let clock = ReplayClock::synchronize(0, 0).with_speed(0.5);
        // 1000µs of trace becomes 500µs of real time.
        assert_eq!(clock.delay_us(1000, 0), Some(500));
        let slow = ReplayClock::synchronize(0, 0).with_speed(2.0);
        assert_eq!(slow.delay_us(1000, 0), Some(2000));
    }

    #[test]
    fn error_sign_convention() {
        let clock = ReplayClock::synchronize(0, 1000);
        // Target for trace 500 is real 1500.
        assert_eq!(clock.error_us(500, 1503), 3, "late is positive");
        assert_eq!(clock.error_us(500, 1490), -10, "early is negative");
    }

    #[test]
    fn trace_time_before_epoch_clamps() {
        let clock = ReplayClock::synchronize(1000, 0);
        assert_eq!(clock.delay_us(500, 0), None);
        assert_eq!(clock.target_real_us(500), 0);
    }
}
