//! The distributed query replay engine (§2.6 and §3 of the paper).
//!
//! LDplayer's query engine is a two-level distribution tree — a Controller
//! (Reader + Postman) feeding Distributors feeding Queriers — that replays
//! a captured query stream with faithful timing, keeps all queries from
//! one original source on one querier (and one socket/connection), and
//! speaks UDP, TCP, and TLS.
//!
//! * [`plan`] — the pure distribution logic: same-source affinity
//!   assignment through both tree levels,
//! * [`timing`] — the ΔTᵢ = Δt̄ᵢ − Δtᵢ scheduling rule that subtracts
//!   accumulated processing delay from the trace-relative send time,
//! * [`engine`] — the live tokio implementation used for the §4
//!   replay-fidelity and throughput experiments (real sockets, loopback);
//!   the paper's processes-on-many-hosts become tasks-in-one-process with
//!   channels standing in for the TCP control connections — the dataflow,
//!   affinity, and timing logic are identical,
//! * [`retry`] — the engine's fault-tolerance layer: answer timeouts over
//!   a timer wheel, UDP retransmits with exponential backoff + jitter,
//!   TCP reconnects, and the fault counters that account for all of it,
//! * [`simclient`] — querier nodes for [`ldp_netsim`], used by the §5
//!   protocol experiments (controlled RTT, TCP/TLS connection reuse,
//!   latency distributions).

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod engine;
pub mod plan;
pub mod retry;
pub mod simclient;
pub mod timing;

pub use engine::{LiveReplay, ReplayError, ReplayMode, ReplayOutcome, ReplayReport};
pub use plan::{Batcher, ReplayPlan};
pub use retry::RetryPolicy;
pub use timing::ReplayClock;
