//! Query timeout, retransmit, and reconnect policy for the live engine.
//!
//! The paper's replay runs against real servers that drop packets and
//! reset connections; a replay that aborts (or silently loses records) on
//! the first fault cannot finish a multi-hour trace. This module holds the
//! pieces the engine uses to degrade gracefully instead:
//!
//! * [`RetryPolicy`] — per-querier knobs: answer timeout, UDP retransmit
//!   budget with exponential backoff + jitter (via [`ldp_netsim::Backoff`],
//!   the same model the simulator uses), and TCP reconnect attempts.
//! * [`TimeoutWheel`] — a coarse hashed timer wheel over in-flight query
//!   ids. Scheduling is one `Vec` push under the pending-table lock the
//!   sender already holds, so the no-fault hot path pays near zero; a
//!   per-querier sweeper task drains due buckets every tick.
//! * [`FaultCounters`] — shared atomics the sender, receiver, and sweeper
//!   all bump, folded into [`ldp_metrics::ShardStats`] at the end.
//!
//! Fidelity note: a retransmit keeps its original query's message id and
//! outcome slot. It is never counted as a new trace query — `sent` counts
//! trace records put on the wire once; `retries` counts the extra
//! datagrams separately.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ldp_netsim::Backoff;

use ldp_metrics::ShardStats;

/// Timeout/retry/reconnect configuration for one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// How long to wait for an answer before an attempt expires. A zero
    /// timeout disables expiry tracking entirely (see
    /// [`RetryPolicy::disabled`]).
    pub timeout: Duration,
    /// UDP retransmits per query after the first send (0 = never
    /// retransmit; expiries go straight to `gave_up`).
    pub max_udp_retries: u32,
    /// Spacing of successive attempts: attempt *n*'s expiry deadline is
    /// its send time plus `backoff.delay(n, id)`.
    pub backoff: Backoff,
    /// TCP connection-open attempts per (re)connect before the records
    /// riding on it degrade to [`crate::engine::ReplayError::Connect`].
    pub tcp_reconnect_attempts: u32,
    /// Pause between TCP open attempts (capped exponential + jitter).
    pub tcp_reconnect_backoff: Backoff,
}

impl Default for RetryPolicy {
    /// Loopback-tuned defaults: 250 ms answer timeout, two retransmits
    /// (99.9%+ delivery at 20% loss), three connect attempts.
    fn default() -> RetryPolicy {
        let timeout = Duration::from_millis(250);
        RetryPolicy {
            timeout,
            max_udp_retries: 2,
            backoff: Backoff::new(timeout, Duration::from_secs(2)),
            tcp_reconnect_attempts: 3,
            tcp_reconnect_backoff: Backoff::new(Duration::from_millis(50), Duration::from_secs(1)),
        }
    }
}

impl RetryPolicy {
    /// No expiry, no retransmits, single connect attempts — the engine's
    /// pre-fault-tolerance behavior, for measuring raw send throughput.
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            timeout: Duration::ZERO,
            max_udp_retries: 0,
            tcp_reconnect_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Whether in-flight queries expire at all.
    pub fn is_enabled(&self) -> bool {
        !self.timeout.is_zero()
    }

    /// Whether the sender must retain query wires for retransmission.
    pub fn retains_wire(&self) -> bool {
        self.is_enabled() && self.max_udp_retries > 0
    }
}

impl serde::Serialize for RetryPolicy {
    fn to_json_value(&self) -> serde::Value {
        serde_json::json!({
            "timeout_ms": self.timeout.as_millis() as u64,
            "max_udp_retries": self.max_udp_retries,
            "backoff_base_ms": self.backoff.base.as_millis() as u64,
            "backoff_cap_ms": self.backoff.cap.as_millis() as u64,
            "tcp_reconnect_attempts": self.tcp_reconnect_attempts,
        })
    }
}

/// Fault counters shared between a querier's send path, receive tasks,
/// and timeout sweeper; folded into [`ShardStats`] when the querier ends.
#[derive(Debug, Default)]
pub struct FaultCounters {
    pub timeouts: AtomicU64,
    pub retries: AtomicU64,
    pub reconnects: AtomicU64,
    pub gave_up: AtomicU64,
    pub errors: AtomicU64,
}

impl FaultCounters {
    pub fn fold_into(&self, stats: &mut ShardStats) {
        stats.timeouts = self.timeouts.load(Ordering::Relaxed);
        stats.retries = self.retries.load(Ordering::Relaxed);
        stats.reconnects = self.reconnects.load(Ordering::Relaxed);
        stats.gave_up = self.gave_up.load(Ordering::Relaxed);
        stats.errors = self.errors.load(Ordering::Relaxed);
    }
}

/// Coarse hashed timer wheel over in-flight message ids.
///
/// Entries are `(id, attempt)` pairs hashed into [`TimeoutWheel::BUCKETS`]
/// buckets by deadline tick. The wheel itself never decides expiry — the
/// sweeper re-checks the authoritative deadline stored in the pending
/// table, so stale entries (the id was answered, or re-used by a later
/// attempt) cost one skipped lookup, and an entry more than one rotation
/// out is simply re-scheduled when its bucket comes around early.
#[derive(Debug)]
pub(crate) struct TimeoutWheel {
    start: Instant,
    /// Last tick whose bucket has been drained.
    swept: u64,
    buckets: Vec<Vec<(u16, u32)>>,
}

impl TimeoutWheel {
    pub(crate) const BUCKETS: usize = 64;
    /// Bucket granularity; also the sweeper's poll interval. Coarse on
    /// purpose: expiry a few ms late is invisible next to a 250 ms
    /// timeout, and coarse ticks keep the sweeper nearly idle.
    pub(crate) const TICK: Duration = Duration::from_millis(16);

    pub(crate) fn new(start: Instant) -> TimeoutWheel {
        TimeoutWheel {
            start,
            swept: 0,
            buckets: (0..Self::BUCKETS).map(|_| Vec::new()).collect(),
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.start).as_millis() as u64 / Self::TICK.as_millis() as u64
    }

    /// Schedules `(id, attempt)` to surface no earlier than `deadline`
    /// (never in an already-swept tick).
    pub(crate) fn schedule(&mut self, id: u16, attempt: u32, deadline: Instant) {
        let tick = self.tick_of(deadline).max(self.swept + 1);
        let bucket = (tick % Self::BUCKETS as u64) as usize;
        self.buckets[bucket].push((id, attempt));
    }

    /// Drains every bucket whose tick has passed into `out`. Callers must
    /// validate each candidate against the pending table (and re-schedule
    /// entries whose true deadline is still in the future).
    pub(crate) fn due(&mut self, now: Instant, out: &mut Vec<(u16, u32)>) {
        let current = self.tick_of(now);
        while self.swept < current {
            self.swept += 1;
            let bucket = (self.swept % Self::BUCKETS as u64) as usize;
            out.append(&mut self.buckets[bucket]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_enabled_and_retains_wires() {
        let p = RetryPolicy::default();
        assert!(p.is_enabled());
        assert!(p.retains_wire());
        assert!(p.max_udp_retries > 0);
    }

    #[test]
    fn disabled_policy_tracks_nothing() {
        let p = RetryPolicy::disabled();
        assert!(!p.is_enabled());
        assert!(!p.retains_wire());
        assert_eq!(p.max_udp_retries, 0);
        assert_eq!(p.tcp_reconnect_attempts, 1);
    }

    #[test]
    fn wheel_surfaces_entries_only_after_their_tick() {
        let start = Instant::now();
        let mut w = TimeoutWheel::new(start);
        w.schedule(7, 0, start + Duration::from_millis(100));
        let mut out = Vec::new();
        w.due(start + Duration::from_millis(50), &mut out);
        assert!(out.is_empty(), "surfaced {out:?} before deadline tick");
        w.due(start + Duration::from_millis(200), &mut out);
        assert_eq!(out, vec![(7, 0)]);
        // Drained: not surfaced twice.
        out.clear();
        w.due(start + Duration::from_millis(400), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn wheel_never_schedules_into_swept_ticks() {
        let start = Instant::now();
        let mut w = TimeoutWheel::new(start);
        let mut out = Vec::new();
        w.due(start + Duration::from_millis(500), &mut out);
        // A deadline in the already-swept past still surfaces on the next
        // tick rather than being lost in a drained bucket.
        w.schedule(3, 1, start + Duration::from_millis(100));
        w.due(start + Duration::from_millis(600), &mut out);
        assert_eq!(out, vec![(3, 1)]);
    }

    #[test]
    fn wheel_far_future_entries_survive_rotations() {
        let start = Instant::now();
        let mut w = TimeoutWheel::new(start);
        // Two full rotations out: the entry's bucket is visited early
        // (one rotation in); the caller re-schedules it then, so `due`
        // must surface it at least once before the true deadline — and
        // the re-schedule keeps it alive.
        let deadline = start + TimeoutWheel::TICK * (TimeoutWheel::BUCKETS as u32 * 2 + 3);
        w.schedule(9, 0, deadline);
        let mut out = Vec::new();
        w.due(
            start + TimeoutWheel::TICK * (TimeoutWheel::BUCKETS as u32 + 5),
            &mut out,
        );
        assert_eq!(out, vec![(9, 0)], "bucket visited one rotation early");
        // Caller sees the true deadline is future and re-schedules.
        out.clear();
        w.schedule(9, 0, deadline);
        w.due(deadline + TimeoutWheel::TICK, &mut out);
        assert_eq!(out, vec![(9, 0)]);
    }

    #[test]
    fn counters_fold_into_shard_stats() {
        let c = FaultCounters::default();
        c.timeouts.store(4, Ordering::Relaxed);
        c.retries.store(3, Ordering::Relaxed);
        c.reconnects.store(2, Ordering::Relaxed);
        c.gave_up.store(1, Ordering::Relaxed);
        c.errors.store(5, Ordering::Relaxed);
        let mut s = ShardStats::new(0);
        c.fold_into(&mut s);
        assert_eq!(
            (s.timeouts, s.retries, s.reconnects, s.gave_up, s.errors),
            (4, 3, 2, 1, 5)
        );
    }
}
