//! The live replay engine (tokio, real sockets) — the implementation
//! behind the §4 fidelity and throughput experiments.
//!
//! Architecture (Figure 4 of the paper): the Controller's Reader preloads
//! the query stream and its Postman distributes records with same-source
//! affinity to Distributors, which feed Queriers. The paper runs these as
//! processes across hosts connected by TCP; here they are tokio tasks
//! connected by channels — the dataflow (two-level sticky distribution,
//! time-sync broadcast, per-querier scheduling) is the same, and the
//! throughput experiment (§4.3) measures the same per-core replay limits.
//!
//! Queriers keep one socket per original source (capped, LRU-less: sources
//! beyond the cap share by hash) so same-source queries reuse a socket,
//! and one TCP connection per source with reuse (§2.6). Timing uses
//! [`ReplayClock`] with a hybrid coarse-sleep + spin for sub-millisecond
//! accuracy.

use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::UdpSocket;
use tokio::sync::mpsc;
use tokio::task::JoinHandle;

use ldp_trace::{Protocol, TraceRecord};

use crate::plan::ReplayPlan;
use crate::timing::ReplayClock;

/// How the engine paces queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayMode {
    /// Faithful trace timing (optionally scaled).
    Timed { speed: f64 },
    /// As fast as possible (load testing, §4.3).
    Fast,
}

/// Per-query result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Query time relative to trace start (µs).
    pub trace_offset_us: u64,
    /// Actual send time relative to the replay epoch (µs).
    pub sent_offset_us: u64,
    /// Response latency, if an answer arrived (µs).
    pub latency_us: Option<u64>,
    /// Original source address.
    pub src: IpAddr,
    pub protocol: Protocol,
}

/// Full replay result.
#[derive(Debug)]
pub struct ReplayReport {
    pub outcomes: Vec<ReplayOutcome>,
    /// Wall-clock duration of the sending phase (µs).
    pub send_duration_us: u64,
    pub sent: u64,
    pub answered: u64,
}

impl ReplayReport {
    /// Timing errors in milliseconds (sent − target), Figure 6's metric.
    pub fn timing_errors_ms(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| (o.sent_offset_us as f64 - o.trace_offset_us as f64) / 1000.0)
            .collect()
    }

    /// Replayed inter-arrival times in seconds (Figure 7's metric).
    pub fn replayed_interarrivals_s(&self) -> Vec<f64> {
        let mut sent: Vec<u64> = self.outcomes.iter().map(|o| o.sent_offset_us).collect();
        sent.sort_unstable();
        sent.windows(2)
            .map(|w| (w[1] - w[0]) as f64 / 1e6)
            .collect()
    }

    /// Achieved send rate (q/s) over the sending phase (Figure 9's metric).
    pub fn achieved_qps(&self) -> f64 {
        if self.send_duration_us == 0 {
            return 0.0;
        }
        self.sent as f64 / (self.send_duration_us as f64 / 1e6)
    }

    /// Response latencies in milliseconds.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.latency_us)
            .map(|us| us as f64 / 1000.0)
            .collect()
    }
}

/// Live replay configuration.
#[derive(Debug, Clone)]
pub struct LiveReplay {
    /// Target server (the system under test).
    pub server: SocketAddr,
    pub mode: ReplayMode,
    /// Distribution-tree shape; total queriers = product.
    pub distributors: usize,
    pub queriers_per_distributor: usize,
    /// Max distinct UDP sockets per querier (sources beyond share).
    pub max_sockets_per_querier: usize,
    /// How long to wait for in-flight answers after the last send.
    pub drain: Duration,
}

impl LiveReplay {
    /// Sensible defaults for loopback experiments: the paper's prototype
    /// shape (1 distributor × 6 queriers).
    pub fn new(server: SocketAddr) -> LiveReplay {
        LiveReplay {
            server,
            mode: ReplayMode::Timed { speed: 1.0 },
            distributors: 1,
            queriers_per_distributor: 6,
            max_sockets_per_querier: 128,
            drain: Duration::from_millis(300),
        }
    }

    /// Runs the replay to completion.
    pub async fn run(&self, records: Vec<TraceRecord>) -> std::io::Result<ReplayReport> {
        let trace_epoch_us = records.first().map(|r| r.time_us).unwrap_or(0);

        // Controller: Reader (the records Vec is the preloaded window) +
        // Postman (sticky two-level distribution).
        let mut plan = ReplayPlan::new(self.distributors, self.queriers_per_distributor);
        let partitions = plan.partition(records, |r| r.src);

        // Distributor layer: forward each partition over a channel, as the
        // paper's distributor processes do over TCP.
        let mut handles: Vec<JoinHandle<std::io::Result<Vec<ReplayOutcome>>>> = Vec::new();
        // The shared epoch (the time-sync broadcast value). Taken just
        // before spawning so offsets are measured on one clock; the few
        // microseconds of spawn skew show up as (tiny) positive timing
        // error, which the fidelity experiments' warmup window absorbs.
        let epoch = Instant::now();
        for part in partitions {
            if part.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel::<TraceRecord>(1024);
            tokio::spawn(async move {
                for rec in part {
                    if tx.send(rec).await.is_err() {
                        break;
                    }
                }
            });
            handles.push(tokio::spawn(self.querier(trace_epoch_us, epoch).run(rx)));
        }

        self.collect(handles).await
    }

    /// Streaming variant: replays records pulled incrementally from a
    /// trace reader, never holding the whole trace in memory. This is the
    /// paper's §3 Reader: a bounded read-ahead window (the channel
    /// capacity) keeps input processing from falling behind real time
    /// while capping memory for multi-gigabyte traces. The reader runs on
    /// a blocking thread; routing stays sticky per source.
    pub async fn run_stream<I>(&self, records: I) -> std::io::Result<ReplayReport>
    where
        I: Iterator<Item = Result<TraceRecord, ldp_trace::TraceError>> + Send + 'static,
    {
        let mut plan = ReplayPlan::new(self.distributors, self.queriers_per_distributor);
        let n_queriers = plan.querier_count();

        // The reader must see the first record to latch the trace epoch
        // before any querier starts; peel it off eagerly.
        let mut records = records;
        let first = match records.next() {
            None => return self.collect(Vec::new()).await,
            Some(Err(e)) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                ))
            }
            Some(Ok(rec)) => rec,
        };
        let trace_epoch_us = first.time_us;
        let epoch = Instant::now();

        let mut txs = Vec::with_capacity(n_queriers);
        let mut handles: Vec<JoinHandle<std::io::Result<Vec<ReplayOutcome>>>> = Vec::new();
        for _ in 0..n_queriers {
            let (tx, rx) = mpsc::channel::<TraceRecord>(PRELOAD_WINDOW);
            txs.push(tx);
            handles.push(tokio::spawn(self.querier(trace_epoch_us, epoch).run(rx)));
        }

        // Reader + Postman on a blocking thread: decode, route sticky,
        // push with backpressure (blocking_send parks the reader when a
        // querier's window is full — the pre-load bound).
        let reader = tokio::task::spawn_blocking(move || {
            let (_, _, idx) = plan.route(first.src);
            if txs[idx].blocking_send(first).is_err() {
                return;
            }
            for rec in records {
                let Ok(rec) = rec else { return };
                let (_, _, idx) = plan.route(rec.src);
                if txs[idx].blocking_send(rec).is_err() {
                    return;
                }
            }
        });

        let report = self.collect(handles).await;
        let _ = reader.await;
        report
    }

    fn querier(&self, trace_epoch_us: u64, epoch: Instant) -> QuerierTask {
        QuerierTask {
            server: self.server,
            mode: self.mode,
            trace_epoch_us,
            clock: ReplayClock::synchronize(trace_epoch_us, 0).with_speed(match self.mode {
                ReplayMode::Timed { speed } => speed,
                ReplayMode::Fast => 1.0,
            }),
            epoch,
            max_sockets: self.max_sockets_per_querier,
            drain: self.drain,
        }
    }

    async fn collect(
        &self,
        handles: Vec<JoinHandle<std::io::Result<Vec<ReplayOutcome>>>>,
    ) -> std::io::Result<ReplayReport> {
        let mut outcomes = Vec::new();
        for h in handles {
            let joined = h
                .await
                .map_err(|e| std::io::Error::other(format!("querier task failed: {e}")))?;
            outcomes.extend(joined?);
        }
        let send_duration_us = outcomes
            .iter()
            .map(|o| o.sent_offset_us)
            .max()
            .unwrap_or(0)
            .saturating_sub(outcomes.iter().map(|o| o.sent_offset_us).min().unwrap_or(0))
            .max(if outcomes.is_empty() { 0 } else { 1 });
        let sent = outcomes.len() as u64;
        let answered = outcomes.iter().filter(|o| o.latency_us.is_some()).count() as u64;
        Ok(ReplayReport {
            outcomes,
            send_duration_us,
            sent,
            answered,
        })
    }
}

/// The Reader's per-querier read-ahead window (records), bounding memory
/// for streamed traces while keeping queriers fed ahead of real time (§3).
const PRELOAD_WINDOW: usize = 4096;

/// Shared response bookkeeping: outcome slots + per-socket pending maps.
type Pending = Arc<Mutex<HashMap<u16, (usize, Instant)>>>;
type Latencies = Arc<Mutex<Vec<Option<u64>>>>;

struct QuerierTask {
    server: SocketAddr,
    mode: ReplayMode,
    trace_epoch_us: u64,
    clock: ReplayClock,
    epoch: Instant,
    max_sockets: usize,
    drain: Duration,
}

impl QuerierTask {
    async fn run(self, mut rx: mpsc::Receiver<TraceRecord>) -> std::io::Result<Vec<ReplayOutcome>> {
        let mut udp: Vec<(Arc<UdpSocket>, Pending)> = Vec::new();
        let mut udp_by_source: HashMap<IpAddr, usize> = HashMap::new();
        let mut tcp: HashMap<IpAddr, TcpConn> = HashMap::new();
        let mut recv_tasks: Vec<JoinHandle<()>> = Vec::new();

        let latencies: Latencies = Arc::new(Mutex::new(Vec::new()));
        let mut meta: Vec<(u64, u64, IpAddr, Protocol)> = Vec::new();
        let mut next_id: u16 = 0;
        #[cfg(debug_assertions)]
        let mut last_deadline_us: u64 = 0;

        while let Some(mut rec) = rx.recv().await {
            // Pace the send.
            let now_us = self.epoch.elapsed().as_micros() as u64;
            if let ReplayMode::Timed { .. } = self.mode {
                // Invariant: the plan feeds each querier records in trace
                // order, so real-clock deadlines are monotone — a regression
                // here would silently reorder the replayed stream.
                #[cfg(debug_assertions)]
                {
                    let deadline = self.clock.target_real_us(rec.time_us);
                    debug_assert!(
                        deadline >= last_deadline_us,
                        "deadline went backwards: {deadline} < {last_deadline_us}"
                    );
                    last_deadline_us = deadline;
                }
                if let Some(delay) = self.clock.delay_us(rec.time_us, now_us) {
                    sleep_until_precise(Instant::now() + Duration::from_micros(delay)).await;
                }
            }

            let outcome_idx = {
                let mut l = latencies.lock();
                l.push(None);
                l.len() - 1
            };
            next_id = next_id.wrapping_add(1);
            rec.message.header.id = next_id;
            let wire = match rec.message.to_bytes() {
                Ok(w) => w,
                Err(_) => continue,
            };

            let sent_at = Instant::now();
            match rec.protocol {
                Protocol::Udp => {
                    let slot = match udp_by_source.get(&rec.src) {
                        Some(&s) => s,
                        None => {
                            let s = if udp.len() < self.max_sockets {
                                let socket = Arc::new(UdpSocket::bind("127.0.0.1:0").await?);
                                let pending: Pending = Arc::new(Mutex::new(HashMap::new()));
                                recv_tasks.push(tokio::spawn(recv_udp(
                                    socket.clone(),
                                    pending.clone(),
                                    latencies.clone(),
                                )));
                                udp.push((socket, pending));
                                udp.len() - 1
                            } else {
                                // Cap reached: share sockets by source hash.
                                hash_ip(rec.src) % udp.len()
                            };
                            udp_by_source.insert(rec.src, s);
                            s
                        }
                    };
                    let (socket, pending) = &udp[slot];
                    pending.lock().insert(next_id, (outcome_idx, sent_at));
                    let _ = socket.send_to(&wire, self.server).await;
                }
                Protocol::Tcp | Protocol::Tls | Protocol::Quic => {
                    // Live mode carries TLS/QUIC as TCP: handshake
                    // emulation is a simulator concern; live TCP still
                    // exercises framing and connection reuse.
                    let needs_open = tcp.get(&rec.src).is_none_or(|c| c.dead);
                    if needs_open {
                        match TcpConn::open(self.server, latencies.clone()).await {
                            Ok(c) => {
                                tcp.insert(rec.src, c);
                            }
                            Err(_) => continue,
                        }
                    }
                    let Some(conn) = tcp.get_mut(&rec.src) else {
                        continue;
                    };
                    conn.pending.lock().insert(next_id, (outcome_idx, sent_at));
                    if conn.send(&wire).await.is_err() {
                        conn.dead = true;
                    }
                }
            }
            meta.push((
                rec.time_us.saturating_sub(self.trace_epoch_us),
                self.epoch.elapsed().as_micros() as u64,
                rec.src,
                rec.protocol,
            ));
        }

        tokio::time::sleep(self.drain).await;
        for t in &recv_tasks {
            t.abort();
        }
        for (_, conn) in tcp.iter() {
            conn.reader.abort();
        }

        let latencies = latencies.lock();
        Ok(meta
            .into_iter()
            .enumerate()
            .map(
                |(i, (trace_offset_us, sent_offset_us, src, protocol))| ReplayOutcome {
                    trace_offset_us,
                    sent_offset_us,
                    latency_us: latencies.get(i).copied().flatten(),
                    src,
                    protocol,
                },
            )
            .collect())
    }
}

fn hash_ip(ip: IpAddr) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    ip.hash(&mut h);
    h.finish() as usize
}

async fn recv_udp(socket: Arc<UdpSocket>, pending: Pending, latencies: Latencies) {
    let mut buf = vec![0u8; 65_535];
    loop {
        let Ok((len, _)) = socket.recv_from(&mut buf).await else {
            continue;
        };
        if len < 2 {
            continue;
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        if let Some((idx, sent_at)) = pending.lock().remove(&id) {
            let latency = sent_at.elapsed().as_micros() as u64;
            let mut l = latencies.lock();
            if let Some(slot) = l.get_mut(idx) {
                *slot = Some(latency);
            }
        }
    }
}

struct TcpConn {
    writer: tokio::net::tcp::OwnedWriteHalf,
    reader: JoinHandle<()>,
    pending: Pending,
    dead: bool,
}

impl TcpConn {
    async fn open(server: SocketAddr, latencies: Latencies) -> std::io::Result<TcpConn> {
        let stream = tokio::net::TcpStream::connect(server).await?;
        stream.set_nodelay(true)?;
        let (mut read_half, writer) = stream.into_split();
        let pending: Pending = Arc::new(Mutex::new(HashMap::new()));
        let pending_r = pending.clone();
        let reader = tokio::spawn(async move {
            loop {
                let mut lenbuf = [0u8; 2];
                if read_half.read_exact(&mut lenbuf).await.is_err() {
                    return;
                }
                let len = u16::from_be_bytes(lenbuf) as usize;
                let mut msg = vec![0u8; len];
                if read_half.read_exact(&mut msg).await.is_err() {
                    return;
                }
                if msg.len() < 2 {
                    continue;
                }
                let id = u16::from_be_bytes([msg[0], msg[1]]);
                if let Some((idx, sent_at)) = pending_r.lock().remove(&id) {
                    let latency = sent_at.elapsed().as_micros() as u64;
                    let mut l = latencies.lock();
                    if let Some(slot) = l.get_mut(idx) {
                        *slot = Some(latency);
                    }
                }
            }
        });
        Ok(TcpConn {
            writer,
            reader,
            pending,
            dead: false,
        })
    }

    async fn send(&mut self, wire: &[u8]) -> std::io::Result<()> {
        let framed = ldp_wire::framing::frame_message(wire)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "oversized"))?;
        self.writer.write_all(&framed).await
    }
}

/// Coarse sleep to within ~1.5 ms of the target, then a *yielding* spin —
/// tokio's timer wheel alone is too coarse for the ±2.5 ms quartile errors
/// the paper reports, but a blocking spin would starve the other queriers
/// sharing the worker pool (fatal on single-core hosts: every spin blocks
/// every other querier's sends). `yield_now` re-polls the deadline each
/// scheduler pass, so concurrent queriers interleave at ~µs granularity.
async fn sleep_until_precise(target: Instant) {
    const SPIN_WINDOW: Duration = Duration::from_micros(1500);
    if let Some(coarse) = target.checked_sub(SPIN_WINDOW) {
        if Instant::now() < coarse {
            tokio::time::sleep_until(coarse.into()).await;
        }
    }
    while Instant::now() < target {
        tokio::task::yield_now().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_server::auth::AuthEngine;
    use ldp_server::live::LiveServer;
    use ldp_wire::{Name, RrType};
    use ldp_workload::zones::wildcard_example_zone;
    use ldp_zone::ZoneSet;

    fn engine() -> Arc<AuthEngine> {
        let mut set = ZoneSet::new();
        set.insert(wildcard_example_zone());
        Arc::new(AuthEngine::with_zones(Arc::new(set)))
    }

    fn trace(n: u64, gap_us: u64, protocol: Protocol) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                let mut rec = TraceRecord::udp_query(
                    i * gap_us,
                    format!("10.0.0.{}", 1 + i % 5).parse().unwrap(),
                    (1024 + i % 60000) as u16,
                    Name::parse(&format!("q{i}.example.com")).unwrap(),
                    RrType::A,
                );
                rec.protocol = protocol;
                rec
            })
            .collect()
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn udp_replay_answers_and_times() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let replay = LiveReplay::new(server.addr);
        let report = replay.run(trace(200, 2_000, Protocol::Udp)).await.unwrap();
        assert_eq!(report.sent, 200);
        assert!(
            report.answered >= 195,
            "answered only {}/200",
            report.answered
        );
        // Timing errors should be tiny on loopback.
        let errors = report.timing_errors_ms();
        let max_err = errors.iter().cloned().fold(0.0f64, f64::max);
        assert!(max_err < 50.0, "max timing error {max_err} ms");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn fast_mode_outruns_trace_timing() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut replay = LiveReplay::new(server.addr);
        replay.mode = ReplayMode::Fast;
        // Trace nominally spans 10s; fast mode must finish way earlier.
        let t0 = Instant::now();
        let report = replay.run(trace(500, 20_000, Protocol::Udp)).await.unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert_eq!(report.sent, 500);
        assert!(report.achieved_qps() > 500.0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn tcp_replay_reuses_connections() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut replay = LiveReplay::new(server.addr);
        replay.mode = ReplayMode::Fast;
        let report = replay.run(trace(100, 1_000, Protocol::Tcp)).await.unwrap();
        assert_eq!(report.sent, 100);
        assert!(report.answered >= 95, "answered {}", report.answered);
        // 100 queries from 5 distinct sources: connections ≪ queries.
        let conns = server
            .stats
            .tcp_connections
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(conns <= 10, "expected ≤10 connections, saw {conns}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn streamed_replay_from_encoded_trace() {
        // Round-trip through the on-disk stream format and replay without
        // materializing the trace (the §3 Reader pre-load path).
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let records = trace(300, 1_000, Protocol::Udp);
        let bytes = ldp_trace::stream::to_bytes(&records).unwrap();
        let reader = ldp_trace::stream::StreamReader::new(std::io::Cursor::new(bytes)).unwrap();
        let mut replay = LiveReplay::new(server.addr);
        replay.mode = ReplayMode::Fast;
        replay.drain = Duration::from_millis(800);
        let report = replay.run_stream(reader).await.unwrap();
        assert_eq!(report.sent, 300);
        // Fast-blasting 300 UDP datagrams while sibling tests contend for
        // the same core can overflow socket buffers; require a strong
        // majority rather than near-perfection.
        assert!(report.answered >= 240, "answered {}", report.answered);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn streamed_replay_empty_input() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let report = LiveReplay::new(server.addr)
            .run_stream(std::iter::empty())
            .await
            .unwrap();
        assert_eq!(report.sent, 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn empty_trace_is_fine() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let report = LiveReplay::new(server.addr).run(vec![]).await.unwrap();
        assert_eq!(report.sent, 0);
        assert_eq!(report.achieved_qps(), 0.0);
    }
}
