//! The live replay engine (tokio, real sockets) — the implementation
//! behind the §4 fidelity and throughput experiments.
//!
//! Architecture (Figure 4 of the paper), rebuilt as a sharded batched
//! pipeline: the Controller's **Reader** decodes trace records and its
//! **Postman** routes them with same-source affinity through a
//! [`Batcher`], moving whole batches over bounded channels to one
//! **Querier** per shard. The paper runs these as processes across hosts
//! connected by TCP; here they are tokio tasks connected by channels —
//! the dataflow (sticky distribution, time-sync broadcast, per-querier
//! scheduling) is the same, and the throughput experiment (§4.3) measures
//! the same per-core replay limits.
//!
//! Batching is the hot-path lever: a channel hand-off costs a lock +
//! wakeup, so moving `batch_size` records per hand-off amortizes that
//! cost to near zero, and each querier drains a whole batch per wakeup —
//! reserving outcome slots once per batch and, in [`ReplayMode::Fast`],
//! coalescing consecutive same-source sends onto one socket lookup and
//! one pending-map lock (TCP runs additionally collapse into a single
//! write). [`ReplayMode::Timed`] still paces *every record* through
//! [`ReplayClock`]'s hybrid coarse-sleep + spin, so fidelity is
//! unchanged while input-side overhead shrinks.
//!
//! Queriers keep one socket per original source (capped, LRU-less:
//! sources beyond the cap share by hash) so same-source queries reuse a
//! socket, and one TCP connection per source with reuse (§2.6). Each
//! shard exports [`ShardStats`] — sent/answered/late counts, queue
//! depths, postman stalls — so the Figure 9 experiments can see *where*
//! the pipeline saturates.

use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::UdpSocket;
use tokio::sync::mpsc;
use tokio::task::JoinHandle;

use ldp_metrics::ShardStats;
use ldp_obs::{ReplaySpans, Stage};
use ldp_trace::{Protocol, TraceRecord};

use crate::plan::{Batcher, ReplayPlan};
use crate::retry::{FaultCounters, RetryPolicy};
use crate::timing::ReplayClock;

/// How the engine paces queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayMode {
    /// Faithful trace timing, optionally scaled by `speed`.
    ///
    /// `speed` multiplies inter-query delays, so **smaller is faster**:
    /// `0.5` replays in half the wall time (twice as fast), `2.0` in
    /// double (half speed). See [`ReplayClock::with_speed`] for the
    /// convention and DESIGN.md's replay section for why it is delay-
    /// scaling rather than a speedup factor.
    Timed { speed: f64 },
    /// As fast as possible (load testing, §4.3).
    Fast,
}

/// Why a trace record degraded to an unsent (or unanswerable) outcome
/// instead of aborting the replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The querier could not bind a UDP socket for the record's source.
    Bind,
    /// TCP connect (including every reconnect attempt) failed.
    Connect,
    /// The kernel refused the send.
    Send,
}

/// Per-query result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Query time relative to trace start (µs, unscaled trace timeline).
    pub trace_offset_us: u64,
    /// Scheduled send time relative to the replay epoch (µs) — the trace
    /// offset *after* speed scaling, i.e. the deadline the engine aimed
    /// for. Equal to `trace_offset_us` at speed 1.0 and in `Fast` mode.
    pub target_offset_us: u64,
    /// Actual send time relative to the replay epoch (µs).
    pub sent_offset_us: u64,
    /// Response latency, if an answer arrived (µs).
    pub latency_us: Option<u64>,
    /// Original source address.
    pub src: IpAddr,
    pub protocol: Protocol,
    /// Replay-side failure, if the record never (successfully) went on
    /// the wire. Errored outcomes are excluded from `sent`.
    pub error: Option<ReplayError>,
}

/// Full replay result.
#[derive(Debug)]
pub struct ReplayReport {
    pub outcomes: Vec<ReplayOutcome>,
    /// Wall-clock duration of the sending phase (µs).
    pub send_duration_us: u64,
    pub sent: u64,
    pub answered: u64,
    /// Attempt expiries (every attempt counts, including the last).
    pub timeouts: u64,
    /// UDP retransmits put on the wire (never counted in `sent`).
    pub retries: u64,
    /// TCP connections reopened after a previous one died.
    pub reconnects: u64,
    /// Queries abandoned after exhausting every attempt.
    pub gave_up: u64,
    /// Records degraded to [`ReplayError`] outcomes.
    pub errors: u64,
    /// Per-shard pipeline saturation counters, one entry per querier.
    pub shards: Vec<ShardStats>,
}

impl ReplayReport {
    /// Timing errors in milliseconds (sent − scheduled target), Figure
    /// 6's metric. The target is the *scaled* trace offset, so errors are
    /// meaningful at any `Timed` speed — comparing against the raw trace
    /// offset would misreport every `speed != 1.0` run by the scaling
    /// factor.
    pub fn timing_errors_ms(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| (o.sent_offset_us as f64 - o.target_offset_us as f64) / 1000.0)
            .collect()
    }

    /// Replayed inter-arrival times in seconds (Figure 7's metric).
    pub fn replayed_interarrivals_s(&self) -> Vec<f64> {
        let mut sent: Vec<u64> = self.outcomes.iter().map(|o| o.sent_offset_us).collect();
        sent.sort_unstable();
        sent.windows(2)
            .map(|w| (w[1] - w[0]) as f64 / 1e6)
            .collect()
    }

    /// Achieved send rate (q/s) over the sending phase (Figure 9's metric).
    pub fn achieved_qps(&self) -> f64 {
        if self.send_duration_us == 0 {
            return 0.0;
        }
        self.sent as f64 / (self.send_duration_us as f64 / 1e6)
    }

    /// Response latencies in milliseconds.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.latency_us)
            .map(|us| us as f64 / 1000.0)
            .collect()
    }

    /// Answered-query latencies folded into a log-bucketed histogram
    /// (µs ticks) — the fixed-memory form run manifests carry.
    pub fn latency_hist(&self) -> ldp_metrics::LogHistogram {
        let mut h = ldp_metrics::LogHistogram::new();
        for us in self.outcomes.iter().filter_map(|o| o.latency_us) {
            h.record(us);
        }
        h
    }
}

/// JSON form of a report: the aggregate counters and per-shard stats,
/// *without* the per-query outcome vector (potentially millions of
/// entries — figure binaries derive what they need and drop it). Field
/// names are schema: golden tests pin them, `results/BENCH_*.json`
/// comparisons depend on them.
impl serde::Serialize for ReplayReport {
    fn to_json_value(&self) -> serde::Value {
        serde_json::json!({
            "send_duration_us": self.send_duration_us,
            "sent": self.sent,
            "answered": self.answered,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "reconnects": self.reconnects,
            "gave_up": self.gave_up,
            "errors": self.errors,
            "shards": self.shards,
        })
    }
}

/// What each querier task resolves to: its outcomes plus shard counters.
/// Infallible by design — querier-level faults degrade to per-record
/// [`ReplayError`] outcomes rather than aborting the replay.
type QuerierResult = (Vec<ReplayOutcome>, ShardStats);

/// Live replay configuration.
#[derive(Debug, Clone)]
pub struct LiveReplay {
    /// Target server (the system under test).
    pub server: SocketAddr,
    pub mode: ReplayMode,
    /// Distribution-tree shape; total queriers = product.
    pub distributors: usize,
    pub queriers_per_distributor: usize,
    /// Max distinct UDP sockets per querier (sources beyond share).
    pub max_sockets_per_querier: usize,
    /// Records per pipeline batch: the unit the Postman hands a querier.
    /// Larger batches amortize channel hand-offs further; `Timed` replays
    /// flush partial batches on a trace-time horizon regardless, so
    /// pacing never waits on batch fill.
    pub batch_size: usize,
    /// Hard cap on waiting for in-flight answers after the last send.
    /// The drain is adaptive: a querier exits as soon as its in-flight
    /// table empties (answered, retried out, or expired), so this bound
    /// only bites when expiry is disabled or answers are still pending.
    pub drain: Duration,
    /// Timeout/retransmit/reconnect policy (see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// Optional live send counter: queriers add each drained batch's send
    /// count here, so a long-running replay can be rate-sampled from the
    /// outside (the §4.3 experiment reads it every two seconds) without
    /// waiting for the final report.
    pub progress: Option<Arc<AtomicU64>>,
    /// Optional span sink ([`ReplaySpans`]): when set, every pipeline
    /// stage a (sampled) query passes through — read, batched, scheduled,
    /// sent, retry, answered, gave-up — is recorded with a microsecond
    /// timestamp on the shared replay epoch, so outcomes decompose into
    /// batch-wait, queue-wait, send-lag, and wire+server time. `None`
    /// (the default) costs one branch per stage. Typically populated via
    /// [`ReplaySpans::from_env`] (`LDP_OBS_SAMPLE`).
    pub obs: Option<Arc<ReplaySpans>>,
    /// Optional live-telemetry registry: when set, each shard registers
    /// per-shard counters (sent/answered/send-lag, fault totals) and
    /// gauges (queue depth, in-flight) at startup, then bumps atomics —
    /// one relaxed `fetch_add` per drained batch on the send side, one
    /// per answer on the receive side. `None` (the default) costs one
    /// branch per batch; the pacing loop itself is untouched either way.
    pub telemetry: Option<Arc<ldp_telemetry::Registry>>,
}

impl LiveReplay {
    /// Sensible defaults for loopback experiments: the paper's prototype
    /// shape (1 distributor × 6 queriers).
    pub fn new(server: SocketAddr) -> LiveReplay {
        LiveReplay {
            server,
            mode: ReplayMode::Timed { speed: 1.0 },
            distributors: 1,
            queriers_per_distributor: 6,
            max_sockets_per_querier: 128,
            batch_size: 256,
            drain: Duration::from_millis(300),
            retry: RetryPolicy::default(),
            progress: None,
            obs: None,
            telemetry: None,
        }
    }

    /// Runs the replay to completion. The records `Vec` is the Reader's
    /// fully preloaded window; routing and batching are identical to
    /// [`LiveReplay::run_stream`].
    pub async fn run(&self, records: Vec<TraceRecord>) -> std::io::Result<ReplayReport> {
        self.run_stream(records.into_iter().map(Ok)).await
    }

    /// Streaming variant: replays records pulled incrementally from a
    /// trace reader, never holding the whole trace in memory. This is the
    /// paper's §3 Reader: a bounded read-ahead window (`QUEUE_BATCHES`
    /// batches of `batch_size` records per querier) keeps input
    /// processing from falling behind real time while capping memory for
    /// multi-gigabyte traces. The Reader+Postman run on a blocking
    /// thread; routing stays sticky per source, and spines recycle back
    /// from queriers so steady-state batching is allocation-free.
    pub async fn run_stream<I>(&self, records: I) -> std::io::Result<ReplayReport>
    where
        I: Iterator<Item = Result<TraceRecord, ldp_trace::TraceError>> + Send + 'static,
    {
        let plan = ReplayPlan::new(self.distributors, self.queriers_per_distributor);
        let n_queriers = plan.querier_count();

        // The reader must see the first record to latch the trace epoch
        // before any querier starts; peel it off eagerly.
        let mut records = records;
        let first = match records.next() {
            None => return self.collect(Vec::new(), None).await,
            Some(Err(e)) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                ))
            }
            Some(Ok(rec)) => rec,
        };
        let trace_epoch_us = first.time_us;
        // The shared epoch (the time-sync broadcast value). Taken just
        // before spawning so offsets are measured on one clock; the few
        // microseconds of spawn skew show up as (tiny) positive timing
        // error, which the fidelity experiments' warmup window absorbs.
        let epoch = Instant::now();

        // Spine recycling: queriers return drained batch Vecs here; the
        // postman feeds them back into the batcher's spare pool.
        let (recycle_tx, mut recycle_rx) =
            mpsc::channel::<Vec<TraceRecord>>(n_queriers * QUEUE_BATCHES);

        let mut txs = Vec::with_capacity(n_queriers);
        let mut depths: Vec<Arc<AtomicUsize>> = Vec::with_capacity(n_queriers);
        let mut handles = Vec::with_capacity(n_queriers);
        for shard in 0..n_queriers {
            let (tx, rx) = mpsc::channel::<Vec<TraceRecord>>(QUEUE_BATCHES);
            let depth = Arc::new(AtomicUsize::new(0));
            if let Some(reg) = &self.telemetry {
                let d = depth.clone();
                reg.observe_gauge(
                    "ldp_replay_queue_depth",
                    "Batches queued at the querier (Postman backlog)",
                    &[("shard", &shard.to_string())],
                    move || d.load(Ordering::Relaxed) as u64,
                );
            }
            txs.push(tx);
            depths.push(depth.clone());
            handles.push(tokio::spawn(
                self.querier(shard, trace_epoch_us, epoch)
                    .run(rx, depth, recycle_tx.clone()),
            ));
        }
        drop(recycle_tx);

        let batch_size = self.batch_size.max(1);
        let horizon_us = match self.mode {
            // Never hold a timed record hostage to a slow-filling batch:
            // flush anything older than the horizon in trace time.
            ReplayMode::Timed { .. } => BATCH_HORIZON_US,
            ReplayMode::Fast => u64::MAX,
        };

        // Reader + Postman on a blocking thread: decode, route sticky,
        // batch, push with backpressure (a full querier queue parks the
        // reader — the pre-load bound). Returns the postman-side shard
        // counters: stalls and queue-depth observations.
        let spans = self.obs.clone();
        let postman = tokio::task::spawn_blocking(move || {
            let mut pstats: Vec<ShardStats> = (0..n_queriers).map(ShardStats::new).collect();
            let mut batcher: Batcher<TraceRecord> = Batcher::new(plan, batch_size, horizon_us);
            let mut flushes: Vec<(usize, Vec<TraceRecord>)> = Vec::new();
            // Per-shard record ordinals: `read_seq[q]` counts records
            // routed to shard q (the Read stamp), `batched_seq[q]` counts
            // records flushed toward it (the Batched stamp). Channels are
            // FIFO and batches preserve input order, so these ordinals
            // are exactly the querier's latency-slot indices.
            let mut read_seq = vec![0u64; n_queriers];
            let mut batched_seq = vec![0u64; n_queriers];

            let mut deliver = |q: usize, batch: Vec<TraceRecord>, pstats: &mut Vec<ShardStats>| {
                if let Some(spans) = &spans {
                    let t_us = epoch.elapsed().as_micros() as u64;
                    let from = batched_seq[q];
                    spans.record_range(q, from..from + batch.len() as u64, Stage::Batched, t_us);
                }
                batched_seq[q] += batch.len() as u64;
                let observed = depths[q].load(Ordering::Relaxed);
                let observed = u32::try_from(observed).unwrap_or(u32::MAX);
                pstats[q].depths.push(observed);
                pstats[q].max_queue_depth = pstats[q].max_queue_depth.max(observed);
                match txs[q].try_send(batch) {
                    Ok(()) => {
                        depths[q].fetch_add(1, Ordering::Relaxed);
                    }
                    Err(mpsc::error::SendError(batch)) => {
                        // Full (or closed): count the stall, then block.
                        pstats[q].postman_stalls += 1;
                        if txs[q].blocking_send(batch).is_ok() {
                            depths[q].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            };
            let read = |q: usize, read_seq: &mut Vec<u64>| {
                if let Some(spans) = &spans {
                    let t_us = epoch.elapsed().as_micros() as u64;
                    spans.record(q, read_seq[q], Stage::Read, t_us);
                }
                read_seq[q] += 1;
            };

            let q = batcher.push(first.src, first.time_us, first, &mut flushes);
            read(q, &mut read_seq);
            for (q, batch) in flushes.drain(..) {
                deliver(q, batch, &mut pstats);
            }
            for rec in records {
                let Ok(rec) = rec else { break };
                let q = batcher.push(rec.src, rec.time_us, rec, &mut flushes);
                read(q, &mut read_seq);
                for (q, batch) in flushes.drain(..) {
                    deliver(q, batch, &mut pstats);
                }
                while let Some(spine) = recycle_rx.try_recv() {
                    batcher.donate(spine);
                }
            }
            for (q, batch) in batcher.finish() {
                deliver(q, batch, &mut pstats);
            }
            pstats
        });

        self.collect(handles, Some(postman)).await
    }

    fn querier(&self, shard: usize, trace_epoch_us: u64, epoch: Instant) -> QuerierTask {
        QuerierTask {
            shard,
            server: self.server,
            mode: self.mode,
            trace_epoch_us,
            clock: ReplayClock::synchronize(trace_epoch_us, 0).with_speed(match self.mode {
                ReplayMode::Timed { speed } => speed,
                ReplayMode::Fast => 1.0,
            }),
            epoch,
            max_sockets: self.max_sockets_per_querier,
            drain: self.drain,
            retry: self.retry.clone(),
            progress: self.progress.clone(),
            obs: self.obs.as_ref().map(|spans| ObsCtx {
                spans: spans.clone(),
                shard,
                epoch,
            }),
            telemetry: self.telemetry.clone(),
        }
    }

    async fn collect(
        &self,
        handles: Vec<JoinHandle<QuerierResult>>,
        postman: Option<JoinHandle<Vec<ShardStats>>>,
    ) -> std::io::Result<ReplayReport> {
        let mut outcomes = Vec::new();
        let mut shards: Vec<ShardStats> = Vec::new();
        for h in handles {
            let (o, s) = h
                .await
                .map_err(|e| std::io::Error::other(format!("querier task failed: {e}")))?;
            outcomes.extend(o);
            shards.push(s);
        }
        shards.sort_by_key(|s| s.shard);
        if let Some(p) = postman {
            if let Ok(pstats) = p.await {
                for ps in pstats {
                    match shards.iter_mut().find(|s| s.shard == ps.shard) {
                        Some(s) => {
                            s.postman_stalls = ps.postman_stalls;
                            s.max_queue_depth = ps.max_queue_depth;
                            s.depths = ps.depths;
                        }
                        None => shards.push(ps),
                    }
                }
            }
        }
        let send_duration_us = outcomes
            .iter()
            .map(|o| o.sent_offset_us)
            .max()
            .unwrap_or(0)
            .saturating_sub(outcomes.iter().map(|o| o.sent_offset_us).min().unwrap_or(0))
            .max(if outcomes.is_empty() { 0 } else { 1 });
        let sent = outcomes.iter().filter(|o| o.error.is_none()).count() as u64;
        let answered = outcomes.iter().filter(|o| o.latency_us.is_some()).count() as u64;
        let totals = ldp_metrics::PipelineTotals::from_shards(&shards);
        Ok(ReplayReport {
            outcomes,
            send_duration_us,
            sent,
            answered,
            timeouts: totals.timeouts,
            retries: totals.retries,
            reconnects: totals.reconnects,
            gave_up: totals.gave_up,
            errors: totals.errors,
            shards,
        })
    }
}

/// Bounded queue length per querier, in batches. With the default batch
/// size this gives the same ~4k-record read-ahead window as the previous
/// per-record channel, at 1/`batch_size` the synchronization cost.
const QUEUE_BATCHES: usize = 16;

/// `Timed`-mode partial batches flush once the input stream's trace time
/// has moved this far past their oldest record, so batch fill can never
/// delay a scheduled send (the reader runs well ahead of real time).
const BATCH_HORIZON_US: u64 = 100_000;

/// A `Timed` send is counted late in [`ShardStats`] when it misses its
/// scaled deadline by more than this (4× the paper's ±2.5 ms Figure 6
/// quartile window).
const LATE_BUDGET_US: u64 = 10_000;

/// Which transport an in-flight query went out on — what the timeout
/// sweeper needs to retransmit (UDP, by socket index) or give up (TCP;
/// reconnection is a send-path concern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SockRef {
    Udp(u32),
    Tcp,
}

/// Everything the receive and timeout paths need to know about one
/// outstanding query.
struct InFlight {
    /// Latency-slot index the answer lands in.
    slot: usize,
    /// Send time of the *latest* attempt (latency baseline).
    sent_at: Instant,
    /// When the current attempt expires; `None` when expiry is disabled.
    deadline: Option<Instant>,
    /// 0 on the first send; bumped per retransmit. Wheel entries carry
    /// the attempt they were scheduled for, so an answered-and-resent id
    /// can't be expired by a stale entry.
    attempt: u32,
    sock: SockRef,
    /// Encoded query for retransmission (UDP with retries enabled only —
    /// the no-retry hot path never clones wires).
    wire: Option<Box<[u8]>>,
}

/// Querier-wide in-flight table indexed by message id: a flat 65 536-slot
/// array instead of a `HashMap<u16, _>` — no hashing and no probing on
/// the two hottest operations (insert on send, take on answer). The
/// timeout wheel rides in the same struct so scheduling an expiry reuses
/// the lock the sender already holds.
struct PendingTable {
    slots: Vec<Option<InFlight>>,
    /// Outstanding queries; drives the adaptive post-send drain.
    in_flight: usize,
    wheel: crate::retry::TimeoutWheel,
}

impl PendingTable {
    fn new(start: Instant) -> PendingTable {
        PendingTable {
            slots: (0..1 << 16).map(|_| None).collect(),
            in_flight: 0,
            wheel: crate::retry::TimeoutWheel::new(start),
        }
    }

    /// Registers an in-flight id; a still-outstanding id that wrapped
    /// around is overwritten, matching the map behavior it replaced.
    fn insert(&mut self, id: u16, f: InFlight) {
        let deadline = f.deadline;
        let attempt = f.attempt;
        if let Some(slot) = self.slots.get_mut(id as usize) {
            if slot.replace(f).is_none() {
                self.in_flight += 1;
            }
        }
        if let Some(d) = deadline {
            self.wheel.schedule(id, attempt, d);
        }
    }

    fn remove(&mut self, id: u16) -> Option<InFlight> {
        let f = self.slots.get_mut(id as usize)?.take();
        if f.is_some() {
            self.in_flight -= 1;
        }
        f
    }

    /// Processes every due wheel entry: validates against the live table,
    /// re-schedules not-yet-due entries, retires exhausted queries
    /// (`gave_up`), and collects UDP retransmits into `resend` for the
    /// sweeper to put on the wire after releasing the lock.
    /// Span note: `Retry`/`GaveUp` events are recorded here, under the
    /// pending lock, rather than in the sweeper's async send path — sync
    /// code can't be interrupted by task abort, so the events can never
    /// be lost between the counter bump and the stamp. A `Retry` event
    /// marks the decision to retransmit; the datagram itself goes out
    /// (and `retries` is counted) after the lock is released.
    fn sweep(
        &mut self,
        now: Instant,
        policy: &RetryPolicy,
        counters: &FaultCounters,
        due: &mut Vec<(u16, u32)>,
        resend: &mut Vec<(u32, Box<[u8]>)>,
        obs: Option<&ObsCtx>,
    ) {
        due.clear();
        self.wheel.due(now, due);
        for &(id, attempt) in due.iter() {
            enum Action {
                Skip,
                Reschedule(Instant),
                Expire,
            }
            let action = match self.slots.get(id as usize).and_then(Option::as_ref) {
                // Answered (or the id was re-used): stale entry.
                Some(f) if f.attempt != attempt => Action::Skip,
                None => Action::Skip,
                Some(f) => match f.deadline {
                    // Bucket came around a rotation early (or jitter):
                    // keep the entry alive at its true deadline.
                    Some(d) if d > now => Action::Reschedule(d),
                    Some(_) => Action::Expire,
                    None => Action::Skip,
                },
            };
            match action {
                Action::Skip => {}
                Action::Reschedule(d) => self.wheel.schedule(id, attempt, d),
                Action::Expire => {
                    counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    let retryable = self
                        .slots
                        .get(id as usize)
                        .and_then(Option::as_ref)
                        .is_some_and(|f| {
                            matches!(f.sock, SockRef::Udp(_))
                                && f.attempt < policy.max_udp_retries
                                && f.wire.is_some()
                        });
                    if retryable {
                        if let Some(f) = self.slots.get_mut(id as usize).and_then(Option::as_mut) {
                            f.attempt += 1;
                            f.sent_at = now;
                            let d = now + policy.backoff.delay(f.attempt, u64::from(id));
                            f.deadline = Some(d);
                            if let (SockRef::Udp(s), Some(w)) = (f.sock, f.wire.as_ref()) {
                                resend.push((s, w.clone()));
                            }
                            if let Some(o) = obs {
                                o.record_instant(f.slot, Stage::Retry, now);
                            }
                            let a = f.attempt;
                            self.wheel.schedule(id, a, d);
                        }
                    } else {
                        // Out of attempts (or TCP): the server never
                        // answered this query.
                        if let Some(f) = self.remove(id) {
                            if let Some(o) = obs {
                                o.record_instant(f.slot, Stage::GaveUp, now);
                            }
                        }
                        counters.gave_up.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// Shared response bookkeeping: outcome slots + the querier's pending
/// table.
type Pending = Arc<Mutex<PendingTable>>;
type Latencies = Arc<Mutex<Vec<Option<u64>>>>;
/// Sweeper-visible registry of the querier's UDP sockets (indexed by
/// [`SockRef::Udp`]); grows only when a socket is created.
type SocketRegistry = Arc<Mutex<Vec<Arc<UdpSocket>>>>;

/// One querier's handle on the replay's span sink: the shard index and
/// the shared epoch are bound once so the hot paths record a stage with
/// a single call. A query's span key is its latency-slot index, which
/// equals its per-shard record ordinal — the same number the Postman
/// counts on the read side, so both halves of the pipeline stamp the
/// same span without any id exchange.
#[derive(Clone)]
struct ObsCtx {
    spans: Arc<ReplaySpans>,
    shard: usize,
    epoch: Instant,
}

impl ObsCtx {
    /// Records `stage` at an offset already measured on the epoch clock.
    fn record_at(&self, seq: usize, stage: Stage, t_us: u64) {
        self.spans.record(self.shard, seq as u64, stage, t_us);
    }

    /// Records `stage` at a captured instant (receive paths take one
    /// timestamp per batch and reuse it).
    fn record_instant(&self, seq: usize, stage: Stage, now: Instant) {
        self.record_at(
            seq,
            stage,
            now.saturating_duration_since(self.epoch).as_micros() as u64,
        );
    }
}

/// Per-send record: which latency slot the response will land in, plus
/// the timing fields the final [`ReplayOutcome`] reports.
struct Meta {
    slot: usize,
    trace_offset_us: u64,
    target_offset_us: u64,
    sent_offset_us: u64,
    src: IpAddr,
    protocol: Protocol,
    error: Option<ReplayError>,
}

struct QuerierTask {
    shard: usize,
    server: SocketAddr,
    mode: ReplayMode,
    trace_epoch_us: u64,
    clock: ReplayClock,
    epoch: Instant,
    max_sockets: usize,
    drain: Duration,
    retry: RetryPolicy,
    progress: Option<Arc<AtomicU64>>,
    obs: Option<ObsCtx>,
    telemetry: Option<Arc<ldp_telemetry::Registry>>,
}

/// One shard's telemetry handles, resolved once at querier start so the
/// batch loop pays a relaxed `fetch_add`, never a registry lookup. The
/// fault counters and in-flight depth are *observed* (closures over the
/// atomics the pipeline already maintains) rather than double-counted.
struct ShardTele {
    sent: ldp_telemetry::Counter,
    send_lag_us: ldp_telemetry::Counter,
    answered: ldp_telemetry::Counter,
}

impl ShardTele {
    fn register(
        reg: &ldp_telemetry::Registry,
        shard: usize,
        counters: &Arc<FaultCounters>,
        pending: &Pending,
    ) -> ShardTele {
        let shard_label = shard.to_string();
        let labels: [(&str, &str); 1] = [("shard", shard_label.as_str())];
        let sent = reg.counter_with("ldp_replay_sent_total", "Queries put on the wire", &labels);
        let send_lag_us = reg.counter_with(
            "ldp_replay_send_lag_us_total",
            "Cumulative actual-minus-scheduled send time in microseconds (Timed mode)",
            &labels,
        );
        let answered = reg.counter_with(
            "ldp_replay_answered_total",
            "Responses matched to an in-flight query",
            &labels,
        );
        let c = counters.clone();
        reg.observe_counter(
            "ldp_replay_timeouts_total",
            "Send attempts that hit their timeout",
            &labels,
            move || c.timeouts.load(Ordering::Relaxed),
        );
        let c = counters.clone();
        reg.observe_counter(
            "ldp_replay_retries_total",
            "UDP retransmissions put on the wire",
            &labels,
            move || c.retries.load(Ordering::Relaxed),
        );
        let c = counters.clone();
        reg.observe_counter(
            "ldp_replay_reconnects_total",
            "TCP connections reopened after death",
            &labels,
            move || c.reconnects.load(Ordering::Relaxed),
        );
        let c = counters.clone();
        reg.observe_counter(
            "ldp_replay_gave_up_total",
            "Queries retired with no answer after exhausting attempts",
            &labels,
            move || c.gave_up.load(Ordering::Relaxed),
        );
        let c = counters.clone();
        reg.observe_counter(
            "ldp_replay_errors_total",
            "Bind/connect/send failures degraded to error outcomes",
            &labels,
            move || c.errors.load(Ordering::Relaxed),
        );
        let p = pending.clone();
        reg.observe_gauge(
            "ldp_replay_in_flight",
            "Outstanding queries awaiting an answer or expiry",
            &labels,
            move || p.lock().in_flight as u64,
        );
        ShardTele {
            sent,
            send_lag_us,
            answered,
        }
    }
}

/// Socket/connection state one querier owns, factored out so the batch
/// loops can borrow it alongside the batch being drained.
struct QuerierState {
    server: SocketAddr,
    max_sockets: usize,
    udp: Vec<Arc<UdpSocket>>,
    udp_by_source: HashMap<IpAddr, usize>,
    tcp: HashMap<IpAddr, TcpConn>,
    recv_tasks: Vec<JoinHandle<()>>,
    latencies: Latencies,
    /// One in-flight table for the whole querier, shared by every socket
    /// and connection: ids come from the querier-wide counter, so they are
    /// unique across the querier's sockets — and a single table stays a
    /// single table when a high-source trace fans out to hundreds of
    /// sockets.
    pending: Pending,
    registry: SocketRegistry,
    policy: RetryPolicy,
    counters: Arc<FaultCounters>,
    next_id: u16,
    /// Span handle cloned into every receive task this querier spawns.
    obs: Option<ObsCtx>,
    /// Live answered-counter handle cloned into every receive task, so a
    /// matched response bumps the shard's `ldp_replay_answered_total`
    /// while both locks are already held.
    answered: Option<ldp_telemetry::Counter>,
}

impl QuerierState {
    /// UDP socket slot for `src`, creating one (with its receive task)
    /// under the cap, sharing by hash beyond it. `None` means the bind
    /// failed; the caller degrades the record(s) to
    /// [`ReplayError::Bind`] outcomes — the failure is *not* cached, so
    /// the next record for this source tries again.
    async fn udp_slot(&mut self, src: IpAddr) -> Option<usize> {
        if let Some(&s) = self.udp_by_source.get(&src) {
            return Some(s);
        }
        let s = if self.udp.len() < self.max_sockets {
            let socket = Arc::new(UdpSocket::bind("127.0.0.1:0").await.ok()?);
            self.recv_tasks.push(tokio::spawn(recv_udp(
                socket.clone(),
                self.pending.clone(),
                self.latencies.clone(),
                self.obs.clone(),
                self.answered.clone(),
            )));
            self.registry.lock().push(socket.clone());
            self.udp.push(socket);
            self.udp.len() - 1
        } else {
            // Cap reached: share sockets by source hash.
            hash_ip(src) % self.udp.len()
        };
        self.udp_by_source.insert(src, s);
        Some(s)
    }

    /// Live TCP connection for `src`, (re)opening — with capped backoff
    /// up to the policy's attempt budget — when absent or dead. `None`
    /// means every attempt failed; the caller degrades the record(s) to
    /// [`ReplayError::Connect`] outcomes.
    async fn tcp_conn(&mut self, src: IpAddr) -> Option<&mut TcpConn> {
        let prev_died = self.tcp.get(&src).map(TcpConn::is_dead);
        if prev_died == Some(false) {
            return self.tcp.get_mut(&src);
        }
        let attempts = self.policy.tcp_reconnect_attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                let pause = self
                    .policy
                    .tcp_reconnect_backoff
                    .delay(attempt - 1, hash_ip(src) as u64);
                tokio::time::sleep(pause).await;
            }
            match TcpConn::open(
                self.server,
                self.latencies.clone(),
                self.pending.clone(),
                self.obs.clone(),
                self.answered.clone(),
            )
            .await
            {
                Ok(c) => {
                    if prev_died == Some(true) {
                        self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    self.tcp.insert(src, c);
                    return self.tcp.get_mut(&src);
                }
                Err(_) => continue,
            }
        }
        None
    }

    /// Builds the in-flight entry for a fresh (attempt-0) send.
    fn in_flight(&self, slot: usize, sent_at: Instant, sock: SockRef, wire: &[u8]) -> InFlight {
        InFlight {
            slot,
            sent_at,
            deadline: self
                .policy
                .is_enabled()
                .then(|| sent_at + self.policy.timeout),
            attempt: 0,
            sock,
            wire: (self.policy.retains_wire() && matches!(sock, SockRef::Udp(_)))
                .then(|| wire.to_vec().into_boxed_slice()),
        }
    }

    fn fresh_id(&mut self) -> u16 {
        self.next_id = self.next_id.wrapping_add(1);
        self.next_id
    }
}

/// Per-querier timeout sweeper: ticks at the wheel granularity, expires
/// due attempts, and puts retransmits on the wire. Runs as its own task
/// (the offline runtime has no timer/IO racing, so expiry needs a
/// dedicated driver); `stop` makes it exit within one tick once the
/// querier has drained.
fn spawn_sweeper(
    pending: Pending,
    registry: SocketRegistry,
    server: SocketAddr,
    policy: RetryPolicy,
    counters: Arc<FaultCounters>,
    stop: Arc<AtomicBool>,
    obs: Option<ObsCtx>,
) -> JoinHandle<()> {
    tokio::spawn(async move {
        let mut due: Vec<(u16, u32)> = Vec::new();
        let mut resend: Vec<(u32, Box<[u8]>)> = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            tokio::time::sleep(crate::retry::TimeoutWheel::TICK).await;
            resend.clear();
            {
                let mut p = pending.lock();
                p.sweep(
                    Instant::now(),
                    &policy,
                    &counters,
                    &mut due,
                    &mut resend,
                    obs.as_ref(),
                );
            }
            if resend.is_empty() {
                continue;
            }
            let sockets: Vec<Arc<UdpSocket>> = registry.lock().clone();
            for (s, wire) in resend.drain(..) {
                let Some(socket) = sockets.get(s as usize) else {
                    continue;
                };
                if socket.send_to(&wire, server).await.is_ok() {
                    counters.retries.fetch_add(1, Ordering::Relaxed);
                } else {
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    })
}

impl QuerierTask {
    async fn run(
        self,
        mut rx: mpsc::Receiver<Vec<TraceRecord>>,
        depth: Arc<AtomicUsize>,
        recycle: mpsc::Sender<Vec<TraceRecord>>,
    ) -> (Vec<ReplayOutcome>, ShardStats) {
        let mut stats = ShardStats::new(self.shard);
        let pending: Pending = Arc::new(Mutex::new(PendingTable::new(Instant::now())));
        let counters = Arc::new(FaultCounters::default());
        // Handles resolved once, before the first batch: the hot loop
        // below never touches the registry again.
        let tele = self
            .telemetry
            .as_ref()
            .map(|reg| ShardTele::register(reg, self.shard, &counters, &pending));
        let mut state = QuerierState {
            server: self.server,
            max_sockets: self.max_sockets,
            udp: Vec::new(),
            udp_by_source: HashMap::new(),
            tcp: HashMap::new(),
            recv_tasks: Vec::new(),
            latencies: Arc::new(Mutex::new(Vec::new())),
            pending,
            registry: Arc::new(Mutex::new(Vec::new())),
            policy: self.retry.clone(),
            counters,
            next_id: 0,
            obs: self.obs.clone(),
            answered: tele.as_ref().map(|t| t.answered.clone()),
        };
        let stop = Arc::new(AtomicBool::new(false));
        let sweeper = self.retry.is_enabled().then(|| {
            spawn_sweeper(
                state.pending.clone(),
                state.registry.clone(),
                self.server,
                self.retry.clone(),
                state.counters.clone(),
                stop.clone(),
                self.obs.clone(),
            )
        });
        let mut meta: Vec<Meta> = Vec::new();
        let mut last_deadline_us: u64 = 0;

        while let Some(mut batch) = rx.recv().await {
            depth.fetch_sub(1, Ordering::Relaxed);
            stats.batches += 1;
            // Reserve the batch's outcome slots under one lock.
            let base = {
                let mut l = state.latencies.lock();
                let b = l.len();
                l.resize(b + batch.len(), None);
                b
            };
            let drained_from = meta.len();
            match self.mode {
                ReplayMode::Timed { .. } => {
                    self.drain_timed(
                        &mut batch,
                        base,
                        &mut state,
                        &mut meta,
                        &mut stats,
                        &mut last_deadline_us,
                    )
                    .await;
                }
                ReplayMode::Fast => {
                    self.drain_fast(&mut batch, base, &mut state, &mut meta)
                        .await;
                }
            }
            if let Some(progress) = &self.progress {
                progress.fetch_add((meta.len() - drained_from) as u64, Ordering::Relaxed);
            }
            if let Some(t) = &tele {
                // One pass over the batch's fresh meta, two fetch_adds:
                // error-free sends, and (Timed mode) how far behind
                // schedule they went out — the §3 send-lag drift signal.
                let mut sent_n = 0u64;
                let mut lag_us = 0u64;
                for m in &meta[drained_from..] {
                    if m.error.is_none() {
                        sent_n += 1;
                        if matches!(self.mode, ReplayMode::Timed { .. }) {
                            lag_us += m.sent_offset_us.saturating_sub(m.target_offset_us);
                        }
                    }
                }
                t.sent.add(sent_n);
                t.send_lag_us.add(lag_us);
            }
            batch.clear();
            // Recycling is best-effort; a full (or closed) return channel
            // just means this spine gets reallocated.
            let _ = recycle.try_send(batch); // ldp-lint: allow(r5) -- spine recycling, not a query send
        }

        // Adaptive drain: wait until every in-flight query is answered,
        // retried out, or expired — `drain` is only the hard cap (and the
        // whole wait when expiry is disabled and answers were lost).
        let hard_deadline = Instant::now() + self.drain;
        loop {
            if state.pending.lock().in_flight == 0 {
                break;
            }
            if Instant::now() >= hard_deadline {
                break;
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        stop.store(true, Ordering::Relaxed);
        if let Some(s) = sweeper {
            s.abort();
        }
        for t in &state.recv_tasks {
            t.abort();
        }
        for (_, conn) in state.tcp.iter() {
            conn.reader.abort();
        }

        let latencies = state.latencies.lock();
        stats.sent = meta.iter().filter(|m| m.error.is_none()).count() as u64;
        stats.answered = latencies.iter().filter(|l| l.is_some()).count() as u64;
        state.counters.fold_into(&mut stats);
        let outcomes = meta
            .into_iter()
            .map(|m| ReplayOutcome {
                trace_offset_us: m.trace_offset_us,
                target_offset_us: m.target_offset_us,
                sent_offset_us: m.sent_offset_us,
                latency_us: latencies.get(m.slot).copied().flatten(),
                src: m.src,
                protocol: m.protocol,
                error: m.error,
            })
            .collect();
        (outcomes, stats)
    }

    /// `Timed` drain: every record is individually paced on the scaled
    /// clock (batching only changed how records *arrive*, not when they
    /// are sent), then sent exactly as the per-record engine did. Faults
    /// never abort: a bind/connect/send failure degrades that record to a
    /// [`ReplayError`] outcome and the loop moves on.
    async fn drain_timed(
        &self,
        batch: &mut [TraceRecord],
        base: usize,
        state: &mut QuerierState,
        meta: &mut Vec<Meta>,
        stats: &mut ShardStats,
        last_deadline_us: &mut u64,
    ) {
        for (k, rec) in batch.iter_mut().enumerate() {
            let now_us = self.epoch.elapsed().as_micros() as u64;
            if let Some(o) = &self.obs {
                o.record_at(base + k, Stage::Scheduled, now_us);
            }
            // Invariant: the plan feeds each querier records in trace
            // order, so real-clock deadlines are monotone — a regression
            // here would silently reorder the replayed stream.
            let deadline = self.clock.target_real_us(rec.time_us);
            debug_assert!(
                deadline >= *last_deadline_us,
                "deadline went backwards: {deadline} < {last_deadline_us}"
            );
            *last_deadline_us = deadline;
            if let Some(delay) = self.clock.delay_us(rec.time_us, now_us) {
                sleep_until_precise(Instant::now() + Duration::from_micros(delay)).await;
            }

            let id = state.fresh_id();
            rec.message.header.id = id;
            let Ok(wire) = rec.message.to_bytes() else {
                continue;
            };
            let sent_at = Instant::now();
            // The span's `Sent` stamp must be captured before the send is
            // initiated: the receiver stamps `Answered` on its own task,
            // and only a pre-send stamp is causally ordered before the
            // answer (a post-send stamp can lose the race to a fast
            // response on a loaded host). The report's `sent_offset_us`
            // below still measures send *completion* for late accounting.
            let wire_stamp_us = self.epoch.elapsed().as_micros() as u64;
            let mut error = None;
            match rec.protocol {
                Protocol::Udp => match state.udp_slot(rec.src).await {
                    None => {
                        error = Some(ReplayError::Bind);
                        state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(slot) => {
                        let entry =
                            state.in_flight(base + k, sent_at, SockRef::Udp(slot as u32), &wire);
                        state.pending.lock().insert(id, entry);
                        let socket = &state.udp[slot];
                        if socket.send_to(&wire, self.server).await.is_err() {
                            state.pending.lock().remove(id);
                            error = Some(ReplayError::Send);
                            state.counters.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                },
                Protocol::Tcp | Protocol::Tls | Protocol::Quic => {
                    // Live mode carries TLS/QUIC as TCP: handshake
                    // emulation is a simulator concern; live TCP still
                    // exercises framing and connection reuse. The entry
                    // still gets an expiry deadline even though the send
                    // path (not the sweeper) owns reconnection: without
                    // one, a query lost to a reset connection would pin
                    // the adaptive drain to its cap.
                    let deadline = state
                        .policy
                        .is_enabled()
                        .then(|| sent_at + state.policy.timeout);
                    let mut resend = false;
                    match state.tcp_conn(rec.src).await {
                        None => {
                            error = Some(ReplayError::Connect);
                            state.counters.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(conn) => {
                            conn.pending.lock().insert(
                                id,
                                InFlight {
                                    slot: base + k,
                                    sent_at,
                                    deadline,
                                    attempt: 0,
                                    sock: SockRef::Tcp,
                                    wire: None,
                                },
                            );
                            if conn.send(&wire).await.is_err() {
                                conn.mark_dead();
                                resend = true;
                            }
                        }
                    }
                    if resend {
                        // One reconnect-and-resend; a second failure
                        // leaves the query to expire (`gave_up`).
                        if let Some(conn) = state.tcp_conn(rec.src).await {
                            if conn.send(&wire).await.is_err() {
                                conn.mark_dead();
                            }
                        }
                    }
                }
            }
            let sent_offset_us = self.epoch.elapsed().as_micros() as u64;
            if error.is_none() {
                if let Some(o) = &self.obs {
                    o.record_at(base + k, Stage::Sent, wire_stamp_us);
                }
            }
            let target_offset_us = deadline;
            if error.is_none() && sent_offset_us > target_offset_us + LATE_BUDGET_US {
                stats.late += 1;
            }
            meta.push(Meta {
                slot: base + k,
                trace_offset_us: rec.time_us.saturating_sub(self.trace_epoch_us),
                target_offset_us,
                sent_offset_us,
                src: rec.src,
                protocol: rec.protocol,
                error,
            });
        }
    }

    /// Degrades a whole run (fast-mode bind/connect failure) to errored
    /// outcomes so every record is accounted for.
    fn degrade_run(
        &self,
        batch: &[TraceRecord],
        base: usize,
        range: (usize, usize),
        state: &QuerierState,
        meta: &mut Vec<Meta>,
        error: ReplayError,
    ) {
        let sent_offset_us = self.epoch.elapsed().as_micros() as u64;
        for (k, rec) in batch.iter().enumerate().take(range.1).skip(range.0) {
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            meta.push(Meta {
                slot: base + k,
                trace_offset_us: rec.time_us.saturating_sub(self.trace_epoch_us),
                target_offset_us: self.clock.target_real_us(rec.time_us),
                sent_offset_us,
                src: rec.src,
                protocol: rec.protocol,
                error: Some(error),
            });
        }
    }

    /// `Fast` drain: syscall-dense. Consecutive same-source same-protocol
    /// records form a *run* (sticky routing makes runs long); each run
    /// costs one socket lookup and one pending-map lock, and TCP runs
    /// collapse all frames into a single write. Faults degrade (run- or
    /// record-level) instead of aborting, and dead TCP connections are
    /// reopened with the interrupted run's buffer re-sent.
    async fn drain_fast(
        &self,
        batch: &mut [TraceRecord],
        base: usize,
        state: &mut QuerierState,
        meta: &mut Vec<Meta>,
    ) {
        let mut i = 0;
        while i < batch.len() {
            let src = batch[i].src;
            let protocol = batch[i].protocol;
            let mut j = i + 1;
            while j < batch.len() && batch[j].src == src && batch[j].protocol == protocol {
                j += 1;
            }
            if let Some(o) = &self.obs {
                // One dequeue stamp for the whole run: fast mode blasts
                // the run as a unit, so per-record scheduling is the run
                // boundary.
                let t_us = self.epoch.elapsed().as_micros() as u64;
                for k in i..j {
                    o.record_at(base + k, Stage::Scheduled, t_us);
                }
            }
            match protocol {
                Protocol::Udp => {
                    let Some(slot) = state.udp_slot(src).await else {
                        // Bind failed: the whole run degrades (the next
                        // run for this source will try binding again).
                        self.degrade_run(batch, base, (i, j), state, meta, ReplayError::Bind);
                        i = j;
                        continue;
                    };
                    // Encode the run and register every pending entry
                    // under one lock; a record that fails to encode is
                    // never registered, so the pending map only ever
                    // holds ids that actually went on the wire.
                    let mut wires: Vec<Vec<u8>> = Vec::with_capacity(j - i);
                    let mut queued: Vec<usize> = Vec::with_capacity(j - i);
                    let mut ids: Vec<u16> = Vec::with_capacity(j - i);
                    {
                        let sent_at = Instant::now();
                        let deadline = state
                            .policy
                            .is_enabled()
                            .then(|| sent_at + state.policy.timeout);
                        let retain = state.policy.retains_wire();
                        let mut p = state.pending.lock();
                        for (k, rec) in batch.iter_mut().enumerate().take(j).skip(i) {
                            state.next_id = state.next_id.wrapping_add(1);
                            let id = state.next_id;
                            rec.message.header.id = id;
                            let Ok(wire) = rec.message.to_bytes() else {
                                continue;
                            };
                            p.insert(
                                id,
                                InFlight {
                                    slot: base + k,
                                    sent_at,
                                    deadline,
                                    attempt: 0,
                                    sock: SockRef::Udp(slot as u32),
                                    wire: retain.then(|| wire.clone().into_boxed_slice()),
                                },
                            );
                            wires.push(wire);
                            queued.push(k);
                            ids.push(id);
                        }
                    }
                    // One sendmmsg carries the whole run; any tail the
                    // kernel refuses goes out individually, and a send
                    // that still fails degrades that record. The span
                    // stamp is captured pre-send so it is causally
                    // ordered before any `Answered` stamp (the receiver
                    // can beat a post-send stamp on a loaded host).
                    let wire_stamp_us = self.epoch.elapsed().as_micros() as u64;
                    let socket = state.udp[slot].clone();
                    let refs: Vec<&[u8]> = wires.iter().map(Vec::as_slice).collect();
                    let sent_n = socket.send_many_to(&refs, self.server).await.unwrap_or(0);
                    let mut errs: Vec<Option<ReplayError>> = vec![None; queued.len()];
                    for (x, wire) in refs.iter().enumerate().skip(sent_n) {
                        if socket.send_to(wire, self.server).await.is_err() {
                            errs[x] = Some(ReplayError::Send);
                            state.counters.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if errs.iter().any(Option::is_some) {
                        let mut p = state.pending.lock();
                        for (x, e) in errs.iter().enumerate() {
                            if e.is_some() {
                                p.remove(ids[x]);
                            }
                        }
                    }
                    let sent_offset_us = self.epoch.elapsed().as_micros() as u64;
                    for (x, &k) in queued.iter().enumerate() {
                        let rec = &batch[k];
                        if errs[x].is_none() {
                            if let Some(o) = &self.obs {
                                o.record_at(base + k, Stage::Sent, wire_stamp_us);
                            }
                        }
                        meta.push(Meta {
                            slot: base + k,
                            trace_offset_us: rec.time_us.saturating_sub(self.trace_epoch_us),
                            target_offset_us: self.clock.target_real_us(rec.time_us),
                            sent_offset_us,
                            src,
                            protocol,
                            error: errs[x],
                        });
                    }
                }
                Protocol::Tcp | Protocol::Tls | Protocol::Quic => {
                    // Open (or reuse) the run's connection up front; an
                    // open that fails every reconnect attempt degrades
                    // the whole run to `Connect` outcomes.
                    if state.tcp_conn(src).await.is_none() {
                        self.degrade_run(batch, base, (i, j), state, meta, ReplayError::Connect);
                        i = j;
                        continue;
                    }
                    // One frame buffer + one pending lock for the run,
                    // then a single write carrying every frame.
                    let mut buf = Vec::new();
                    let mut queued: Vec<usize> = Vec::with_capacity(j - i);
                    {
                        let sent_at = Instant::now();
                        let deadline = state
                            .policy
                            .is_enabled()
                            .then(|| sent_at + state.policy.timeout);
                        let Some(conn) = state.tcp.get_mut(&src) else {
                            i = j;
                            continue;
                        };
                        let mut p = conn.pending.lock();
                        for (k, rec) in batch.iter_mut().enumerate().take(j).skip(i) {
                            // Disjoint field borrows: ids advance while
                            // the connection (state.tcp) is held.
                            state.next_id = state.next_id.wrapping_add(1);
                            let id = state.next_id;
                            rec.message.header.id = id;
                            let Ok(wire) = rec.message.to_bytes() else {
                                continue;
                            };
                            let Ok(framed) = ldp_wire::framing::frame_message(&wire) else {
                                continue;
                            };
                            p.insert(
                                id,
                                InFlight {
                                    slot: base + k,
                                    sent_at,
                                    deadline,
                                    attempt: 0,
                                    sock: SockRef::Tcp,
                                    wire: None,
                                },
                            );
                            buf.extend_from_slice(&framed);
                            queued.push(k);
                        }
                    }
                    // Pre-send span stamp: causally ordered before any
                    // `Answered` stamp, unlike a post-write stamp.
                    let wire_stamp_us = self.epoch.elapsed().as_micros() as u64;
                    if !buf.is_empty() {
                        // On a write failure, reconnect (counted) and
                        // re-send the interrupted run's buffer once;
                        // responses come back through the new reader into
                        // the same querier-wide pending table. Duplicate
                        // answers are harmless — the first wins, the rest
                        // find no pending entry.
                        let mut attempts = 0;
                        loop {
                            let Some(conn) = state.tcp_conn(src).await else {
                                break;
                            };
                            if conn.send_raw(&buf).await.is_ok() {
                                break;
                            }
                            conn.mark_dead();
                            attempts += 1;
                            if attempts > 1 {
                                // The re-sent run failed too: the queued
                                // queries expire into `gave_up`.
                                break;
                            }
                        }
                    }
                    let sent_offset_us = self.epoch.elapsed().as_micros() as u64;
                    for k in queued {
                        let rec = &batch[k];
                        if let Some(o) = &self.obs {
                            o.record_at(base + k, Stage::Sent, wire_stamp_us);
                        }
                        meta.push(Meta {
                            slot: base + k,
                            trace_offset_us: rec.time_us.saturating_sub(self.trace_epoch_us),
                            target_offset_us: self.clock.target_real_us(rec.time_us),
                            sent_offset_us,
                            src,
                            protocol,
                            error: None,
                        });
                    }
                }
            }
            i = j;
        }
    }
}

fn hash_ip(ip: IpAddr) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    ip.hash(&mut h);
    h.finish() as usize
}

/// Answers drained per `recvmmsg` wakeup: a burst of responses costs one
/// syscall, not one per answer. The buffers are deliberately tiny — only
/// the 2-byte message id is read from an answer, so the kernel truncating
/// an oversized datagram is harmless, and a high-source trace fanning out
/// to hundreds of sockets (each with its own receive task) stays at
/// kilobytes, not megabytes, of buffer per socket.
const RECV_BATCH: usize = 32;
const RECV_BUF: usize = 2_048;

async fn recv_udp(
    socket: Arc<UdpSocket>,
    pending: Pending,
    latencies: Latencies,
    obs: Option<ObsCtx>,
    answered: Option<ldp_telemetry::Counter>,
) {
    let mut bufs: Vec<Vec<u8>> = (0..RECV_BATCH).map(|_| vec![0u8; RECV_BUF]).collect();
    loop {
        let Ok(received) = socket.recv_many(&mut bufs).await else {
            continue;
        };
        if received.is_empty() {
            continue;
        }
        let now = Instant::now();
        let mut p = pending.lock();
        let mut l = latencies.lock();
        for (i, &(len, _)) in received.iter().enumerate() {
            if len < 2 {
                continue;
            }
            let id = u16::from_be_bytes([bufs[i][0], bufs[i][1]]);
            if let Some(f) = p.remove(id) {
                let latency = now.saturating_duration_since(f.sent_at).as_micros() as u64;
                if let Some(slot) = l.get_mut(f.slot) {
                    *slot = Some(latency);
                }
                // Stamped while both locks are held, so an abort at drain
                // can't split a recorded latency from its Answered event.
                if let Some(o) = &obs {
                    o.record_instant(f.slot, Stage::Answered, now);
                }
                if let Some(a) = &answered {
                    a.inc();
                }
            }
        }
    }
}

struct TcpConn {
    writer: tokio::net::tcp::OwnedWriteHalf,
    reader: JoinHandle<()>,
    pending: Pending,
    /// Set by the send path on a write failure *or* by the reader task on
    /// EOF/read error — a server that resets mid-conversation is usually
    /// noticed by the reader first, and the flag is what triggers a
    /// reconnect on the next use of this source's connection.
    dead: Arc<AtomicBool>,
}

impl TcpConn {
    async fn open(
        server: SocketAddr,
        latencies: Latencies,
        pending: Pending,
        obs: Option<ObsCtx>,
        answered: Option<ldp_telemetry::Counter>,
    ) -> std::io::Result<TcpConn> {
        let stream = tokio::net::TcpStream::connect(server).await?;
        stream.set_nodelay(true)?;
        let (mut read_half, writer) = stream.into_split();
        let pending_r = pending.clone();
        let dead = Arc::new(AtomicBool::new(false));
        let dead_r = dead.clone();
        let reader = tokio::spawn(async move {
            loop {
                let mut lenbuf = [0u8; 2];
                if read_half.read_exact(&mut lenbuf).await.is_err() {
                    dead_r.store(true, Ordering::Relaxed);
                    return;
                }
                let len = u16::from_be_bytes(lenbuf) as usize;
                let mut msg = vec![0u8; len];
                if read_half.read_exact(&mut msg).await.is_err() {
                    dead_r.store(true, Ordering::Relaxed);
                    return;
                }
                if msg.len() < 2 {
                    continue;
                }
                let id = u16::from_be_bytes([msg[0], msg[1]]);
                if let Some(f) = pending_r.lock().remove(id) {
                    let now = Instant::now();
                    let latency = now.saturating_duration_since(f.sent_at).as_micros() as u64;
                    let mut l = latencies.lock();
                    if let Some(slot) = l.get_mut(f.slot) {
                        *slot = Some(latency);
                    }
                    if let Some(o) = &obs {
                        o.record_instant(f.slot, Stage::Answered, now);
                    }
                    if let Some(a) = &answered {
                        a.inc();
                    }
                }
            }
        });
        Ok(TcpConn {
            writer,
            reader,
            pending,
            dead,
        })
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    fn mark_dead(&self) {
        self.dead.store(true, Ordering::Relaxed);
    }

    async fn send(&mut self, wire: &[u8]) -> std::io::Result<()> {
        let framed = ldp_wire::framing::frame_message(wire)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "oversized"))?;
        self.writer.write_all(&framed).await
    }

    /// Writes pre-framed bytes (a whole run's frames) in one call.
    async fn send_raw(&mut self, framed: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(framed).await
    }
}

/// Coarse sleep to within ~1.5 ms of the target, then a *yielding* spin —
/// tokio's timer wheel alone is too coarse for the ±2.5 ms quartile errors
/// the paper reports, but a blocking spin would starve the other queriers
/// sharing the worker pool (fatal on single-core hosts: every spin blocks
/// every other querier's sends). `yield_now` re-polls the deadline each
/// scheduler pass, so concurrent queriers interleave at ~µs granularity.
async fn sleep_until_precise(target: Instant) {
    const SPIN_WINDOW: Duration = Duration::from_micros(1500);
    if let Some(coarse) = target.checked_sub(SPIN_WINDOW) {
        if Instant::now() < coarse {
            tokio::time::sleep_until(coarse.into()).await;
        }
    }
    while Instant::now() < target {
        tokio::task::yield_now().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_server::auth::AuthEngine;
    use ldp_server::live::LiveServer;
    use ldp_wire::{Name, RrType};
    use ldp_workload::zones::wildcard_example_zone;
    use ldp_zone::ZoneSet;

    fn engine() -> Arc<AuthEngine> {
        let mut set = ZoneSet::new();
        set.insert(wildcard_example_zone());
        Arc::new(AuthEngine::with_zones(Arc::new(set)))
    }

    /// Serializes the timing-assertion tests. Under a full-parallel
    /// `cargo test` the whole workspace's binaries contend for the same
    /// cores; two replays pacing sleeps concurrently *in this binary*
    /// compound each other's scheduler delay and flake. One at a time,
    /// each sees only the ambient load — which the calibrated budget
    /// below absorbs.
    static TIMING_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Load-derived timing budget, measured *while* the replay runs: a
    /// probe task on the same runtime repeatedly issues 2 ms sleeps and
    /// records the worst overshoot it sees. On an idle host overshoot is
    /// microseconds and the budget stays at the 50 ms floor — sharp
    /// enough to catch the Figure 6 accounting regression (≥135 ms p90).
    /// On a host oversubscribed by the rest of the parallel test run,
    /// sleeps fire hundreds of milliseconds late; the pacing loop is
    /// starved by exactly the same scheduler, so the budget scales with
    /// the starvation the probe actually observed rather than flaking.
    struct LoadProbe {
        worst_us: Arc<AtomicU64>,
        stop: Arc<AtomicBool>,
        task: JoinHandle<()>,
    }

    impl LoadProbe {
        fn start() -> LoadProbe {
            let worst_us = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let (w, s) = (worst_us.clone(), stop.clone());
            let task = tokio::spawn(async move {
                while !s.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    tokio::time::sleep(Duration::from_millis(2)).await;
                    let over = t0.elapsed().saturating_sub(Duration::from_millis(2));
                    w.fetch_max(over.as_micros() as u64, Ordering::Relaxed);
                }
            });
            LoadProbe {
                worst_us,
                stop,
                task,
            }
        }

        /// Stops the probe and returns what timing budget (ms) the host
        /// earned: `Some(50 + 20×worst overshoot)` when the runtime
        /// stayed responsive (sub-millisecond worst overshoot — a sharp
        /// bound an idle host always meets), `None` when real contention
        /// showed up. Contention caps instantaneous scheduler lag, but a
        /// throughput-starved host (1 CPU shared with `cargo test`'s
        /// still-compiling crates) accumulates *unbounded* send backlog
        /// the probe cannot predict — no budget derived from the probe is
        /// honest there, so the timing assertion must be skipped, not
        /// loosened.
        async fn budget_ms(self) -> Option<f64> {
            self.stop.store(true, Ordering::Relaxed);
            let _ = self.task.await;
            let worst_ms = self.worst_us.load(Ordering::Relaxed) as f64 / 1e3;
            if worst_ms > 1.0 {
                eprintln!(
                    "note: probe saw {worst_ms:.2} ms sleep overshoot; \
                     host too contended to judge replay timing"
                );
                return None;
            }
            Some(50.0 + 20.0 * worst_ms)
        }
    }

    /// The value `frac` of the way up the sorted magnitudes. Timing
    /// assertions bound a high percentile, not the max: a single
    /// scheduler hiccup on an oversubscribed test host can make one send
    /// arbitrarily late, while the regressions these tests guard
    /// (accounting bugs, systematic pacing drift) shift the whole
    /// distribution — exactly what a quartile-style bound catches (the
    /// paper's Figure 6 reports quartile windows for the same reason).
    fn percentile(errors: &[f64], frac: f64) -> f64 {
        let mut mags: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if mags.is_empty() {
            return 0.0;
        }
        let idx = ((mags.len() as f64 - 1.0) * frac).round() as usize;
        mags[idx.min(mags.len() - 1)]
    }

    fn trace(n: u64, gap_us: u64, protocol: Protocol) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                let mut rec = TraceRecord::udp_query(
                    i * gap_us,
                    format!("10.0.0.{}", 1 + i % 5).parse().unwrap(),
                    (1024 + i % 60000) as u16,
                    Name::parse(&format!("q{i}.example.com")).unwrap(),
                    RrType::A,
                );
                rec.protocol = protocol;
                rec
            })
            .collect()
    }

    // Holding the serialization guard across await is the point: the
    // whole replay must run while no sibling timing test does.
    #[allow(clippy::await_holding_lock)]
    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn udp_replay_answers_and_times() {
        let _serial = TIMING_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let replay = LiveReplay::new(server.addr);
        let probe = LoadProbe::start();
        let report = replay.run(trace(200, 2_000, Protocol::Udp)).await.unwrap();
        let budget = probe.budget_ms().await;
        assert_eq!(report.sent, 200);
        assert!(
            report.answered >= 195,
            "answered only {}/200",
            report.answered
        );
        // Timing errors should be tiny on loopback: bound the 90th
        // percentile by the load-derived budget (a stray hiccup may push
        // the max; a shifted distribution means a real pacing bug). A
        // contended host earns no budget and the timing check is waived.
        if let Some(budget) = budget {
            let errors = report.timing_errors_ms();
            let p90 = percentile(&errors, 0.9);
            assert!(p90 < budget, "p90 timing error {p90} ms (budget {budget})");
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn fast_mode_outruns_trace_timing() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut replay = LiveReplay::new(server.addr);
        replay.mode = ReplayMode::Fast;
        // Trace nominally spans 10s; fast mode must finish way earlier.
        let t0 = Instant::now();
        let report = replay.run(trace(500, 20_000, Protocol::Udp)).await.unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert_eq!(report.sent, 500);
        assert!(report.achieved_qps() > 500.0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn tcp_replay_reuses_connections() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut replay = LiveReplay::new(server.addr);
        replay.mode = ReplayMode::Fast;
        let report = replay.run(trace(100, 1_000, Protocol::Tcp)).await.unwrap();
        assert_eq!(report.sent, 100);
        assert!(report.answered >= 95, "answered {}", report.answered);
        // 100 queries from 5 distinct sources: connections ≪ queries.
        let conns = server
            .stats
            .tcp_connections
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(conns <= 10, "expected ≤10 connections, saw {conns}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn streamed_replay_from_encoded_trace() {
        // Round-trip through the on-disk stream format and replay without
        // materializing the trace (the §3 Reader pre-load path).
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let records = trace(300, 1_000, Protocol::Udp);
        let bytes = ldp_trace::stream::to_bytes(&records).unwrap();
        let reader = ldp_trace::stream::StreamReader::new(std::io::Cursor::new(bytes)).unwrap();
        let mut replay = LiveReplay::new(server.addr);
        replay.mode = ReplayMode::Fast;
        replay.drain = Duration::from_millis(800);
        let report = replay.run_stream(reader).await.unwrap();
        assert_eq!(report.sent, 300);
        // Fast-blasting 300 UDP datagrams while sibling tests contend for
        // the same core can overflow socket buffers; require a strong
        // majority rather than near-perfection.
        assert!(report.answered >= 240, "answered {}", report.answered);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn streamed_replay_empty_input() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let report = LiveReplay::new(server.addr)
            .run_stream(std::iter::empty())
            .await
            .unwrap();
        assert_eq!(report.sent, 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn empty_trace_is_fine() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let report = LiveReplay::new(server.addr).run(vec![]).await.unwrap();
        assert_eq!(report.sent, 0);
        assert_eq!(report.achieved_qps(), 0.0);
    }

    /// Regression for the Figure 6 accounting bug: at `speed != 1.0` the
    /// old metric compared send times against the *unscaled* trace
    /// offset, so a half-time replay reported ~half the trace span as
    /// "error". The fixed metric compares against the scaled target and
    /// must stay loopback-small at any speed.
    // As above: the guard must span the replay to serialize timing tests.
    #[allow(clippy::await_holding_lock)]
    async fn timing_errors_stay_small_at(speed: f64) {
        let _serial = TIMING_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut replay = LiveReplay::new(server.addr);
        replay.mode = ReplayMode::Timed { speed };
        // 100 records spanning 300 ms of trace time.
        let probe = LoadProbe::start();
        let report = replay.run(trace(100, 3_000, Protocol::Udp)).await.unwrap();
        let budget = probe.budget_ms().await;
        assert_eq!(report.sent, 100);
        let errors = report.timing_errors_ms();
        // The old bug made errors ramp ≈ (1 − speed) × trace time across
        // the whole replay (|p90| ≥ 135 ms here); the corrected metric
        // stays loopback-small at every percentile, so bounding the 90th
        // keeps the regression caught without flaking on one late send.
        // A contended host earns no budget and the timing check is waived.
        if let Some(budget) = budget {
            let p90 = percentile(&errors, 0.9);
            assert!(
                p90 < budget,
                "speed {speed}: p90 |timing error| {p90} ms (budget {budget})"
            );
        }
        // Targets really are the scaled offsets.
        for o in &report.outcomes {
            let want = (o.trace_offset_us as f64 * speed) as u64;
            let diff = o.target_offset_us.abs_diff(want);
            assert!(
                diff <= 1,
                "target {} vs scaled trace offset {want} (speed {speed})",
                o.target_offset_us
            );
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn timing_errors_correct_at_double_speed() {
        timing_errors_stay_small_at(0.5).await;
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn timing_errors_correct_at_half_speed() {
        timing_errors_stay_small_at(2.0).await;
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn shard_stats_cover_all_sends() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut replay = LiveReplay::new(server.addr);
        replay.mode = ReplayMode::Fast;
        replay.batch_size = 32;
        let report = replay.run(trace(400, 500, Protocol::Udp)).await.unwrap();
        assert_eq!(report.sent, 400);
        let totals = ldp_metrics::PipelineTotals::from_shards(&report.shards);
        assert_eq!(totals.sent, report.sent);
        assert_eq!(totals.answered, report.answered);
        assert!(totals.batches >= report.shards.iter().filter(|s| s.sent > 0).count() as u64);
        // Every active shard drained at least one batch and observed its
        // queue depth at enqueue time.
        for s in report.shards.iter().filter(|s| s.sent > 0) {
            assert!(s.batches > 0, "shard {} sent but drained no batch", s.shard);
            assert!(
                !s.depths.is_empty(),
                "shard {} has no depth samples",
                s.shard
            );
        }
        // Fast mode never counts lateness.
        assert_eq!(totals.late, 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn fast_mode_preserves_same_source_order_across_batches() {
        // Batch boundaries must not reorder a source's queries: outcomes
        // carry trace offsets, and per source they must be sent in trace
        // order (monotone sent offsets when sorted by trace offset).
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut replay = LiveReplay::new(server.addr);
        replay.mode = ReplayMode::Fast;
        replay.batch_size = 16; // force many batch boundaries
        let report = replay.run(trace(600, 100, Protocol::Udp)).await.unwrap();
        assert_eq!(report.sent, 600);
        let mut by_src: HashMap<IpAddr, Vec<(u64, u64)>> = HashMap::new();
        for o in &report.outcomes {
            by_src
                .entry(o.src)
                .or_default()
                .push((o.trace_offset_us, o.sent_offset_us));
        }
        assert_eq!(by_src.len(), 5);
        for (src, mut sends) in by_src {
            sends.sort_unstable();
            assert!(
                sends.windows(2).all(|w| w[0].1 <= w[1].1),
                "source {src} reordered across batch boundaries"
            );
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn telemetry_counters_match_the_final_report() {
        let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let reg = Arc::new(ldp_telemetry::Registry::new());
        let mut replay = LiveReplay::new(server.addr);
        replay.mode = ReplayMode::Fast;
        replay.telemetry = Some(reg.clone());
        let report = replay.run(trace(200, 1_000, Protocol::Udp)).await.unwrap();
        let samples = reg.snapshot();
        let sum = |name: &str| -> u64 {
            samples
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.value)
                .sum()
        };
        assert_eq!(sum("ldp_replay_sent_total"), report.sent);
        assert_eq!(sum("ldp_replay_answered_total"), report.answered);
        assert_eq!(sum("ldp_replay_errors_total"), report.errors);
        assert_eq!(sum("ldp_replay_gave_up_total"), report.gave_up);
        // One queue-depth gauge and one in-flight gauge per shard, all
        // back to zero once the replay has drained.
        let gauges = |name: &'static str| samples.iter().filter(move |s| s.name == name);
        assert_eq!(
            gauges("ldp_replay_queue_depth").count(),
            report.shards.len()
        );
        assert_eq!(gauges("ldp_replay_in_flight").count(), report.shards.len());
        assert!(gauges("ldp_replay_queue_depth").all(|s| s.value == 0));
        assert!(gauges("ldp_replay_in_flight").all(|s| s.value == 0));
    }
}
