//! Observability integration tests: a fully-sampled live replay must
//! produce spans whose per-stage durations telescope exactly to the
//! end-to-end latency, chaos-injected retransmits must surface as extra
//! wire segments, and the `ReplayReport` JSON schema is pinned here so a
//! field rename cannot slip through silently.

use std::sync::Arc;
use std::time::Duration;

use ldp_obs::{assemble, ReplaySpans, StageBreakdown};
use ldp_replay::{LiveReplay, ReplayMode};
use ldp_server::auth::AuthEngine;
use ldp_server::live::LiveServer;
use ldp_server::ChaosPolicy;
use ldp_trace::TraceRecord;
use ldp_wire::{Name, RrType};
use ldp_workload::zones::wildcard_example_zone;
use ldp_zone::ZoneSet;
use serde::{Serialize, Value};

fn engine() -> Arc<AuthEngine> {
    let mut set = ZoneSet::new();
    set.insert(wildcard_example_zone());
    Arc::new(AuthEngine::with_zones(Arc::new(set)))
}

fn trace(n: u64, gap_us: u64) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| {
            TraceRecord::udp_query(
                i * gap_us,
                format!("10.0.0.{}", 1 + i % 5).parse().unwrap(),
                (1024 + i % 60_000) as u16,
                Name::parse(&format!("q{i}.example.com")).unwrap(),
                RrType::A,
            )
        })
        .collect()
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn stage_durations_telescope_to_end_to_end() {
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let mut replay = LiveReplay::new(server.addr);
    replay.mode = ReplayMode::Fast;
    replay.drain = Duration::from_secs(4);
    let spans = Arc::new(ReplaySpans::full(
        replay.distributors * replay.queriers_per_distributor,
    ));
    replay.obs = Some(spans.clone());

    const QUERIES: u64 = 400;
    let report = replay.run(trace(QUERIES, 100)).await.unwrap();
    assert_eq!(report.sent, QUERIES);
    assert_eq!(spans.overwritten(), 0, "ring must hold every span");

    let assembled = assemble(&spans.events());
    assert_eq!(
        assembled.len() as u64,
        QUERIES,
        "full sampling records every query"
    );

    let mut answered = 0u64;
    for s in &assembled {
        // Every query at least reached the wire with ordered stamps.
        let read = s.read_us.expect("read stamped");
        let batched = s.batched_us.expect("batched stamped");
        let scheduled = s.scheduled_us.expect("scheduled stamped");
        let sent = s.sent_us.expect("sent stamped");
        assert!(read <= batched, "read {read} > batched {batched}");
        assert!(
            batched <= scheduled,
            "batched {batched} > sched {scheduled}"
        );
        assert!(scheduled <= sent, "scheduled {scheduled} > sent {sent}");

        let Some(answered_us) = s.answered_us else {
            continue;
        };
        answered += 1;
        assert!(sent <= answered_us, "sent {sent} > answered {answered_us}");
        // The decomposition telescopes: each duration is the difference of
        // adjacent stamps, so the sum reconstructs end-to-end exactly.
        let sum = s.batch_wait_us().unwrap()
            + s.queue_wait_us().unwrap()
            + s.send_lag_us().unwrap()
            + s.rtt_us().unwrap();
        let e2e = s.end_to_end_us().unwrap();
        assert!(
            sum.abs_diff(e2e) <= 1,
            "shard {} seq {}: stage sum {sum} != end-to-end {e2e}",
            s.shard,
            s.seq
        );
    }
    assert_eq!(answered, report.answered, "span answers match the report");

    let b = StageBreakdown::from_events(&spans.events());
    assert_eq!(b.queries, QUERIES);
    assert_eq!(b.answered, report.answered);
    assert_eq!(b.end_to_end.count(), report.answered);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn chaos_retries_surface_as_extra_wire_segments() {
    let chaos = Arc::new(ChaosPolicy::new(11).drop_responses(0.25));
    let server =
        LiveServer::spawn_with_chaos(engine(), "127.0.0.1:0".parse().unwrap(), chaos.clone())
            .await
            .unwrap();
    let mut replay = LiveReplay::new(server.addr);
    replay.mode = ReplayMode::Fast;
    replay.drain = Duration::from_secs(4);
    let spans = Arc::new(ReplaySpans::full(
        replay.distributors * replay.queriers_per_distributor,
    ));
    replay.obs = Some(spans.clone());

    let report = replay.run(trace(300, 200)).await.unwrap();
    assert!(report.retries > 0, "25% loss must force retransmits");

    let assembled = assemble(&spans.events());
    let retry_events: u64 = assembled.iter().map(|s| s.retries_us.len() as u64).sum();
    let multi_segment = assembled.iter().filter(|s| s.wire_segments() > 1).count();
    // Retry spans are stamped under the pending lock before the resend is
    // even queued, so the span count can only lead the report's counter
    // (which is bumped after the async send), never trail it.
    assert!(
        retry_events >= report.retries,
        "retry spans {retry_events} < reported retries {}",
        report.retries
    );
    assert!(
        multi_segment > 0,
        "retransmitted queries must show multiple wire segments"
    );
    // Retry stamps happen after the original send.
    for s in &assembled {
        if let (Some(sent), Some(&first_retry)) = (s.sent_us, s.retries_us.first()) {
            assert!(
                sent <= first_retry,
                "retry at {first_retry} precedes send at {sent}"
            );
        }
    }
}

/// Golden schema: the `ReplayReport` JSON field set. A rename or removal
/// here breaks manifest consumers, so it must be deliberate.
#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn replay_report_json_schema_is_pinned() {
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let mut replay = LiveReplay::new(server.addr);
    replay.mode = ReplayMode::Fast;
    replay.drain = Duration::from_secs(2);
    let report = replay.run(trace(50, 100)).await.unwrap();

    let Value::Object(fields) = report.to_json_value() else {
        panic!("ReplayReport must serialize to an object");
    };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "send_duration_us",
            "sent",
            "answered",
            "timeouts",
            "retries",
            "reconnects",
            "gave_up",
            "errors",
            "shards",
        ]
    );
}
