//! Chaos-hardening integration tests: the live replay engine against a
//! fault-injecting [`ldp_server::live::LiveServer`].
//!
//! Every scenario is seeded and content-keyed (see
//! [`ldp_server::ChaosPolicy`]), so which queries are dropped, duplicated,
//! or delayed is a pure function of the seed and the query wire — not of
//! arrival order — and a rerun with the same seed exercises the identical
//! fault schedule.
//!
//! The bind-failure test flips process-global fault switches in the
//! vendored `tokio::net`, so all tests here serialize on one lock.

// Each test deliberately holds the serialization guard across its awaits:
// the vendored runtime is thread-per-task, so a parked std mutex blocks
// only its own test thread, never an executor worker.
#![allow(clippy::await_holding_lock)]

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use ldp_replay::{LiveReplay, ReplayError, ReplayMode, ReplayReport};
use ldp_server::auth::AuthEngine;
use ldp_server::live::LiveServer;
use ldp_server::ChaosPolicy;
use ldp_trace::{Protocol, TraceRecord};
use ldp_wire::{Name, RrType};
use ldp_workload::zones::wildcard_example_zone;
use ldp_zone::ZoneSet;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn engine() -> Arc<AuthEngine> {
    let mut set = ZoneSet::new();
    set.insert(wildcard_example_zone());
    Arc::new(AuthEngine::with_zones(Arc::new(set)))
}

fn trace(n: u64, gap_us: u64, protocol: Protocol) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| {
            let mut rec = TraceRecord::udp_query(
                i * gap_us,
                format!("10.0.0.{}", 1 + i % 5).parse().unwrap(),
                (1024 + i % 60000) as u16,
                Name::parse(&format!("q{i}.example.com")).unwrap(),
                RrType::A,
            );
            rec.protocol = protocol;
            rec
        })
        .collect()
}

/// One fast-mode UDP replay against a 20%-lossy server. Returns the report
/// plus the number of responses the server actually swallowed.
async fn lossy_run(seed: u64) -> (ReplayReport, u64) {
    let chaos = Arc::new(ChaosPolicy::new(seed).drop_responses(0.2));
    let server =
        LiveServer::spawn_with_chaos(engine(), "127.0.0.1:0".parse().unwrap(), chaos.clone())
            .await
            .unwrap();
    let mut replay = LiveReplay::new(server.addr);
    replay.mode = ReplayMode::Fast;
    // Give the retry ladder room to exhaust (3 attempts ≈ 1.8 s worst
    // case); the adaptive drain exits the moment nothing is in flight.
    replay.drain = Duration::from_secs(4);
    let report = replay.run(trace(300, 500, Protocol::Udp)).await.unwrap();
    (report, chaos.stats.dropped.load(Ordering::Relaxed))
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn lossy_server_recovers_via_retries() {
    let _g = lock();
    let (report, dropped) = lossy_run(7).await;
    assert_eq!(report.sent, 300);
    assert!(dropped > 0, "chaos dropped nothing at 20% loss");
    assert!(
        report.timeouts > 0,
        "drops must surface as attempt expiries"
    );
    assert!(report.retries > 0, "expiries must trigger retransmits");
    // Three attempts at 20% loss lose a query with p = 0.008; ≥99% of the
    // trace must still be answered.
    assert!(
        report.answered >= 297,
        "answered only {}/300 (timeouts {}, retries {}, gave_up {})",
        report.answered,
        report.timeouts,
        report.retries,
        report.gave_up
    );
    // Retransmits are accounted separately, never inflating `sent`.
    assert_eq!(report.sent, 300);
    assert_eq!(report.errors, 0);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn lossy_replay_is_deterministic_under_a_fixed_seed() {
    let _g = lock();
    let (first, first_dropped) = lossy_run(7).await;
    let (second, second_dropped) = lossy_run(7).await;
    // The fault schedule is content-keyed: same seed, same trace → the
    // same queries lose the same attempts, so the outcome counters match.
    assert_eq!(first.answered, second.answered, "answered diverged");
    assert_eq!(first.gave_up, second.gave_up, "gave_up diverged");
    assert_eq!(
        first_dropped, second_dropped,
        "server drop schedule diverged"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn tcp_reset_mid_replay_triggers_reconnects_not_aborts() {
    let _g = lock();
    let chaos = Arc::new(ChaosPolicy::new(11).reset_after(10));
    let server =
        LiveServer::spawn_with_chaos(engine(), "127.0.0.1:0".parse().unwrap(), chaos.clone())
            .await
            .unwrap();
    let mut replay = LiveReplay::new(server.addr);
    replay.drain = Duration::from_secs(4);
    // 100 TCP queries from 5 sources, 20 per source: every connection is
    // reset after its 10th answer, mid-stream for every source.
    let report = replay.run(trace(100, 2_000, Protocol::Tcp)).await.unwrap();
    assert!(
        chaos.stats.resets.load(Ordering::Relaxed) >= 1,
        "server never reset a connection"
    );
    assert!(
        report.reconnects >= 1,
        "client never reconnected after a reset"
    );
    // Graceful degradation: every record still goes on the wire (the
    // replay never aborts), queries cut down by a reset expire to
    // `gave_up` rather than erroring, and most are answered.
    assert_eq!(report.sent, 100);
    assert_eq!(report.errors, 0);
    assert!(
        report.answered >= 70,
        "answered only {}/100",
        report.answered
    );
    assert_eq!(report.answered + report.gave_up, 100);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn udp_bind_failures_degrade_to_per_record_errors() {
    let _g = lock();
    // Spawn the server first so its own bind is not sacrificed.
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    tokio::net::fault::clear();
    tokio::net::fault::inject_udp_bind_failures(3);
    let mut replay = LiveReplay::new(server.addr);
    replay.drain = Duration::from_secs(2);
    let report = replay.run(trace(50, 1_000, Protocol::Udp)).await.unwrap();
    tokio::net::fault::clear();
    // Exactly the three poisoned binds degrade — to typed per-record
    // outcomes, not an abort — and the rest of the replay proceeds.
    assert_eq!(report.errors, 3);
    assert_eq!(report.sent, 47);
    let bind_errors = report
        .outcomes
        .iter()
        .filter(|o| o.error == Some(ReplayError::Bind))
        .count();
    assert_eq!(bind_errors, 3);
    assert!(
        report.answered >= 40,
        "answered only {}/47",
        report.answered
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn duplicated_and_delayed_responses_do_not_double_count() {
    let _g = lock();
    let chaos = Arc::new(
        ChaosPolicy::new(3)
            .duplicate_responses(0.3)
            .delay_responses(0.2, Duration::from_millis(40)),
    );
    let server =
        LiveServer::spawn_with_chaos(engine(), "127.0.0.1:0".parse().unwrap(), chaos.clone())
            .await
            .unwrap();
    let mut replay = LiveReplay::new(server.addr);
    replay.mode = ReplayMode::Fast;
    replay.drain = Duration::from_secs(2);
    let report = replay.run(trace(200, 500, Protocol::Udp)).await.unwrap();
    assert!(chaos.stats.duplicated.load(Ordering::Relaxed) > 0);
    assert!(chaos.stats.delayed.load(Ordering::Relaxed) > 0);
    // A duplicate must never be counted as a second answer, and a 40 ms
    // delay sits well under the 250 ms timeout, so (nearly) everything is
    // answered exactly once.
    assert_eq!(report.sent, 200);
    assert!(report.answered <= 200, "duplicates double-counted");
    assert!(
        report.answered >= 198,
        "answered only {}/200",
        report.answered
    );
}
