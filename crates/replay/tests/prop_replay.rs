//! Property tests for the replay engine's pure components: the sticky
//! distribution plan, the ΔT scheduling clock, and the Postman's batcher.

use ldp_replay::plan::{Batcher, ReplayPlan};
use ldp_replay::timing::ReplayClock;
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::IpAddr;

fn ip(v: u32) -> IpAddr {
    IpAddr::V4(std::net::Ipv4Addr::from(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Affinity invariant: for any interleaving of sources, a source's
    /// querier never changes, and partitioning conserves records.
    #[test]
    fn plan_affinity_invariant(
        sources in proptest::collection::vec(0u32..64, 1..300),
        distributors in 1usize..6,
        queriers in 1usize..6,
    ) {
        let mut plan = ReplayPlan::new(distributors, queriers);
        let mut home: std::collections::HashMap<u32, usize> = Default::default();
        for &s in &sources {
            let (_, _, idx) = plan.route(ip(s));
            prop_assert!(idx < distributors * queriers);
            if let Some(&h) = home.get(&s) {
                prop_assert_eq!(h, idx, "source moved between queriers");
            } else {
                home.insert(s, idx);
            }
        }
        // Partition conserves every record and respects the same homes.
        let mut plan2 = ReplayPlan::new(distributors, queriers);
        let records: Vec<(IpAddr, usize)> =
            sources.iter().enumerate().map(|(i, &s)| (ip(s), i)).collect();
        let parts = plan2.partition(records, |r| r.0);
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, sources.len());
        for part in &parts {
            for w in part.windows(2) {
                prop_assert!(w[0].1 < w[1].1, "partition broke time order");
            }
        }
    }

    /// Clock invariants: a query never fires before its target; errors
    /// computed at the emitted time are zero; scaling behaves linearly.
    #[test]
    fn clock_never_early(
        trace_epoch in 0u64..1_000_000,
        offsets in proptest::collection::vec(0u64..10_000_000, 1..50),
        real_epoch in 0u64..1_000_000,
        elapsed in 0u64..20_000_000,
    ) {
        let clock = ReplayClock::synchronize(trace_epoch, real_epoch);
        for &off in &offsets {
            let trace_t = trace_epoch + off;
            let now = real_epoch + elapsed;
            match clock.delay_us(trace_t, now) {
                Some(d) => {
                    // Firing after the delay lands exactly on target.
                    prop_assert_eq!(clock.error_us(trace_t, now + d), 0);
                    prop_assert!(d > 0);
                }
                None => {
                    // Already at/past the target: error is non-negative.
                    prop_assert!(clock.error_us(trace_t, now) >= 0);
                }
            }
        }
    }

    /// Later trace times never get earlier targets (monotone schedule).
    #[test]
    fn clock_targets_monotone(
        trace_epoch in 0u64..1_000,
        mut offsets in proptest::collection::vec(0u64..1_000_000, 2..50),
        speed in prop_oneof![Just(0.25f64), Just(0.5), Just(1.0), Just(2.0)],
    ) {
        offsets.sort_unstable();
        let clock = ReplayClock::synchronize(trace_epoch, 500).with_speed(speed);
        let targets: Vec<u64> = offsets
            .iter()
            .map(|&o| clock.target_real_us(trace_epoch + o))
            .collect();
        for w in targets.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Replaying at speed s preserves trace order and scales every
    /// inter-send gap by s: the scheduled targets for consecutive records
    /// are `s × trace gap` apart, within 1 µs of floor rounding at each
    /// endpoint ("smaller is faster": s = 0.5 halves every gap).
    #[test]
    fn timed_schedule_scales_gaps_by_speed(
        mut offsets in proptest::collection::vec(0u64..5_000_000, 2..80),
        speed in prop_oneof![Just(0.25f64), Just(0.5), Just(1.0), Just(2.0), Just(4.0)],
    ) {
        offsets.sort_unstable();
        let clock = ReplayClock::synchronize(0, 0).with_speed(speed);
        let targets: Vec<u64> = offsets.iter().map(|&o| clock.target_real_us(o)).collect();
        for (w_off, w_t) in offsets.windows(2).zip(targets.windows(2)) {
            prop_assert!(w_t[0] <= w_t[1], "scaling reordered the schedule");
            let want = (w_off[1] - w_off[0]) as f64 * speed;
            let got = (w_t[1] - w_t[0]) as f64;
            prop_assert!(
                (got - want).abs() <= 1.0,
                "gap {} scaled to {got}, wanted {want}", w_off[1] - w_off[0]
            );
        }
    }

    /// The batched send path never reorders a source's queries across
    /// batch boundaries: for any input, batch size, tree shape, and flush
    /// horizon, concatenating each querier's batches in flush order yields
    /// the input order restricted to that querier — and every source lands
    /// on exactly one querier.
    #[test]
    fn batcher_never_reorders_across_batches(
        recs in proptest::collection::vec((0u32..8, 0u64..1_000), 1..300),
        batch_size in 1usize..64,
        distributors in 1usize..4,
        queriers in 1usize..4,
        horizon in prop_oneof![Just(u64::MAX), Just(50u64)],
    ) {
        let plan = ReplayPlan::new(distributors, queriers);
        let mut batcher: Batcher<(u32, usize)> = Batcher::new(plan, batch_size, horizon);
        let mut out: Vec<(usize, Vec<(u32, usize)>)> = Vec::new();
        let mut time = 0u64;
        for (i, &(src, gap)) in recs.iter().enumerate() {
            time += gap;
            batcher.push(ip(src), time, (src, i), &mut out);
        }
        out.extend(batcher.finish());

        let total: usize = out.iter().map(|(_, b)| b.len()).sum();
        prop_assert_eq!(total, recs.len(), "batcher lost or duplicated records");

        let mut last_index: HashMap<usize, usize> = HashMap::new();
        let mut source_home: HashMap<u32, usize> = HashMap::new();
        for (q, batch) in &out {
            for &(src, i) in batch {
                if let Some(&prev) = last_index.get(q) {
                    prop_assert!(
                        prev < i,
                        "querier {q} saw index {i} after {prev}: reordered across batches"
                    );
                }
                last_index.insert(*q, i);
                if let Some(&home) = source_home.get(&src) {
                    prop_assert_eq!(home, *q, "source split across queriers");
                } else {
                    source_home.insert(src, *q);
                }
            }
        }
    }
}
