//! Golden-schema tests: the JSON field sets (names and order) of the
//! metrics types that land in result files and run manifests. A rename
//! here is a breaking change for every downstream consumer diffing
//! artifacts across commits — it must show up as a deliberate edit to
//! this test, not slip through a refactor.

use ldp_metrics::{LogHistogram, PipelineTotals, ShardStats, Summary};
use serde::{Serialize, Value};

fn object_keys(v: &Value) -> Vec<String> {
    let Value::Object(fields) = v else {
        panic!("expected a JSON object, got {v:?}");
    };
    fields.iter().map(|(k, _)| k.clone()).collect()
}

#[test]
fn shard_stats_schema() {
    let keys = object_keys(&ShardStats::new(3).to_json_value());
    assert_eq!(
        keys,
        [
            "shard",
            "sent",
            "answered",
            "late",
            "timeouts",
            "retries",
            "reconnects",
            "gave_up",
            "errors",
            "batches",
            "postman_stalls",
            "max_queue_depth",
            "depths",
        ]
    );
}

#[test]
fn pipeline_totals_schema() {
    let keys = object_keys(&PipelineTotals::default().to_json_value());
    assert_eq!(
        keys,
        [
            "sent",
            "answered",
            "late",
            "timeouts",
            "retries",
            "reconnects",
            "gave_up",
            "errors",
            "batches",
            "postman_stalls",
            "max_queue_depth",
        ]
    );
}

#[test]
fn summary_schema() {
    let s = Summary::compute(&[1.0, 2.0, 3.0]).unwrap();
    let keys = object_keys(&s.to_json_value());
    assert_eq!(
        keys,
        ["count", "min", "p5", "q1", "median", "q3", "p95", "max", "mean"]
    );
}

#[test]
fn log_histogram_schema() {
    let mut h = LogHistogram::new();
    h.record(42);
    let v = h.to_json_value();
    let keys = object_keys(&v);
    assert_eq!(
        keys,
        [
            "scheme",
            "precision_bits",
            "unit",
            "count",
            "min",
            "max",
            "sum",
            "buckets",
        ]
    );
    // Units are pinned too: ticks, log2 bucketing with 5 precision bits.
    assert_eq!(v.get("scheme").and_then(Value::as_str), Some("log2-32"));
    assert_eq!(v.get("unit").and_then(Value::as_str), Some("tick"));
    assert_eq!(v.get("precision_bits").and_then(Value::as_u64), Some(5));
}
