//! Property tests for [`LogHistogram`]: merge is associative and
//! commutative, recorded counts are conserved, and every quantile's
//! reported error stays within the bucket bound.

use ldp_metrics::LogHistogram;
use proptest::prelude::*;

fn build(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Spread samples across octaves so the log bucketing actually engages:
/// raw `u64` generators would almost always land in the top few octaves.
fn sample() -> impl Strategy<Value = u64> {
    (0u32..40, 0u64..1024).prop_map(|(octave, fill)| (1u64 << octave) + fill % (1u64 << octave))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge(a, b) == merge(b, a), and count/sum/min/max are conserved
    /// exactly — nothing is lost or double-counted.
    #[test]
    fn merge_commutes_and_conserves(
        xs in proptest::collection::vec(sample(), 0..80),
        ys in proptest::collection::vec(sample(), 0..80),
    ) {
        let (a, b) = (build(&xs), build(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);

        // Merging equals recording the concatenation.
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(&ab, &build(&all));
        prop_assert_eq!(ab.min(), all.iter().min().copied());
        prop_assert_eq!(ab.max(), all.iter().max().copied());
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): shard results can fold in any order.
    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(sample(), 0..50),
        ys in proptest::collection::vec(sample(), 0..50),
        zs in proptest::collection::vec(sample(), 0..50),
    ) {
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Every quantile's reported value sits in the same bucket as the
    /// exact order statistic of the same rank (`⌈q·n⌉`), so the error is
    /// bounded by that bucket's width.
    #[test]
    fn quantile_error_within_bucket_bound(
        values in proptest::collection::vec(sample(), 1..200),
        q_permille in proptest::collection::vec(0u32..=1000, 1..8),
    ) {
        let h = build(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in q_permille.into_iter().map(|p| p as f64 / 1000.0) {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = h.quantile(q).expect("non-empty");
            let (lo, hi) = h.quantile_bounds(q).expect("non-empty");
            prop_assert!(
                (lo..=hi).contains(&exact),
                "exact order statistic {exact} outside reported bucket [{lo}, {hi}] at q={q}"
            );
            prop_assert!(
                got.abs_diff(exact) < LogHistogram::bucket_width(exact).max(1),
                "quantile {got} vs exact {exact}: error exceeds bucket width at q={q}"
            );
        }
    }

    /// Count conservation under record_n and repeated merges of the same
    /// histogram (self-similar folding, as the engine does per shard).
    #[test]
    fn count_conserved_under_record_n(
        pairs in proptest::collection::vec((sample(), 1u64..50), 0..40),
    ) {
        let mut h = LogHistogram::new();
        for &(v, n) in &pairs {
            h.record_n(v, n);
        }
        let expect: u64 = pairs.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(h.count(), expect);
        let mut doubled = h.clone();
        doubled.merge(&h);
        prop_assert_eq!(doubled.count(), expect * 2);
        if let (Some(m), Some(d)) = (h.mean(), doubled.mean()) {
            prop_assert!((m - d).abs() < 1e-9, "doubling must not move the mean");
        }
    }
}
