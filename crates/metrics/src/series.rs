//! Time-bucketed measurements: gauges sampled over experiment time
//! (memory/connections in Figures 13–14) and event rates per interval
//! (query rate in Figures 8–9).

use serde::Serialize;

/// A gauge sampled at points in time (e.g. RSS every second).
#[derive(Debug, Clone, Default, Serialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Appends a sample at time `t` (seconds).
    pub fn push(&mut self, t: f64, value: f64) {
        self.points.push((t, value));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of values at `t >= from` (steady-state averaging; the paper
    /// discards the warm-up transient before reporting).
    pub fn steady_state_mean(&self, from: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Max value over the whole series.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .max_by(|a, b| a.partial_cmp(b).expect("no NaNs in series"))
    }
}

/// Counts events into fixed-width time buckets and reports per-bucket
/// rates.
#[derive(Debug, Clone, Serialize)]
pub struct RateSeries {
    bucket_seconds: f64,
    counts: Vec<u64>,
}

impl RateSeries {
    /// New rate series with the given bucket width (1.0 = per-second
    /// rates, as Figure 8 uses).
    pub fn new(bucket_seconds: f64) -> RateSeries {
        assert!(bucket_seconds > 0.0);
        RateSeries {
            bucket_seconds,
            counts: Vec::new(),
        }
    }

    /// Records one event at time `t` seconds.
    pub fn record(&mut self, t: f64) {
        if t < 0.0 {
            return;
        }
        let idx = (t / self.bucket_seconds) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Per-bucket rates (events per second).
    pub fn rates(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.bucket_seconds)
            .collect()
    }

    /// Per-bucket relative difference vs another series:
    /// `(self - other) / other`, skipping empty buckets in `other`.
    /// This is exactly Figure 8's per-second rate difference.
    pub fn relative_difference(&self, other: &RateSeries) -> Vec<f64> {
        let n = self.counts.len().min(other.counts.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if other.counts[i] == 0 {
                continue;
            }
            out.push((self.counts[i] as f64 - other.counts[i] as f64) / other.counts[i] as f64);
        }
        out
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Median per-bucket rate.
    pub fn median_rate(&self) -> Option<f64> {
        let mut rates = self.rates();
        if rates.is_empty() {
            return None;
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in rates"));
        Some(crate::summary::percentile_sorted(&rates, 0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeseries_basics() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 1.0);
        ts.push(1.0, 3.0);
        ts.push(2.0, 5.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.last(), Some(5.0));
        assert_eq!(ts.max(), Some(5.0));
        assert_eq!(ts.steady_state_mean(1.0), Some(4.0));
        assert_eq!(ts.steady_state_mean(10.0), None);
    }

    #[test]
    fn rate_bucketing() {
        let mut rs = RateSeries::new(1.0);
        for i in 0..10 {
            rs.record(0.05 * i as f64); // 10 events in [0,0.5)
        }
        rs.record(1.5);
        assert_eq!(rs.buckets(), 2);
        assert_eq!(rs.rates(), vec![10.0, 1.0]);
        assert_eq!(rs.total(), 11);
    }

    #[test]
    fn negative_times_ignored() {
        let mut rs = RateSeries::new(1.0);
        rs.record(-0.5);
        assert_eq!(rs.total(), 0);
    }

    #[test]
    fn relative_difference_matches_figure8_definition() {
        let mut orig = RateSeries::new(1.0);
        let mut replay = RateSeries::new(1.0);
        // 1000 vs 1001 events in bucket 0 → +0.1% difference.
        for i in 0..1000 {
            orig.record(i as f64 / 1001.0);
        }
        for i in 0..1001 {
            replay.record(i as f64 / 1002.0);
        }
        let diffs = replay.relative_difference(&orig);
        assert_eq!(diffs.len(), 1);
        assert!((diffs[0] - 0.001).abs() < 1e-9);
    }

    #[test]
    fn relative_difference_skips_empty_buckets() {
        let mut orig = RateSeries::new(1.0);
        orig.record(2.5); // buckets 0,1 empty
        let mut replay = RateSeries::new(1.0);
        replay.record(0.5);
        replay.record(2.5);
        let diffs = replay.relative_difference(&orig);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0], 0.0);
    }

    #[test]
    fn median_rate() {
        let mut rs = RateSeries::new(1.0);
        for t in [0.1, 0.2, 1.1, 2.2, 2.3, 2.4] {
            rs.record(t);
        }
        // rates: [2, 1, 3] → median 2.
        assert_eq!(rs.median_rate(), Some(2.0));
        assert_eq!(RateSeries::new(1.0).median_rate(), None);
    }

    #[test]
    fn sub_second_buckets() {
        let mut rs = RateSeries::new(0.5);
        rs.record(0.1);
        rs.record(0.6);
        assert_eq!(rs.buckets(), 2);
        assert_eq!(rs.rates(), vec![2.0, 2.0]);
    }
}
