//! Fixed-memory log-bucketed latency histograms (HDR-style).
//!
//! The evaluation figures used to carry raw `Vec<f64>` sample vectors from
//! every shard to a final sort — unbounded memory, and quartiles computed
//! over an *unsorted merge* are only correct if someone remembers to
//! re-sort. [`LogHistogram`] replaces that path: values (integer ticks,
//! by convention microseconds) land in buckets whose width is a fixed
//! fraction of their magnitude, so the structure is O(1) memory, merge is
//! a lossless element-wise add (associative and commutative by
//! construction), and every quantile comes back with an **exact error
//! bound** — the reported value and the true order statistic of the same
//! rank always share one bucket, so they differ by less than that
//! bucket's width (≲ 1/32 ≈ 3.1% relative, and exact below 64 ticks).
//!
//! Bucketing scheme (`log2-32`, precision `P = 5`):
//!
//! * values `< 2^(P+1)` (64) map to singleton buckets — index = value;
//! * larger values keep their top `P + 1` significant bits: with
//!   `shift = msb(v) − P`, index = `(shift << P) + (v >> shift)`.
//!
//! The ranges are contiguous (bucket 64 starts exactly where bucket 63
//! ends) and invertible, so quantiles report real bucket bounds rather
//! than approximate powers.

use serde::{Serialize, Value};
use serde_json::json;

use crate::summary::Summary;

/// Sub-bucket precision: `2^P` linear sub-buckets per octave.
const P: u32 = 5;
/// Buckets: 2·2^P singleton buckets + 32 sub-buckets for each of the
/// remaining 58 octaves of a `u64` (shift runs 1..=58).
const NUM_BUCKETS: usize = (1 << (P + 1)) + 58 * (1 << P);

/// Fixed-memory log-bucketed histogram over `u64` ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Builds a histogram from float samples scaled by `scale` (e.g.
    /// milliseconds × 1000 → microsecond ticks). Negative samples clamp
    /// to zero; NaN is ignored.
    pub fn from_samples_scaled(samples: &[f64], scale: f64) -> LogHistogram {
        let mut h = LogHistogram::new();
        for &s in samples {
            if s.is_nan() {
                continue;
            }
            h.record((s * scale).max(0.0) as u64);
        }
        h
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Lossless merge: bucket-wise add. Associative and commutative, so
    /// per-shard histograms can be folded in any order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (exact). `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (exact). `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean (the sum is kept exactly).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile as a bucket midpoint, clamped to the recorded
    /// `[min, max]`. The reported value and the rank-`⌈q·n⌉` order
    /// statistic share a bucket, so the error is below one bucket width
    /// (see [`LogHistogram::bucket_bounds`]).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let (lo, hi) = self.quantile_bounds(q)?;
        Some((lo + (hi - lo) / 2).clamp(self.min, self.max))
    }

    /// Inclusive bounds of the bucket holding the `q`-quantile's order
    /// statistic (rank `⌈q·n⌉`, clamped to `[1, n]`).
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bounds(i));
            }
        }
        Some(bucket_bounds(NUM_BUCKETS - 1))
    }

    /// Inclusive bounds of the bucket `value` falls in.
    pub fn bucket_bounds(value: u64) -> (u64, u64) {
        bucket_bounds(bucket_index(value))
    }

    /// Width of the bucket `value` falls in (≥ 1 tick).
    pub fn bucket_width(value: u64) -> u64 {
        let (lo, hi) = Self::bucket_bounds(value);
        hi - lo + 1
    }

    /// Five-number summary with every statistic divided by `div` (e.g.
    /// `1000.0` renders microsecond ticks as milliseconds). Quantiles are
    /// bucket midpoints, min/max/mean exact.
    pub fn summary(&self, div: f64) -> Option<Summary> {
        if self.count == 0 {
            return None;
        }
        let q = |p: f64| self.quantile(p).unwrap_or(0) as f64 / div;
        Some(Summary {
            count: self.count as usize,
            min: self.min as f64 / div,
            p5: q(0.05),
            q1: q(0.25),
            median: q(0.50),
            q3: q(0.75),
            p95: q(0.95),
            max: self.max as f64 / div,
            mean: self.mean().unwrap_or(0.0) / div,
        })
    }

    /// Occupied buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).0, c))
            .collect()
    }
}

/// Bucket index for a value (total order, contiguous ranges).
fn bucket_index(v: u64) -> usize {
    let h = 63 - (v | 1).leading_zeros();
    if h <= P {
        v as usize
    } else {
        let shift = h - P;
        ((shift as usize) << P) + (v >> shift) as usize
    }
}

/// Inclusive `[lo, hi]` range of bucket `i` (inverse of `bucket_index`).
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < (1 << (P + 1)) {
        return (i as u64, i as u64);
    }
    let shift = (i >> P) as u32 - 1;
    let m = (i - ((shift as usize) << P)) as u64;
    let lo = m << shift;
    // Width-minus-one first: the top bucket's `hi` is exactly u64::MAX.
    (lo, lo + ((1u64 << shift) - 1))
}

impl Serialize for LogHistogram {
    fn to_json_value(&self) -> Value {
        // `sum` as u64 saturates only beyond ~5.8 million years of
        // microseconds — acceptable for a JSON artifact.
        let sum = u64::try_from(self.sum).unwrap_or(u64::MAX);
        json!({
            "scheme": "log2-32",
            "precision_bits": P,
            "unit": "tick",
            "count": self.count,
            "min": if self.count > 0 { self.min } else { 0 },
            "max": self.max,
            "sum": sum,
            "buckets": self.nonzero_buckets(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_contiguous_and_invertible() {
        // Every bucket starts exactly where the previous one ends.
        let mut expect_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} not contiguous");
            assert!(hi >= lo);
            // Both endpoints map back to this bucket.
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            expect_lo = match hi.checked_add(1) {
                Some(n) => n,
                None => break, // last bucket covers u64::MAX
            };
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let got = h.quantile(q).unwrap();
            let rank = ((q * 64.0).ceil() as u64).clamp(1, 64);
            assert_eq!(got, rank - 1, "q={q}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 5_000, 123_456, 9_999_999, u64::MAX / 3] {
            let w = LogHistogram::bucket_width(v);
            assert!(
                (w as f64) <= (v as f64) / 16.0,
                "bucket width {w} too wide for {v}"
            );
        }
    }

    #[test]
    fn merge_equals_bulk_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [3u64, 70, 70, 5_000, 123, 99_999] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 64, 8_191, 8_192] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 10);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert!(h.quantile(0.5).is_none());
        assert!(h.summary(1.0).is_none());
        assert!(h.min().is_none() && h.max().is_none() && h.mean().is_none());
    }

    #[test]
    fn summary_scales_units() {
        let mut h = LogHistogram::new();
        h.record_n(5_000, 10); // 5 ms in µs
        let s = h.summary(1000.0).unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert!((s.median - 5.0).abs() <= LogHistogram::bucket_width(5_000) as f64 / 1000.0);
        assert!((s.mean - 5.0).abs() < 1e-9);
    }

    #[test]
    fn serializes_sparse_buckets() {
        let mut h = LogHistogram::new();
        h.record(7);
        h.record(7);
        h.record(1_000_000);
        let v = h.to_json_value();
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("scheme").and_then(Value::as_str), Some("log2-32"));
        let buckets = v.get("buckets").and_then(Value::as_array).unwrap();
        assert_eq!(buckets.len(), 2);
    }
}
