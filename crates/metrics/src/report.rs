//! Experiment result reports: aligned text tables for the console plus
//! JSON for downstream plotting. Every experiment binary in `ldp-bench`
//! prints one of these, mirroring a table or figure of the paper.

use std::fmt::Write as _;
use std::path::Path;

use serde::Serialize;
use serde_json::{json, Value};

/// A report: a titled collection of sections, each a table of rows.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    pub title: String,
    pub sections: Vec<Section>,
}

/// One table within a report.
#[derive(Debug, Clone, Serialize)]
pub struct Section {
    pub heading: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl Report {
    /// New report reproducing the named paper artifact (e.g. "Figure 10").
    pub fn new(title: impl Into<String>) -> Report {
        Report {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Starts a new section with the given column headers.
    pub fn section(&mut self, heading: impl Into<String>, columns: &[&str]) -> &mut Section {
        self.sections.push(Section {
            heading: heading.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        });
        self.sections.last_mut().expect("just pushed")
    }

    /// Renders the aligned text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        for section in &self.sections {
            let _ = writeln!(out, "\n--- {} ---", section.heading);
            // Column widths from headers and cells.
            let mut widths: Vec<usize> = section.columns.iter().map(|c| c.len()).collect();
            let rendered: Vec<Vec<String>> = section
                .rows
                .iter()
                .map(|row| row.iter().map(render_cell).collect())
                .collect();
            for row in &rendered {
                for (i, cell) in row.iter().enumerate() {
                    if i < widths.len() {
                        widths[i] = widths[i].max(cell.len());
                    }
                }
            }
            let header: Vec<String> = section
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", header.join("  "));
            for row in &rendered {
                let line: Vec<String> = row
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let w = widths.get(i).copied().unwrap_or(c.len());
                        format!("{:<width$}", c, width = w)
                    })
                    .collect();
                let _ = writeln!(out, "{}", line.join("  "));
            }
        }
        out
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&json!({
            "title": self.title,
            "sections": self.sections,
        }))
        .expect("report serializes")
    }

    /// Writes both text and JSON files under `dir` using `stem`.
    pub fn write_files(&self, dir: &Path, stem: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{stem}.txt")), self.to_text())?;
        std::fs::write(dir.join(format!("{stem}.json")), self.to_json())?;
        Ok(())
    }
}

impl Section {
    /// Appends a row of JSON-able cells.
    pub fn row(&mut self, cells: Vec<Value>) -> &mut Section {
        self.rows.push(cells);
        self
    }
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{}", f as i64)
                } else {
                    format!("{f:.4}")
                }
            } else {
                n.to_string()
            }
        }
        other => other.to_string(),
    }
}

/// Shorthand for building a JSON cell row.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        vec![$(::serde_json::json!($cell)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("Figure X: test");
        let s = r.section("bandwidth", &["config", "median", "q3"]);
        s.row(crate::row!["zsk-1024", 171.0, 180.25]);
        s.row(crate::row!["zsk-2048", 225.5, 231.0]);
        r
    }

    #[test]
    fn text_rendering_aligned() {
        let text = sample().to_text();
        assert!(text.contains("=== Figure X: test ==="));
        assert!(text.contains("zsk-1024"));
        let lines: Vec<&str> = text.lines().collect();
        let header = lines.iter().find(|l| l.starts_with("config")).unwrap();
        assert!(header.contains("median"));
    }

    #[test]
    fn json_roundtrips() {
        let json = sample().to_json();
        let v: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["title"], "Figure X: test");
        assert_eq!(v["sections"][0]["rows"][0][0], "zsk-1024");
    }

    #[test]
    fn write_files_creates_both() {
        let dir = std::env::temp_dir().join(format!("ldp-report-test-{}", std::process::id()));
        sample().write_files(&dir, "figx").unwrap();
        assert!(dir.join("figx.txt").exists());
        assert!(dir.join("figx.json").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn integer_cells_render_without_decimals() {
        assert_eq!(render_cell(&serde_json::json!(15)), "15");
        assert_eq!(render_cell(&serde_json::json!(1.5)), "1.5000");
        assert_eq!(render_cell(&serde_json::json!("s")), "s");
    }
}
