//! Empirical cumulative distribution functions (Figures 7, 8, 15c).

use serde::Serialize;

/// An empirical CDF over f64 samples.
#[derive(Debug, Clone, Serialize)]
pub struct Cdf {
    /// Sorted sample values.
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF (sorts a copy of the samples).
    pub fn new(samples: &[f64]) -> Cdf {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        Cdf { sorted }
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at quantile `q ∈ [0,1]` (linear interpolation).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(crate::summary::percentile_sorted(&self.sorted, q))
    }

    /// Downsamples to at most `points` (x, F(x)) pairs for plotting or
    /// printing, always including the extremes.
    pub fn points(&self, points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        if n == 0 || points == 0 {
            return Vec::new();
        }
        let step = (n.max(points) / points.max(1)).max(1);
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(x, _)| x) != Some(self.sorted[n - 1]) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }

    /// Maximum vertical distance to another CDF (two-sample
    /// Kolmogorov–Smirnov statistic) — the quantitative "how close is the
    /// replayed distribution to the original" measure behind Figure 7.
    pub fn ks_distance(&self, other: &Cdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.fraction_at(x) - other.fraction_at(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_at_basics() {
        let c = Cdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(1.0), 0.25);
        assert_eq!(c.fraction_at(2.5), 0.5);
        assert_eq!(c.fraction_at(4.0), 1.0);
        assert_eq!(c.fraction_at(9.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let c = Cdf::new(&(0..=100).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(c.quantile(0.5), Some(50.0));
        assert_eq!(c.quantile(0.0), Some(0.0));
        assert_eq!(c.quantile(1.0), Some(100.0));
        assert!(Cdf::new(&[]).quantile(0.5).is_none());
    }

    #[test]
    fn identical_distributions_have_zero_ks() {
        let a = Cdf::new(&[1.0, 2.0, 3.0]);
        let b = Cdf::new(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn disjoint_distributions_have_ks_one() {
        let a = Cdf::new(&[1.0, 2.0]);
        let b = Cdf::new(&[10.0, 20.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
    }

    #[test]
    fn shifted_distribution_partial_ks() {
        let a = Cdf::new(&(0..100).map(|i| i as f64).collect::<Vec<_>>());
        let b = Cdf::new(&(50..150).map(|i| i as f64).collect::<Vec<_>>());
        let d = a.ks_distance(&b);
        assert!((d - 0.5).abs() < 0.02, "{d}");
    }

    #[test]
    fn points_downsampled_and_terminated() {
        let c = Cdf::new(&(0..1000).map(|i| i as f64).collect::<Vec<_>>());
        let pts = c.points(10);
        assert!(pts.len() <= 12);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Monotone.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::new(&[]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at(1.0), 0.0);
        assert!(c.points(5).is_empty());
    }
}
