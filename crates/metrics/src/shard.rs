//! Per-shard replay pipeline statistics.
//!
//! The batched replay engine runs one querier per shard, each draining
//! whole batches from a bounded queue. Whether the pipeline is saturated
//! — and *where* — shows up in exactly these counters: a shard whose
//! queue is always deep is send-bound (add queriers), a postman that
//! keeps stalling on full queues is distribution-bound, and shards with
//! near-empty queues are reader-bound. `fig09_throughput` and
//! `replay_pipeline` report them per shard so §4.3-style scaling
//! experiments can tell the three apart.

use serde::Serialize;

/// Bounded ring of queue-depth samples (in batches), taken each time the
/// postman enqueues a batch. Keeps the most recent [`DepthRing::CAPACITY`]
/// samples; [`DepthRing::chronological`] replays them oldest-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthRing {
    samples: Vec<u32>,
    /// Next write slot once the ring has wrapped.
    head: usize,
    /// Total samples ever pushed (so readers can tell how much history
    /// the ring summarizes even after old samples were overwritten).
    pushed: u64,
}

impl DepthRing {
    /// Samples retained; enough to cover every enqueue of a
    /// 100k-record replay at the default batch size without wrapping.
    pub const CAPACITY: usize = 512;

    pub fn new() -> DepthRing {
        DepthRing {
            samples: Vec::new(),
            head: 0,
            pushed: 0,
        }
    }

    /// Records one depth sample, evicting the oldest once full.
    pub fn push(&mut self, depth: u32) {
        if self.samples.len() < Self::CAPACITY {
            self.samples.push(depth);
        } else {
            self.samples[self.head] = depth;
            self.head = (self.head + 1) % Self::CAPACITY;
        }
        self.pushed += 1;
    }

    /// Total samples ever pushed (≥ `len()`).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The retained samples oldest-first.
    pub fn chronological(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.samples.len());
        out.extend_from_slice(&self.samples[self.head..]);
        out.extend_from_slice(&self.samples[..self.head]);
        out
    }

    /// Mean of the retained samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&d| f64::from(d)).sum::<f64>() / self.samples.len() as f64
    }
}

impl Default for DepthRing {
    fn default() -> DepthRing {
        DepthRing::new()
    }
}

impl Serialize for DepthRing {
    fn to_json_value(&self) -> serde::Value {
        self.chronological().to_json_value()
    }
}

/// Counters one querier shard accumulates while draining batches.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ShardStats {
    /// Shard index (querier number within the replay).
    pub shard: usize,
    /// Queries sent by this shard.
    pub sent: u64,
    /// Responses matched back to a query.
    pub answered: u64,
    /// Timed-mode sends that fired more than the lateness budget past
    /// their scaled deadline (always 0 in `Fast` mode).
    pub late: u64,
    /// In-flight queries whose answer deadline expired (each expiry of
    /// each attempt counts once, including the final one before giving
    /// up) — "the server never answered in time".
    pub timeouts: u64,
    /// UDP retransmits actually put on the wire. Retransmits keep their
    /// original query's outcome slot: they are never counted as new trace
    /// queries in `sent`.
    pub retries: u64,
    /// TCP connections reopened after a previous connection to the same
    /// source died (reset, refused write, or failed open).
    pub reconnects: u64,
    /// Queries abandoned after exhausting every attempt; their outcomes
    /// report no latency. Distinguishes "server never answered" from
    /// replay-side failures (`errors`).
    pub gave_up: u64,
    /// Querier-level replay failures degraded to per-record outcomes:
    /// socket bind errors, connection opens that exhausted their retries,
    /// and send errors. "The replay broke", as opposed to `timeouts`.
    pub errors: u64,
    /// Batches drained from this shard's queue.
    pub batches: u64,
    /// Times the postman found this shard's queue full and had to wait —
    /// the backpressure signal that this shard is the bottleneck.
    pub postman_stalls: u64,
    /// Deepest this shard's queue got (in batches), observed at enqueue.
    pub max_queue_depth: u32,
    /// Recent queue-depth samples, one per enqueue.
    pub depths: DepthRing,
}

impl ShardStats {
    pub fn new(shard: usize) -> ShardStats {
        ShardStats {
            shard,
            ..ShardStats::default()
        }
    }

    /// One-line rendering for the experiment binaries' shard tables.
    pub fn row(&self) -> String {
        format!(
            "shard {:<3} sent={:<9} answered={:<9} late={:<7} timeouts={:<6} retries={:<6} reconnects={:<4} gave_up={:<6} errors={:<5} batches={:<7} stalls={:<6} maxdepth={:<4} meandepth={:.2}",
            self.shard,
            self.sent,
            self.answered,
            self.late,
            self.timeouts,
            self.retries,
            self.reconnects,
            self.gave_up,
            self.errors,
            self.batches,
            self.postman_stalls,
            self.max_queue_depth,
            self.depths.mean(),
        )
    }
}

/// Aggregates shard counters into pipeline-level totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PipelineTotals {
    pub sent: u64,
    pub answered: u64,
    pub late: u64,
    pub timeouts: u64,
    pub retries: u64,
    pub reconnects: u64,
    pub gave_up: u64,
    pub errors: u64,
    pub batches: u64,
    pub postman_stalls: u64,
    pub max_queue_depth: u32,
}

impl PipelineTotals {
    pub fn from_shards(shards: &[ShardStats]) -> PipelineTotals {
        let mut t = PipelineTotals::default();
        for s in shards {
            t.sent += s.sent;
            t.answered += s.answered;
            t.late += s.late;
            t.timeouts += s.timeouts;
            t.retries += s.retries;
            t.reconnects += s.reconnects;
            t.gave_up += s.gave_up;
            t.errors += s.errors;
            t.batches += s.batches;
            t.postman_stalls += s.postman_stalls;
            t.max_queue_depth = t.max_queue_depth.max(s.max_queue_depth);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_before_wrap_is_chronological() {
        let mut r = DepthRing::new();
        for d in 0..10 {
            r.push(d);
        }
        assert_eq!(r.chronological(), (0..10).collect::<Vec<_>>());
        assert_eq!(r.pushed(), 10);
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn ring_wraps_keeping_most_recent() {
        let mut r = DepthRing::new();
        let n = DepthRing::CAPACITY as u32 + 7;
        for d in 0..n {
            r.push(d);
        }
        let chron = r.chronological();
        assert_eq!(chron.len(), DepthRing::CAPACITY);
        assert_eq!(chron[0], 7);
        assert_eq!(*chron.last().unwrap(), n - 1);
        // Still strictly increasing: oldest-first order survived the wrap.
        assert!(chron.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.pushed(), u64::from(n));
    }

    #[test]
    fn ring_mean_and_empty() {
        let mut r = DepthRing::new();
        assert_eq!(r.mean(), 0.0);
        assert!(r.is_empty());
        r.push(2);
        r.push(4);
        assert_eq!(r.mean(), 3.0);
    }

    #[test]
    fn totals_aggregate_and_max() {
        let mut a = ShardStats::new(0);
        a.sent = 10;
        a.late = 1;
        a.max_queue_depth = 3;
        a.timeouts = 4;
        a.retries = 3;
        let mut b = ShardStats::new(1);
        b.sent = 20;
        b.answered = 15;
        b.postman_stalls = 2;
        b.max_queue_depth = 9;
        b.timeouts = 1;
        b.reconnects = 2;
        b.gave_up = 1;
        b.errors = 5;
        let t = PipelineTotals::from_shards(&[a, b]);
        assert_eq!(t.sent, 30);
        assert_eq!(t.answered, 15);
        assert_eq!(t.late, 1);
        assert_eq!(t.postman_stalls, 2);
        assert_eq!(t.max_queue_depth, 9);
        assert_eq!(t.timeouts, 5);
        assert_eq!(t.retries, 3);
        assert_eq!(t.reconnects, 2);
        assert_eq!(t.gave_up, 1);
        assert_eq!(t.errors, 5);
    }

    #[test]
    fn shard_row_mentions_fault_counters() {
        let mut s = ShardStats::new(2);
        s.timeouts = 7;
        s.retries = 3;
        let row = s.row();
        assert!(row.contains("timeouts=7"));
        assert!(row.contains("retries=3"));
        assert!(row.contains("reconnects=0"));
        assert!(row.contains("gave_up=0"));
        assert!(row.contains("errors=0"));
    }

    #[test]
    fn shard_row_mentions_counters() {
        let mut s = ShardStats::new(4);
        s.sent = 123;
        let row = s.row();
        assert!(row.contains("shard 4"));
        assert!(row.contains("sent=123"));
    }

    #[test]
    fn serializes_ring_chronologically() {
        let mut s = ShardStats::new(0);
        s.depths.push(5);
        s.depths.push(6);
        let json = serde_json::to_string(&s).unwrap();
        let flat: String = json.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(flat.contains("[5,6]"), "{json}");
    }
}
