//! Percentile summaries — the box-and-whisker statistics the paper's
//! figures report ("medians, quartiles, 5th and 95th percentiles").

use serde::Serialize;

/// Five-number-plus summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    pub count: usize,
    pub min: f64,
    pub p5: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub p95: f64,
    pub max: f64,
    pub mean: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample set.
    /// Percentiles use linear interpolation between order statistics
    /// (type-7, the numpy/R default).
    pub fn compute(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let q = |p: f64| percentile_sorted(&sorted, p);
        Some(Summary {
            count: sorted.len(),
            min: sorted[0],
            p5: q(0.05),
            q1: q(0.25),
            median: q(0.50),
            q3: q(0.75),
            p95: q(0.95),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        })
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// One-line rendering used by the experiment binaries.
    pub fn row(&self, label: &str, unit: &str) -> String {
        format!(
            "{label:<28} n={:<8} p5={:>10.3} q1={:>10.3} med={:>10.3} q3={:>10.3} p95={:>10.3} {unit}",
            self.count, self.p5, self.q1, self.median, self.q3, self.p95
        )
    }
}

/// Percentile over a pre-sorted slice, linear interpolation.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let h = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::compute(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::compute(&[42.0]).unwrap();
        assert_eq!(s.min, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn known_quartiles() {
        // 0..=100: median 50, q1 25, q3 75.
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let s = Summary::compute(&v).unwrap();
        assert_eq!(s.median, 50.0);
        assert_eq!(s.q1, 25.0);
        assert_eq!(s.q3, 75.0);
        assert_eq!(s.p5, 5.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.iqr(), 50.0);
        assert_eq!(s.mean, 50.0);
    }

    #[test]
    fn interpolation() {
        let s = Summary::compute(&[1.0, 2.0]).unwrap();
        assert_eq!(s.median, 1.5);
        assert!((s.q1 - 1.25).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_ok() {
        let s = Summary::compute(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn row_contains_label() {
        let s = Summary::compute(&[1.0, 2.0, 3.0]).unwrap();
        let row = s.row("tcp latency", "ms");
        assert!(row.contains("tcp latency"));
        assert!(row.contains("ms"));
    }
}
