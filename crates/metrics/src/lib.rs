//! Measurement and reporting utilities for the LDplayer reproduction's
//! evaluation harness.
//!
//! Every figure in the paper is one of three statistical shapes, and this
//! crate provides exactly those:
//!
//! * [`Summary`] — median/quartiles/5th/95th whisker summaries (Figures 6,
//!   10, 11, 15),
//! * [`Cdf`] — cumulative distributions (Figures 7, 8, 15c),
//! * [`TimeSeries`] / [`RateSeries`] — per-interval gauges and rates over
//!   experiment time (Figures 9, 13, 14).
//!
//! [`ShardStats`] adds the replay pipeline's per-shard saturation counters
//! (sent/answered/late, queue depths) that the Figure 9 throughput
//! experiments break down by querier shard.
//!
//! [`report`] renders results as aligned text tables (the form the
//! experiment binaries print) and JSON (for downstream plotting).

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod cdf;
pub mod hist;
pub mod report;
pub mod series;
pub mod shard;
pub mod summary;

pub use cdf::Cdf;
pub use hist::LogHistogram;
pub use report::Report;
pub use series::{RateSeries, TimeSeries};
pub use shard::{DepthRing, PipelineTotals, ShardStats};
pub use summary::Summary;
