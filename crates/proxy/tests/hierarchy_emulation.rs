//! End-to-end hierarchy emulation (the core claim of §2.4): a stub query
//! to a recursive resolver resolves through root → com → example.com,
//! where all three "servers" are ONE meta-DNS-server instance behind the
//! proxy pair — and the answers are exactly what independent servers would
//! give.

use std::net::{IpAddr, SocketAddr};
use std::sync::Arc;

use ldp_netsim::{Ctx, Node, NodeEvent, Packet, Payload, Sim, SimDuration, SimTime, TcpConfig};
use ldp_proxy::ProxyNode;
use ldp_server::auth::AuthEngine;
use ldp_server::recursive::{ResolverConfig, ResolverCore};
use ldp_server::resource::ResourceModel;
use ldp_server::sim::{AuthServerNode, RecursiveNode};
use ldp_wire::{Message, Name, RData, Rcode, Record, RrType};
use ldp_zone::{ViewTable, Zone};

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

fn ip(s: &str) -> IpAddr {
    s.parse().unwrap()
}

const ROOT_NS: &str = "198.41.0.4"; // a.root-servers.net
const COM_NS: &str = "192.5.6.30"; // a.gtld-servers.net
const SLD_NS: &str = "192.0.2.53"; // ns1.example.com
const ORG_NS: &str = "199.19.56.1"; // a0.org.afilias-nst.info
const META: &str = "10.0.0.3";
const REC: &str = "10.0.0.2";
const STUB: &str = "10.0.0.1";

/// Builds the split-horizon view table: four public nameserver addresses,
/// four zones, one server.
fn meta_views() -> ViewTable {
    let mut root = Zone::with_fake_soa(Name::root());
    root.add(Record::new(
        Name::root(),
        518400,
        RData::Ns(n("a.root-servers.net")),
    ))
    .unwrap();
    root.add(Record::new(
        n("a.root-servers.net"),
        518400,
        RData::A(ROOT_NS.parse().unwrap()),
    ))
    .unwrap();
    root.add(Record::new(
        n("com"),
        172800,
        RData::Ns(n("a.gtld-servers.net")),
    ))
    .unwrap();
    root.add(Record::new(
        n("a.gtld-servers.net"),
        172800,
        RData::A(COM_NS.parse().unwrap()),
    ))
    .unwrap();
    root.add(Record::new(
        n("org"),
        172800,
        RData::Ns(n("a0.org.afilias-nst.info")),
    ))
    .unwrap();
    root.add(Record::new(
        n("a0.org.afilias-nst.info"),
        172800,
        RData::A(ORG_NS.parse().unwrap()),
    ))
    .unwrap();

    let mut com = Zone::with_fake_soa(n("com"));
    com.add(Record::new(
        n("com"),
        172800,
        RData::Ns(n("a.gtld-servers.net")),
    ))
    .unwrap();
    com.add(Record::new(
        n("example.com"),
        172800,
        RData::Ns(n("ns1.example.com")),
    ))
    .unwrap();
    com.add(Record::new(
        n("ns1.example.com"),
        172800,
        RData::A(SLD_NS.parse().unwrap()),
    ))
    .unwrap();

    let mut sld = Zone::with_fake_soa(n("example.com"));
    sld.add(Record::new(
        n("example.com"),
        3600,
        RData::Ns(n("ns1.example.com")),
    ))
    .unwrap();
    sld.add(Record::new(
        n("ns1.example.com"),
        3600,
        RData::A(SLD_NS.parse().unwrap()),
    ))
    .unwrap();
    sld.add(Record::new(
        n("www.example.com"),
        300,
        RData::A("192.0.2.80".parse().unwrap()),
    ))
    .unwrap();
    sld.add(Record::new(
        n("mail.example.com"),
        300,
        RData::Mx {
            preference: 10,
            exchange: n("mx.example.com"),
        },
    ))
    .unwrap();
    sld.add(Record::new(
        n("mx.example.com"),
        300,
        RData::A("192.0.2.25".parse().unwrap()),
    ))
    .unwrap();

    let mut org = Zone::with_fake_soa(n("org"));
    org.add(Record::new(
        n("org"),
        172800,
        RData::Ns(n("a0.org.afilias-nst.info")),
    ))
    .unwrap();

    ViewTable::from_nameserver_map(vec![
        (ip(ROOT_NS), root),
        (ip(COM_NS), com),
        (ip(SLD_NS), sld),
        (ip(ORG_NS), org),
    ])
}

/// Stub client: sends queries at fixed times, collects responses.
struct Stub {
    addr: SocketAddr,
    resolver: SocketAddr,
    sends: Vec<(SimTime, Message)>,
    responses: Vec<(SimTime, Message)>,
}

impl Node for Stub {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for (i, _) in self.sends.iter().enumerate() {
            ctx.set_timer(self.sends[i].0 - SimTime::ZERO, i as u64 + 100);
        }
    }
    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
        match event {
            NodeEvent::Timer { token } => {
                let idx = (token - 100) as usize;
                let msg = self.sends[idx].1.clone();
                ctx.send(Packet::udp(
                    self.addr,
                    self.resolver,
                    msg.to_bytes().unwrap(),
                ));
            }
            NodeEvent::Packet(p) => {
                if let Payload::Udp(data) = &p.payload {
                    if let Ok(msg) = Message::from_bytes(data) {
                        self.responses.push((ctx.now(), msg));
                    }
                }
            }
        }
    }
}

struct World {
    sim: Sim,
    stub: ldp_netsim::NodeId,
    rec: ldp_netsim::NodeId,
    proxy: ldp_netsim::NodeId,
    meta: ldp_netsim::NodeId,
}

fn build_world(queries: Vec<(SimTime, Message)>) -> World {
    let mut sim = Sim::new();
    let stub = sim.add_node(Box::new(Stub {
        addr: format!("{STUB}:5353").parse().unwrap(),
        resolver: format!("{REC}:53").parse().unwrap(),
        sends: queries,
        responses: Vec::new(),
    }));
    let rec = sim.add_node(Box::new(RecursiveNode::new(
        ip(REC),
        ResolverCore::new(vec![ip(ROOT_NS)], ResolverConfig::default()),
    )));
    let proxy = sim.add_node(Box::new(ProxyNode::new(ip(META), ip(REC))));
    let meta = sim.add_node(Box::new(AuthServerNode::new(
        ip(META),
        Arc::new(AuthEngine::with_views(meta_views())),
        TcpConfig::default(),
        ResourceModel::default(),
    )));
    sim.bind(ip(STUB), stub);
    sim.bind(ip(REC), rec);
    // Every public nameserver address routes to the proxy — the TUN
    // capture of the paper.
    for ns in [ROOT_NS, COM_NS, SLD_NS, ORG_NS] {
        sim.bind(ip(ns), proxy);
    }
    sim.bind(ip(META), meta);
    sim.set_default_delay(SimDuration::from_millis(1));
    World {
        sim,
        stub,
        rec,
        proxy,
        meta,
    }
}

#[test]
fn full_recursive_resolution_through_one_server() {
    let q = Message::query(77, n("www.example.com"), RrType::A);
    let mut world = build_world(vec![(SimTime::from_millis(1), q)]);
    world.sim.run_until(SimTime::from_secs(10));

    let stub: &Stub = world.sim.node_as(world.stub).unwrap();
    assert_eq!(stub.responses.len(), 1, "stub got an answer");
    let (_, resp) = &stub.responses[0];
    assert_eq!(resp.header.rcode, Rcode::NoError);
    assert_eq!(resp.header.id, 77);
    assert_eq!(resp.answers.len(), 1);
    assert_eq!(
        resp.answers[0].rdata,
        RData::A("192.0.2.80".parse().unwrap())
    );

    // The resolver walked all three levels...
    let rec: &RecursiveNode = world.sim.node_as(world.rec).unwrap();
    assert_eq!(rec.core.upstream_queries, 3, "root, com, example.com");

    // ...through the proxy in both directions...
    let proxy: &ProxyNode = world.sim.node_as(world.proxy).unwrap();
    assert_eq!(proxy.queries_forwarded(), 3);
    assert_eq!(proxy.responses_forwarded(), 3);

    // ...against a single server instance that saw all three queries.
    let meta: &AuthServerNode = world.sim.node_as(world.meta).unwrap();
    assert_eq!(meta.usage.udp_queries, 3);
}

#[test]
fn caching_suppresses_repeat_hierarchy_walks() {
    let q1 = Message::query(1, n("www.example.com"), RrType::A);
    let q2 = Message::query(2, n("www.example.com"), RrType::A);
    let mut world = build_world(vec![
        (SimTime::from_millis(1), q1),
        (SimTime::from_secs(1), q2),
    ]);
    world.sim.run_until(SimTime::from_secs(10));

    let stub: &Stub = world.sim.node_as(world.stub).unwrap();
    assert_eq!(stub.responses.len(), 2);
    let rec: &RecursiveNode = world.sim.node_as(world.rec).unwrap();
    assert_eq!(
        rec.core.upstream_queries, 3,
        "second query served from cache: no extra upstream traffic"
    );
    // And the cached answer is identical.
    assert_eq!(stub.responses[0].1.answers, stub.responses[1].1.answers);
}

#[test]
fn cold_cache_latency_is_multihop_warm_is_one_rtt() {
    let q1 = Message::query(1, n("www.example.com"), RrType::A);
    let q2 = Message::query(2, n("www.example.com"), RrType::A);
    let mut world = build_world(vec![
        (SimTime::from_millis(1), q1),
        (SimTime::from_secs(1), q2),
    ]);
    world.sim.run_until(SimTime::from_secs(10));
    let stub: &Stub = world.sim.node_as(world.stub).unwrap();
    let send0 = SimTime::from_millis(1);
    let send1 = SimTime::from_secs(1);
    let cold = stub.responses[0].0 - send0;
    let warm = stub.responses[1].0 - send1;
    // Cold: stub→rec (1ms) + 3 × (rec→proxy→meta→proxy→rec = 4ms) + rec→stub (1ms) = 14ms.
    assert_eq!(cold, SimDuration::from_millis(14));
    // Warm: one stub↔rec round trip.
    assert_eq!(warm, SimDuration::from_millis(2));
}

#[test]
fn nxdomain_travels_the_hierarchy_too() {
    let q = Message::query(9, n("missing.example.com"), RrType::A);
    let mut world = build_world(vec![(SimTime::from_millis(1), q)]);
    world.sim.run_until(SimTime::from_secs(10));
    let stub: &Stub = world.sim.node_as(world.stub).unwrap();
    assert_eq!(stub.responses.len(), 1);
    assert_eq!(stub.responses[0].1.header.rcode, Rcode::NxDomain);
}

#[test]
fn different_tlds_hit_different_views() {
    // A .org query must get the org view's NODATA/hierarchy, proving the
    // same server answers differently by OQDA.
    let q_com = Message::query(1, n("www.example.com"), RrType::A);
    let q_org = Message::query(2, n("something.org"), RrType::A);
    let mut world = build_world(vec![
        (SimTime::from_millis(1), q_com),
        (SimTime::from_millis(2), q_org),
    ]);
    world.sim.run_until(SimTime::from_secs(10));
    let stub: &Stub = world.sim.node_as(world.stub).unwrap();
    assert_eq!(stub.responses.len(), 2);
    let by_id: std::collections::HashMap<u16, &Message> = stub
        .responses
        .iter()
        .map(|(_, m)| (m.header.id, m))
        .collect();
    assert_eq!(by_id[&1].header.rcode, Rcode::NoError);
    assert_eq!(by_id[&1].answers.len(), 1);
    // something.org does not exist in the org zone → NXDOMAIN from the org
    // view (not from the root or com views).
    assert_eq!(by_id[&2].header.rcode, Rcode::NxDomain);
}

#[test]
fn resolution_survives_packet_loss_via_retransmission() {
    // 20% UDP loss on every link, over 30 deterministic seeds. Each
    // iterative hop crosses the proxy, so one attempt spans FOUR lossy
    // legs (rec→proxy→meta and back): per-attempt survival 0.8⁴ ≈ 41%.
    // Without retransmission a cold walk would succeed only
    // 0.8² × 0.41³ ≈ 4% of the time; with 4 attempts per hop the per-hop
    // failure is 0.59⁴ ≈ 12%, so expected success ≈
    // 0.8² (stub legs, unretried) × 0.88³ ≈ 44%. Require ≥ 30% — an
    // order of magnitude above the no-retry baseline — plus at least one
    // run that visibly used a retransmission.
    use ldp_netsim::loss::{LossModel, LossScope};
    let mut answered = 0u32;
    let mut retried = 0u32;
    const SEEDS: u32 = 30;
    for seed in 0..SEEDS {
        let q = Message::query(5, n("www.example.com"), RrType::A);
        let mut world = build_world(vec![(SimTime::from_millis(1), q)]);
        world
            .sim
            .set_loss(LossModel::random(0.20, LossScope::UdpOnly, seed as u64));
        world.sim.run_until(SimTime::from_secs(60));
        let stub: &Stub = world.sim.node_as(world.stub).unwrap();
        let rec: &RecursiveNode = world.sim.node_as(world.rec).unwrap();
        if stub
            .responses
            .first()
            .map(|(_, m)| m.header.rcode == Rcode::NoError)
            .unwrap_or(false)
        {
            answered += 1;
            if rec.core.upstream_retries > 0 {
                retried += 1;
            }
        }
    }
    assert!(
        answered >= SEEDS * 3 / 10,
        "only {answered}/{SEEDS} seeds resolved — retransmission not working"
    );
    assert!(
        retried > 0,
        "no successful run used a retransmission — test lost its teeth"
    );
}

#[test]
fn no_proxy_means_no_resolution() {
    // Control experiment: without the proxy bindings, iterative queries
    // are unroutable and the stub never hears back — exactly the failure
    // mode §2.4 describes for leaked packets.
    let q = Message::query(77, n("www.example.com"), RrType::A);
    let mut sim = Sim::new();
    let stub = sim.add_node(Box::new(Stub {
        addr: format!("{STUB}:5353").parse().unwrap(),
        resolver: format!("{REC}:53").parse().unwrap(),
        sends: vec![(SimTime::from_millis(1), q)],
        responses: Vec::new(),
    }));
    let rec = sim.add_node(Box::new(RecursiveNode::new(
        ip(REC),
        ResolverCore::new(vec![ip(ROOT_NS)], ResolverConfig::default()),
    )));
    sim.bind(ip(STUB), stub);
    sim.bind(ip(REC), rec);
    sim.run_until(SimTime::from_secs(5));
    let stub_ref: &Stub = sim.node_as(stub).unwrap();
    assert!(stub_ref.responses.is_empty());
    assert!(sim.dropped_packets >= 1, "iterative query was dropped");
}
