//! The proxy pair that makes hierarchy emulation work (§2.4 of the paper).
//!
//! The meta-DNS-server hosts every zone behind one address, but a recursive
//! resolver addresses its iterative queries to the *public* nameserver
//! addresses found in referrals (a.root-servers.net, a.gtld-servers.net,
//! …). Three problems follow, and one address-rewriting algebra solves all
//! of them:
//!
//! 1. *Routing*: queries to public nameserver addresses must reach the
//!    meta server → the proxy rewrites the **destination** to the meta
//!    server's address.
//! 2. *Zone selection*: the meta server can't tell from the query content
//!    which level of the hierarchy was being asked → the proxy moves the
//!    original query destination address (**OQDA**) into the **source**
//!    field, and the server's split-horizon views key on it.
//! 3. *Reply acceptance*: the recursive only accepts replies whose source
//!    matches where it sent the query → on the way back the proxy puts the
//!    OQDA back into the reply's source and directs it to the recursive.
//!
//! In the paper these rewrites happen in two proxy processes attached to
//! TUN devices with iptables port-based capture (queries by `dport 53` at
//! the recursive, responses by `sport 53` at the server). In the simulator
//! the same capture falls out of routing: every public nameserver address
//! is bound to the [`ProxyNode`], so both the recursive's queries (addressed
//! to OQDA) and the meta server's replies (addressed back to OQDA) land
//! there, and the node applies the direction-appropriate rewrite. The
//! rewrites themselves are the pure functions [`rewrite_query`] and
//! [`rewrite_response`], tested in isolation. (IP checksum fixup, which the
//! real proxies must do, has no analogue in the simulator.)

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

use std::net::{IpAddr, SocketAddr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ldp_netsim::{Ctx, Node, NodeEvent, Packet};
use ldp_wire::DNS_PORT;

/// Query-path rewrite (recursive proxy): a packet the recursive sent to
/// `OQDA:53` becomes a packet to the meta server whose source *is* the
/// OQDA. The source port is preserved so the reply can find its way back
/// to the right resolver socket.
pub fn rewrite_query(packet: &Packet, meta_server: IpAddr) -> Packet {
    let oqda = packet.dst.ip();
    Packet {
        src: SocketAddr::new(oqda, packet.src.port()),
        dst: SocketAddr::new(meta_server, packet.dst.port()),
        payload: packet.payload.clone(),
    }
}

/// Response-path rewrite (authoritative proxy): a reply the meta server
/// addressed to `OQDA:port` becomes a reply *from* `OQDA:53` to the
/// recursive, so the resolver sees exactly the reply it expects.
pub fn rewrite_response(packet: &Packet, recursive: IpAddr) -> Packet {
    let oqda = packet.dst.ip();
    Packet {
        src: SocketAddr::new(oqda, packet.src.port()),
        dst: SocketAddr::new(recursive, packet.dst.port()),
        payload: packet.payload.clone(),
    }
}

/// Classification of a captured packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Captured {
    /// dport 53 → an iterative query from the recursive (query path).
    Query,
    /// sport 53 → a reply from the meta server (response path).
    Response,
    /// Anything else (dropped, like non-routable leakage in the paper).
    Other,
}

/// Classifies a packet the way the paper's iptables rules do: queries by
/// destination port 53, responses by source port 53.
pub fn classify(packet: &Packet) -> Captured {
    if packet.dst.port() == DNS_PORT || packet.dst.port() == ldp_wire::DNS_TLS_PORT {
        Captured::Query
    } else if packet.src.port() == DNS_PORT || packet.src.port() == ldp_wire::DNS_TLS_PORT {
        Captured::Response
    } else {
        Captured::Other
    }
}

/// The proxy pair as one simulation node.
///
/// Bind every public nameserver address (every OQDA that can appear) to
/// this node; it forwards queries to the meta server and replies to the
/// recursive, applying the OQDA swaps. Counters expose how much traffic
/// took each path.
pub struct ProxyNode {
    meta_server: IpAddr,
    recursive: IpAddr,
    /// Path counters, shared so a harness (or the telemetry registry) can
    /// read them while the node is owned by the simulator. The simulator
    /// drives nodes single-threaded; atomics are for shared *reads*.
    pub stats: Arc<ProxyStats>,
}

/// How much traffic took each proxy path.
#[derive(Debug, Default)]
pub struct ProxyStats {
    pub queries_forwarded: AtomicU64,
    pub responses_forwarded: AtomicU64,
    pub dropped: AtomicU64,
}

impl ProxyNode {
    pub fn new(meta_server: IpAddr, recursive: IpAddr) -> ProxyNode {
        ProxyNode {
            meta_server,
            recursive,
            stats: Arc::new(ProxyStats::default()),
        }
    }

    pub fn queries_forwarded(&self) -> u64 {
        self.stats.queries_forwarded.load(Ordering::Relaxed)
    }

    pub fn responses_forwarded(&self) -> u64 {
        self.stats.responses_forwarded.load(Ordering::Relaxed)
    }

    pub fn dropped(&self) -> u64 {
        self.stats.dropped.load(Ordering::Relaxed)
    }

    /// Registers the proxy's path counters with a live-telemetry
    /// registry (observed — the simulation loop pays nothing extra).
    pub fn register_telemetry(&self, reg: &ldp_telemetry::Registry) {
        let s = self.stats.clone();
        reg.observe_counter(
            "ldp_proxy_queries_forwarded_total",
            "Queries rewritten toward the meta server",
            &[],
            move || s.queries_forwarded.load(Ordering::Relaxed),
        );
        let s = self.stats.clone();
        reg.observe_counter(
            "ldp_proxy_responses_forwarded_total",
            "Responses rewritten back to the recursive",
            &[],
            move || s.responses_forwarded.load(Ordering::Relaxed),
        );
        let s = self.stats.clone();
        reg.observe_counter(
            "ldp_proxy_dropped_total",
            "Captured packets matching neither iptables rule",
            &[],
            move || s.dropped.load(Ordering::Relaxed),
        );
    }
}

impl Node for ProxyNode {
    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
        let NodeEvent::Packet(packet) = event else {
            return;
        };
        match classify(&packet) {
            Captured::Query => {
                self.stats.queries_forwarded.fetch_add(1, Ordering::Relaxed);
                ctx.send(rewrite_query(&packet, self.meta_server));
            }
            Captured::Response => {
                self.stats
                    .responses_forwarded
                    .fetch_add(1, Ordering::Relaxed);
                ctx.send(rewrite_response(&packet, self.recursive));
            }
            Captured::Other => {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_netsim::Payload;

    fn sa(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn query_rewrite_swaps_oqda_into_source() {
        // Recursive 10.0.0.2 queries a.gtld-servers.net (192.5.6.30).
        let q = Packet::udp(sa("10.0.0.2:40000"), sa("192.5.6.30:53"), vec![1]);
        let out = rewrite_query(&q, ip("10.0.0.3"));
        assert_eq!(out.src, sa("192.5.6.30:40000"), "OQDA becomes source");
        assert_eq!(
            out.dst,
            sa("10.0.0.3:53"),
            "meta server becomes destination"
        );
        assert_eq!(out.payload, Payload::Udp(vec![1]), "payload untouched");
    }

    #[test]
    fn response_rewrite_restores_oqda_as_source() {
        // Meta server 10.0.0.3 replies toward the OQDA-as-client.
        let r = Packet::udp(sa("10.0.0.3:53"), sa("192.5.6.30:40000"), vec![2]);
        let out = rewrite_response(&r, ip("10.0.0.2"));
        assert_eq!(out.src, sa("192.5.6.30:53"), "reply appears from OQDA:53");
        assert_eq!(
            out.dst,
            sa("10.0.0.2:40000"),
            "back to the recursive's port"
        );
    }

    #[test]
    fn roundtrip_algebra_is_consistent() {
        // The composition must hand the recursive a reply whose source is
        // exactly where it sent the query — the §2.4 acceptance condition.
        let rec = ip("10.0.0.2");
        let meta = ip("10.0.0.3");
        let original = Packet::udp(sa("10.0.0.2:41234"), sa("198.41.0.4:53"), vec![7]);
        let at_meta = rewrite_query(&original, meta);
        // Meta replies by swapping src/dst, as UDP servers do.
        let reply = Packet::udp(at_meta.dst, at_meta.src, vec![8]);
        let at_rec = rewrite_response(&reply, rec);
        assert_eq!(at_rec.src.ip(), original.dst.ip(), "reply source = OQDA");
        assert_eq!(at_rec.src.port(), original.dst.port());
        assert_eq!(at_rec.dst, original.src, "reply lands on the query socket");
    }

    #[test]
    fn classification_matches_iptables_rules() {
        assert_eq!(
            classify(&Packet::udp(sa("10.0.0.2:40000"), sa("1.2.3.4:53"), vec![])),
            Captured::Query
        );
        assert_eq!(
            classify(&Packet::udp(sa("10.0.0.3:53"), sa("1.2.3.4:40000"), vec![])),
            Captured::Response
        );
        assert_eq!(
            classify(&Packet::udp(
                sa("10.0.0.3:9999"),
                sa("1.2.3.4:8888"),
                vec![]
            )),
            Captured::Other
        );
    }

    #[test]
    fn proxy_node_counts_and_drops() {
        use ldp_netsim::{Sim, SimTime};
        struct Blaster {
            out: Vec<Packet>,
        }
        impl Node for Blaster {
            fn on_start(&mut self, ctx: &mut Ctx) {
                for p in self.out.drain(..) {
                    ctx.send(p);
                }
            }
            fn on_event(&mut self, _: &mut Ctx, _: NodeEvent) {}
        }
        let mut sim = Sim::new();
        let b = sim.add_node(Box::new(Blaster {
            out: vec![
                Packet::udp(sa("10.0.0.2:40000"), sa("198.41.0.4:53"), vec![1]),
                Packet::udp(sa("10.0.0.2:1000"), sa("198.41.0.4:2000"), vec![2]),
            ],
        }));
        let p = sim.add_node(Box::new(ProxyNode::new(ip("10.0.0.3"), ip("10.0.0.2"))));
        sim.bind(ip("10.0.0.2"), b);
        sim.bind(ip("198.41.0.4"), p);
        // No binding for 10.0.0.3: the forwarded query vanishes (counted by
        // the sim as unroutable), which is fine for this counter test.
        sim.run_until(SimTime::from_secs(1));
        let proxy: &ProxyNode = sim.node_as(p).unwrap();
        assert_eq!(proxy.queries_forwarded(), 1);
        assert_eq!(proxy.dropped(), 1);
    }

    #[test]
    fn telemetry_observes_path_counters() {
        let node = ProxyNode::new(ip("10.0.0.3"), ip("10.0.0.2"));
        let reg = ldp_telemetry::Registry::new();
        node.register_telemetry(&reg);
        node.stats.queries_forwarded.fetch_add(5, Ordering::Relaxed);
        node.stats.dropped.fetch_add(2, Ordering::Relaxed);
        let samples = reg.snapshot();
        let value = |name: &str| samples.iter().find(|s| s.name == name).map(|s| s.value);
        assert_eq!(value("ldp_proxy_queries_forwarded_total"), Some(5));
        assert_eq!(value("ldp_proxy_responses_forwarded_total"), Some(0));
        assert_eq!(value("ldp_proxy_dropped_total"), Some(2));
    }
}
