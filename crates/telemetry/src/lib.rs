//! `ldp-telemetry`: the live metrics plane for the replay pipeline.
//!
//! Everything `ldp-obs` builds (spans, stage histograms, run manifests)
//! is post-hoc: you only learn a ten-minute replay starved its shards
//! after it finishes. This crate makes the same pipeline observable
//! *while it runs*, in four layers:
//!
//! * [`registry`] — a shared [`Registry`] of named counters and gauges.
//!   Handles ([`Counter`], [`Gauge`]) are resolved once at startup and
//!   are a single relaxed atomic op on the hot path — no locks, no
//!   allocation, no name lookups per event. Subsystems that already keep
//!   their own atomics (fault counters, server stats, queue depths)
//!   register *observed* metrics: closures read at snapshot time, so the
//!   hot path pays nothing it wasn't already paying.
//! * [`sampler`] — [`Sampler`] snapshots the registry on a fixed cadence
//!   into bounded tick-indexed time-series and derives rates and the
//!   send-lag drift trend (scheduled-vs-actual, the §3 time-sync
//!   concern). Ticks, not wall-clock stamps, so the series a manifest
//!   carries stays byte-deterministic at a fixed seed.
//! * [`http`] — [`MetricsServer`], a std-only HTTP endpoint serving the
//!   Prometheus text exposition (`--metrics-addr`); [`expose`] renders
//!   the format (HELP/TYPE lines, label escaping).
//! * [`top`] — the `ldplayer top` terminal view: scrapes the endpoint
//!   and renders per-shard rates, queue depths, and fault counters live.
//!
//! Dependency-light on purpose: `ldp-metrics` plus the vendored
//! parking_lot/serde stubs, so every layer of the pipeline (replay,
//! server, proxy) can register metrics without cycles.

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod expose;
pub mod http;
pub mod registry;
pub mod sampler;
pub mod top;

pub use expose::render_prometheus;
pub use http::MetricsServer;
pub use registry::{Counter, Gauge, MetricKind, Registry, Sample};
pub use sampler::{Sampler, SamplerDriver};
pub use top::{parse_exposition, run_top, scrape, ParsedMetric, TopOptions};
