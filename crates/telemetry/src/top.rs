//! `ldplayer top`: a terminal view over the metrics endpoint.
//!
//! Scrapes the Prometheus exposition served by `--metrics-addr` on an
//! interval and renders a per-shard table — send rate, queue depth,
//! in-flight, fault counters — the live-health view the §4 experiments
//! need *during* a ten-minute replay, not after it. Deliberately a plain
//! HTTP client over the same endpoint any external scraper uses: if
//! `top` can render it, Prometheus can ingest it.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One parsed sample line (`name{labels} value`).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedMetric {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl ParsedMetric {
    /// Value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Fetches the exposition body from `addr` (host:port) over plain HTTP.
pub fn scrape(addr: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: ldplayer\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body))
            if head.starts_with("HTTP/1.1 200") || head.starts_with("HTTP/1.0 200") =>
        {
            Ok(body.to_string())
        }
        Some((head, _)) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("metrics endpoint: {}", head.lines().next().unwrap_or("")),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "metrics endpoint: malformed HTTP response",
        )),
    }
}

/// Parses exposition text into samples; `#` comment lines and anything
/// unparseable are skipped (a viewer must tolerate foreign metrics).
pub fn parse_exposition(text: &str) -> Vec<ParsedMetric> {
    text.lines().filter_map(parse_line).collect()
}

fn parse_line(line: &str) -> Option<ParsedMetric> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (name_labels, value) = match line.rfind(' ') {
        Some(i) => (&line[..i], line[i + 1..].parse::<f64>().ok()?),
        None => return None,
    };
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels.to_string(), Vec::new()),
        Some((name, rest)) => {
            let inner = rest.strip_suffix('}')?;
            (name.to_string(), parse_labels(inner)?)
        }
    };
    Some(ParsedMetric {
        name,
        labels,
        value,
    })
}

/// Parses `k="v",k2="v2"` with `\\`, `\"`, and `\n` escapes in values.
fn parse_labels(inner: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return if labels.is_empty() {
                Some(labels)
            } else {
                None
            };
        }
        if chars.next() != Some('"') {
            return None;
        }
        let mut value = String::new();
        loop {
            match chars.next()? {
                '"' => break,
                '\\' => match chars.next()? {
                    'n' => value.push('\n'),
                    c => value.push(c),
                },
                c => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.next() {
            None => return Some(labels),
            Some(',') => continue,
            Some(_) => return None,
        }
    }
}

/// `ldplayer top` configuration.
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Metrics endpoint (host:port).
    pub addr: String,
    /// Refresh interval.
    pub interval: Duration,
    /// Render this many frames then exit; `None` runs until the endpoint
    /// goes away. CI smoke and tests run one frame.
    pub iterations: Option<u64>,
    /// Print the raw exposition instead of the table (a std-only `curl`
    /// substitute for the scrape-smoke step).
    pub raw: bool,
}

fn fmt_count(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Sum of a family's values across label sets.
fn family_sum(metrics: &[ParsedMetric], name: &str) -> f64 {
    metrics
        .iter()
        .filter(|m| m.name == name)
        .map(|m| m.value)
        .sum()
}

fn shard_value(metrics: &[ParsedMetric], name: &str, shard: &str) -> f64 {
    metrics
        .iter()
        .filter(|m| m.name == name && m.label("shard") == Some(shard))
        .map(|m| m.value)
        .sum()
}

/// Renders one frame of the per-shard table into `out`.
fn render_frame(
    out: &mut dyn Write,
    metrics: &[ParsedMetric],
    prev: Option<(&[ParsedMetric], Duration)>,
) -> io::Result<()> {
    let mut shards: Vec<String> = metrics
        .iter()
        .filter(|m| m.name.starts_with("ldp_replay_"))
        .filter_map(|m| m.label("shard").map(str::to_string))
        .collect();
    shards.sort_by_key(|s| s.parse::<u64>().unwrap_or(u64::MAX));
    shards.dedup();

    writeln!(
        out,
        "{:>5} {:>10} {:>10} {:>10} {:>7} {:>7} {:>9} {:>8} {:>7}",
        "shard", "sent", "rate_qps", "answered", "depth", "inflt", "timeouts", "retries", "errors"
    )?;
    for shard in &shards {
        let sent = shard_value(metrics, "ldp_replay_sent_total", shard);
        let rate = match prev {
            Some((p, dt)) if !dt.is_zero() => {
                let before = shard_value(p, "ldp_replay_sent_total", shard);
                (sent - before).max(0.0) / dt.as_secs_f64()
            }
            _ => 0.0,
        };
        writeln!(
            out,
            "{:>5} {:>10} {:>10.0} {:>10} {:>7} {:>7} {:>9} {:>8} {:>7}",
            shard,
            fmt_count(sent),
            rate,
            fmt_count(shard_value(metrics, "ldp_replay_answered_total", shard)),
            shard_value(metrics, "ldp_replay_queue_depth", shard),
            shard_value(metrics, "ldp_replay_in_flight", shard),
            shard_value(metrics, "ldp_replay_timeouts_total", shard),
            shard_value(metrics, "ldp_replay_retries_total", shard),
            shard_value(metrics, "ldp_replay_errors_total", shard),
        )?;
    }
    if !shards.is_empty() {
        writeln!(
            out,
            "total sent {}  answered {}  gave_up {}  send_lag_us {}",
            fmt_count(family_sum(metrics, "ldp_replay_sent_total")),
            fmt_count(family_sum(metrics, "ldp_replay_answered_total")),
            fmt_count(family_sum(metrics, "ldp_replay_gave_up_total")),
            fmt_count(family_sum(metrics, "ldp_replay_send_lag_us_total")),
        )?;
    }
    // Server/proxy families, when the endpoint belongs to `serve` (or a
    // combined experiment): one line per family, summed over labels.
    let mut other: Vec<&str> = metrics
        .iter()
        .filter(|m| m.name.starts_with("ldp_server_") || m.name.starts_with("ldp_proxy_"))
        .map(|m| m.name.as_str())
        .collect();
    other.sort();
    other.dedup();
    for name in other {
        writeln!(out, "{name} {}", fmt_count(family_sum(metrics, name)))?;
    }
    Ok(())
}

/// Runs the top loop: scrape, render, sleep, repeat. Returns once
/// `iterations` frames rendered, or with the scrape error once the
/// endpoint disappears (replay finished) after at least one good frame.
pub fn run_top(opts: &TopOptions, out: &mut dyn Write) -> io::Result<()> {
    let mut prev: Option<(Vec<ParsedMetric>, Instant)> = None;
    let mut frames = 0u64;
    loop {
        let body = match scrape(&opts.addr) {
            Ok(b) => b,
            Err(e) if frames > 0 => {
                writeln!(out, "endpoint gone ({e}); exiting")?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let now = Instant::now();
        if opts.raw {
            out.write_all(body.as_bytes())?;
        } else {
            if frames > 0 {
                // ANSI clear + home, so the table repaints in place.
                write!(out, "\x1b[2J\x1b[H")?;
            }
            let metrics = parse_exposition(&body);
            let prev_view = prev
                .as_ref()
                .map(|(m, at)| (m.as_slice(), now.duration_since(*at)));
            render_frame(out, &metrics, prev_view)?;
            out.flush()?;
            prev = Some((metrics, now));
        }
        frames += 1;
        if let Some(n) = opts.iterations {
            if frames >= n {
                return Ok(());
            }
        }
        std::thread::sleep(opts.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::MetricsServer;
    use crate::registry::Registry;
    use std::sync::Arc;

    #[test]
    fn parses_names_labels_and_values() {
        let text = "\
# HELP ldp_replay_sent_total Queries sent
# TYPE ldp_replay_sent_total counter
ldp_replay_sent_total{shard=\"0\"} 42
ldp_replay_queue_depth{shard=\"1\",extra=\"a\\\"b\"} 3
plain_metric 7.5
garbage line without a number
";
        let metrics = parse_exposition(text);
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics[0].name, "ldp_replay_sent_total");
        assert_eq!(metrics[0].label("shard"), Some("0"));
        assert_eq!(metrics[0].value, 42.0);
        assert_eq!(metrics[1].label("extra"), Some("a\"b"), "escapes decoded");
        assert_eq!(metrics[2].labels, Vec::new());
    }

    #[test]
    fn renders_per_shard_table() {
        let metrics = parse_exposition(
            "ldp_replay_sent_total{shard=\"0\"} 100\n\
             ldp_replay_sent_total{shard=\"1\"} 50\n\
             ldp_replay_answered_total{shard=\"0\"} 90\n\
             ldp_replay_queue_depth{shard=\"0\"} 2\n\
             ldp_replay_in_flight{shard=\"0\"} 5\n\
             ldp_replay_timeouts_total{shard=\"0\"} 1\n\
             ldp_server_queries_total{proto=\"udp\"} 95\n",
        );
        let mut out = Vec::new();
        render_frame(&mut out, &metrics, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("shard"), "{text}");
        assert!(text.lines().count() >= 4, "{text}");
        assert!(text.contains("total sent 150"), "{text}");
        assert!(text.contains("ldp_server_queries_total 95"), "{text}");
    }

    #[test]
    fn top_against_live_endpoint_single_iteration() {
        let reg = Arc::new(Registry::new());
        reg.counter_with("ldp_replay_sent_total", "Queries sent", &[("shard", "0")])
            .add(5);
        let server = MetricsServer::start("127.0.0.1:0", reg).unwrap();
        let opts = TopOptions {
            addr: server.addr().to_string(),
            interval: Duration::from_millis(1),
            iterations: Some(2),
            raw: false,
        };
        let mut out = Vec::new();
        run_top(&opts, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("ldp_replay_sent_total") || text.contains("shard"),
            "{text}"
        );
        // Raw mode passes the exposition through untouched.
        let opts = TopOptions {
            addr: server.addr().to_string(),
            interval: Duration::from_millis(1),
            iterations: Some(1),
            raw: true,
        };
        let mut raw = Vec::new();
        run_top(&opts, &mut raw).unwrap();
        let raw = String::from_utf8(raw).unwrap();
        assert!(
            raw.contains("# TYPE ldp_replay_sent_total counter"),
            "{raw}"
        );
    }
}
