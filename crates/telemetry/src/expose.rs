//! Prometheus text exposition (format 0.0.4).
//!
//! One `# HELP` + `# TYPE` pair per metric family, then one sample line
//! per label set. Snapshots arrive sorted by `(name, labels)` (the
//! [`crate::Registry::snapshot`] contract), so families are contiguous
//! and the output is byte-deterministic for a given set of values —
//! which is what the golden-format test pins.

use crate::registry::Sample;

/// Escapes a HELP string: backslash and newline (the format's rules for
/// help text; quotes are legal there).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double-quote, newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders one sample's label block (`{a="x",b="y"}`), empty when there
/// are no labels.
fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Renders a snapshot as the Prometheus text exposition. The trailing
/// newline is part of the format.
pub fn render_prometheus(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for s in samples {
        if last_family != Some(s.name.as_str()) {
            out.push_str(&format!("# HELP {} {}\n", s.name, escape_help(&s.help)));
            out.push_str(&format!("# TYPE {} {}\n", s.name, s.kind.as_str()));
            last_family = Some(s.name.as_str());
        }
        out.push_str(&format!(
            "{}{} {}\n",
            s.name,
            label_block(&s.labels),
            s.value
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    /// The satellite-3 golden test: names, HELP/TYPE lines, label
    /// escaping, family grouping — the exact bytes a scraper sees.
    #[test]
    fn golden_exposition_format() {
        let reg = Registry::new();
        reg.counter_with("ldp_replay_sent_total", "Queries sent", &[("shard", "0")])
            .add(42);
        reg.counter_with("ldp_replay_sent_total", "Queries sent", &[("shard", "1")])
            .add(7);
        reg.gauge_with(
            "ldp_replay_queue_depth",
            "Batches queued",
            &[("shard", "0")],
        )
        .set(3);
        let text = render_prometheus(&reg.snapshot());
        let expected = "\
# HELP ldp_replay_queue_depth Batches queued
# TYPE ldp_replay_queue_depth gauge
ldp_replay_queue_depth{shard=\"0\"} 3
# HELP ldp_replay_sent_total Queries sent
# TYPE ldp_replay_sent_total counter
ldp_replay_sent_total{shard=\"0\"} 42
ldp_replay_sent_total{shard=\"1\"} 7
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_with(
            "ldp_esc_total",
            "line1\nline2 and \\slash",
            &[("path", "a\"b\\c\nd")],
        )
        .inc();
        let text = render_prometheus(&reg.snapshot());
        assert!(
            text.contains("# HELP ldp_esc_total line1\\nline2 and \\\\slash"),
            "{text}"
        );
        assert!(
            text.contains("ldp_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
        // No raw newline leaks into the middle of a sample line.
        for line in text.lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_prometheus(&[]), "");
    }

    #[test]
    fn no_labels_means_no_braces() {
        let reg = Registry::new();
        reg.counter("ldp_plain_total", "no labels").inc();
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("\nldp_plain_total 1\n"), "{text}");
    }
}
