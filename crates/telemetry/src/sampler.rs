//! Cadence sampler: registry snapshots → bounded tick-indexed series.
//!
//! A [`Sampler`] owns the conversion from live counters to time-series:
//! each [`Sampler::sample`] call snapshots the registry and appends one
//! `(tick, value)` point per metric to a bounded ring. Stamps are **tick
//! indices**, not wall-clock times — two runs at the same seed produce
//! identical series, which is what lets the `timeseries` section ride in
//! byte-deterministic run manifests (`ldp.run-manifest/v2`). Callers that
//! need real time (the terminal top view, a bench's q/s math) convert
//! ticks with the cadence they drove the sampler at; see
//! [`Sampler::as_timeseries`], which reuses [`ldp_metrics::TimeSeries`]
//! so the derived views (steady-state mean, max) come from one place.
//!
//! Derived views answer the two questions a live replay raises:
//! *how fast is it going* ([`Sampler::rate_per_tick`] over
//! `ldp_replay_sent_total`) and *is it keeping up with the schedule* —
//! [`Sampler::trend_per_tick`] over the cumulative send-lag counter is
//! the §3 scheduled-vs-actual drift trend: a positive slope means every
//! tick adds lag and the replay is slipping behind its trace timeline.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::Value;
use serde_json::json;

use crate::registry::{MetricKind, Registry};

/// Family name of the cumulative send-lag counter the replay engine
/// exports; the sampler's drift trend is defined over it.
pub const SEND_LAG_FAMILY: &str = "ldp_replay_send_lag_us_total";
/// Family name of the per-shard sent counter.
pub const SENT_FAMILY: &str = "ldp_replay_sent_total";

#[derive(Debug, Clone)]
struct SeriesBuf {
    kind: MetricKind,
    points: VecDeque<(u64, u64)>,
}

/// Snapshots a [`Registry`] into bounded per-metric time-series.
#[derive(Debug, Clone)]
pub struct Sampler {
    registry: Arc<Registry>,
    /// Max points retained per series (older ticks roll off).
    cap: usize,
    ticks: u64,
    series: BTreeMap<String, SeriesBuf>,
}

/// A metric sample key: family name plus its rendered label block, e.g.
/// `ldp_replay_sent_total{shard="3"}`. Same rendering as the exposition,
/// so scrape output and manifest series use identical keys.
fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", inner.join(","))
}

/// Family part of a series key (everything before the label block).
fn family_of(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

impl Sampler {
    /// `cap` bounds retained points per series; 1800 at a 2 s cadence is
    /// an hour of history in a few hundred KB for a 64-shard replay.
    pub fn new(registry: Arc<Registry>, cap: usize) -> Sampler {
        Sampler {
            registry,
            cap: cap.max(2),
            ticks: 0,
            series: BTreeMap::new(),
        }
    }

    /// Takes one sample of every registered metric; returns the tick
    /// index just recorded.
    pub fn sample(&mut self) -> u64 {
        let tick = self.ticks;
        for s in self.registry.snapshot() {
            let key = series_key(&s.name, &s.labels);
            let buf = self.series.entry(key).or_insert_with(|| SeriesBuf {
                kind: s.kind,
                points: VecDeque::new(),
            });
            buf.kind = s.kind;
            buf.points.push_back((tick, s.value));
            while buf.points.len() > self.cap {
                buf.points.pop_front();
            }
        }
        self.ticks += 1;
        tick
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// All series keys, sorted (BTreeMap order).
    pub fn keys(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Retained points of one series.
    pub fn points(&self, key: &str) -> Option<Vec<(u64, u64)>> {
        self.series
            .get(key)
            .map(|b| b.points.iter().copied().collect())
    }

    /// Per-tick totals of a metric family, summed across label sets
    /// (e.g. all shards' `sent_total`). Missing points count as zero.
    pub fn family_totals(&self, family: &str) -> Vec<(u64, u64)> {
        let mut by_tick: BTreeMap<u64, u64> = BTreeMap::new();
        for (key, buf) in &self.series {
            if family_of(key) != family {
                continue;
            }
            for &(t, v) in &buf.points {
                *by_tick.entry(t).or_insert(0) += v;
            }
        }
        by_tick.into_iter().collect()
    }

    /// Increase of a (cumulative) family total over the last tick
    /// interval, per tick. `None` until two ticks exist.
    pub fn rate_per_tick(&self, family: &str) -> Option<f64> {
        let totals = self.family_totals(family);
        let [.., (t0, v0), (t1, v1)] = totals.as_slice() else {
            return None;
        };
        let dt = t1.saturating_sub(*t0).max(1) as f64;
        Some((*v1 as f64 - *v0 as f64) / dt)
    }

    /// Least-squares slope of a family's totals over every retained tick
    /// (value units per tick). `None` until two ticks exist.
    pub fn trend_per_tick(&self, family: &str) -> Option<f64> {
        let totals = self.family_totals(family);
        if totals.len() < 2 {
            return None;
        }
        let n = totals.len() as f64;
        let (mut st, mut sv, mut stt, mut stv) = (0.0, 0.0, 0.0, 0.0);
        for &(t, v) in &totals {
            let (t, v) = (t as f64, v as f64);
            st += t;
            sv += v;
            stt += t * t;
            stv += t * v;
        }
        let denom = n * stt - st * st;
        if denom.abs() < f64::EPSILON {
            return None;
        }
        Some((n * stv - st * sv) / denom)
    }

    /// The §3 send-lag drift trend: µs of cumulative scheduled-vs-actual
    /// lag added per tick. Positive and growing ⇒ the replay is slipping
    /// behind its trace timeline.
    pub fn send_lag_trend(&self) -> Option<f64> {
        self.trend_per_tick(SEND_LAG_FAMILY)
    }

    /// One series as an [`ldp_metrics::TimeSeries`] with ticks converted
    /// to seconds at the cadence the caller drove [`Sampler::sample`] at
    /// — the bridge to the existing steady-state/max derivations.
    pub fn as_timeseries(&self, key: &str, tick_seconds: f64) -> ldp_metrics::TimeSeries {
        let mut ts = ldp_metrics::TimeSeries::new();
        if let Some(buf) = self.series.get(key) {
            for &(t, v) in &buf.points {
                ts.push(t as f64 * tick_seconds, v as f64);
            }
        }
        ts
    }

    /// The manifest `timeseries` section (`ldp.run-manifest/v2`): fixed
    /// key order (`unit`, `ticks`, `series`, `derived`), series sorted by
    /// key, points tick-indexed — byte-deterministic whenever the sampled
    /// values are.
    pub fn to_manifest_value(&self) -> Value {
        let series: Vec<(String, Value)> = self
            .series
            .iter()
            .map(|(key, buf)| {
                let pts: Vec<Value> = buf.points.iter().map(|&(t, v)| json!([t, v])).collect();
                (key.clone(), Value::Array(pts))
            })
            .collect();
        json!({
            "unit": "ticks",
            "ticks": self.ticks,
            "series": Value::Object(series),
            "derived": {
                "sent_per_tick": self.rate_per_tick(SENT_FAMILY),
                "send_lag_us_per_tick": self.send_lag_trend(),
            },
        })
    }
}

/// Builds a manifest `timeseries` section from externally produced
/// series (e.g. the simulator's per-interval server samples) without a
/// live registry: same shape, same fixed key order, same determinism
/// contract as [`Sampler::to_manifest_value`].
pub fn manifest_section(series: &BTreeMap<String, Vec<(u64, f64)>>, ticks: u64) -> Value {
    let rendered: Vec<(String, Value)> = series
        .iter()
        .map(|(key, pts)| {
            let pts: Vec<Value> = pts.iter().map(|&(t, v)| json!([t, v])).collect();
            (key.clone(), Value::Array(pts))
        })
        .collect();
    json!({
        "unit": "ticks",
        "ticks": ticks,
        "series": Value::Object(rendered),
        "derived": {},
    })
}

/// Drives a [`Sampler`] on a fixed cadence from a dedicated thread (the
/// `--metrics-addr` path: the replay's own runtime must never carry the
/// sampling load). Stop with [`SamplerDriver::stop`] to get the final
/// sampler back for manifest emission; dropping without stopping also
/// shuts the thread down.
pub struct SamplerDriver {
    shared: Arc<Mutex<Sampler>>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SamplerDriver {
    pub fn spawn(sampler: Sampler, period: Duration) -> SamplerDriver {
        let shared = Arc::new(Mutex::new(sampler));
        let stop = Arc::new(AtomicBool::new(false));
        let (s, st) = (shared.clone(), stop.clone());
        let handle = std::thread::spawn(move || {
            // Sleep in short slices so stop() returns promptly even at
            // multi-second cadences.
            let slice = Duration::from_millis(25);
            let mut elapsed = Duration::ZERO;
            while !st.load(Ordering::Relaxed) {
                std::thread::sleep(slice.min(period));
                elapsed += slice;
                if elapsed >= period {
                    elapsed = Duration::ZERO;
                    s.lock().sample();
                }
            }
        });
        SamplerDriver {
            shared,
            stop,
            handle: Some(handle),
        }
    }

    /// Shared handle for concurrent reads (e.g. a status endpoint).
    pub fn shared(&self) -> Arc<Mutex<Sampler>> {
        self.shared.clone()
    }

    /// Stops the driver thread and returns the final sampler state.
    pub fn stop(mut self) -> Sampler {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let final_state = self.shared.lock().clone();
        final_state
    }
}

impl Drop for SamplerDriver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_counter(name: &str, shard: &str) -> (Arc<Registry>, crate::Counter) {
        let reg = Arc::new(Registry::new());
        let c = reg.counter_with(name, "h", &[("shard", shard)]);
        (reg, c)
    }

    #[test]
    fn samples_are_tick_indexed_and_bounded() {
        let (reg, c) = registry_with_counter("ldp_x_total", "0");
        let mut s = Sampler::new(reg, 3);
        for i in 0..5u64 {
            c.add(10);
            assert_eq!(s.sample(), i);
        }
        let pts = s.points("ldp_x_total{shard=\"0\"}").unwrap();
        assert_eq!(pts.len(), 3, "cap bounds the ring");
        assert_eq!(pts, vec![(2, 30), (3, 40), (4, 50)]);
    }

    #[test]
    fn family_totals_sum_across_shards() {
        let reg = Arc::new(Registry::new());
        let a = reg.counter_with("ldp_y_total", "h", &[("shard", "0")]);
        let b = reg.counter_with("ldp_y_total", "h", &[("shard", "1")]);
        let mut s = Sampler::new(reg, 16);
        a.add(5);
        b.add(7);
        s.sample();
        a.add(5);
        s.sample();
        assert_eq!(s.family_totals("ldp_y_total"), vec![(0, 12), (1, 17)]);
        assert_eq!(s.rate_per_tick("ldp_y_total"), Some(5.0));
    }

    #[test]
    fn trend_is_least_squares_slope() {
        let (reg, c) = registry_with_counter(SEND_LAG_FAMILY, "0");
        let mut s = Sampler::new(reg, 16);
        // Perfectly linear growth: 100 µs of lag per tick.
        for _ in 0..5 {
            s.sample();
            c.add(100);
        }
        let slope = s.send_lag_trend().unwrap();
        assert!((slope - 100.0).abs() < 1e-9, "slope {slope}");
        assert!(s.rate_per_tick("nonexistent").is_none());
    }

    #[test]
    fn manifest_section_has_fixed_key_order() {
        let (reg, c) = registry_with_counter(SENT_FAMILY, "0");
        let mut s = Sampler::new(reg, 16);
        c.add(3);
        s.sample();
        let v = s.to_manifest_value();
        let Value::Object(fields) = &v else {
            panic!("timeseries section must be an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["unit", "ticks", "series", "derived"]);
        // And serialization is reproducible.
        let a = serde_json::to_string(&v).unwrap();
        let b = serde_json::to_string(&s.to_manifest_value()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn as_timeseries_bridges_to_metrics_crate() {
        let (reg, c) = registry_with_counter("ldp_z_total", "0");
        let mut s = Sampler::new(reg, 16);
        for _ in 0..3 {
            c.add(2);
            s.sample();
        }
        let ts = s.as_timeseries("ldp_z_total{shard=\"0\"}", 2.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.points()[2], (4.0, 6.0), "tick 2 at a 2 s cadence");
        assert_eq!(ts.max(), Some(6.0));
    }

    #[test]
    fn driver_samples_in_background() {
        let (reg, c) = registry_with_counter("ldp_bg_total", "0");
        let sampler = Sampler::new(reg, 64);
        let driver = SamplerDriver::spawn(sampler, Duration::from_millis(30));
        c.add(1);
        std::thread::sleep(Duration::from_millis(200));
        let final_state = driver.stop();
        assert!(final_state.ticks() >= 2, "ticks {}", final_state.ticks());
        assert!(final_state.points("ldp_bg_total{shard=\"0\"}").is_some());
    }
}
