//! The shared metrics registry.
//!
//! Two registration styles, one snapshot path:
//!
//! * **Owned** metrics ([`Registry::counter_with`] / [`Registry::gauge_with`])
//!   hand back a cloneable handle around an `Arc<AtomicU64>`. The handle is
//!   resolved once at startup; every subsequent [`Counter::inc`] /
//!   [`Counter::add`] is a single relaxed `fetch_add` — no lock, no
//!   allocation, no name lookup. This is the hot-path contract: a querier
//!   bumping `sent_total` per batch costs the same as the `progress`
//!   counter it rode along with before this crate existed.
//! * **Observed** metrics ([`Registry::observe_counter`] /
//!   [`Registry::observe_gauge`]) wrap a closure over state some subsystem
//!   already maintains (fault-counter atomics, queue-depth cells, the
//!   in-flight count under the pending lock). The closure runs only at
//!   snapshot time — scrape cadence, not send cadence — so instrumenting an
//!   existing atomic is free on the hot path by construction.
//!
//! The registry's own lock guards registration and snapshot only; neither
//! is on the send path. Snapshots are sorted by `(name, labels)` so the
//! exposition (and anything derived from it, like manifest time-series) is
//! deterministic regardless of registration order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Counter or gauge — the only two shapes the pipeline needs, and the two
/// the Prometheus text exposition distinguishes with `# TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing (sent, answered, faults).
    Counter,
    /// Instantaneous level (queue depth, in-flight).
    Gauge,
}

impl MetricKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// Hot-path handle on an owned counter cell. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Hot-path handle on an owned gauge cell. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Relaxed add; pair with [`Gauge::sub`] so the level never wraps.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Relaxed subtract; callers must have added first (wraps otherwise).
    #[inline]
    pub fn sub(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_sub(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One sampled metric value: everything the exposition needs, detached
/// from the live cells so rendering never holds the registry lock.
#[derive(Debug, Clone)]
pub struct Sample {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    /// Sorted-at-registration label pairs (`shard="3"`).
    pub labels: Vec<(String, String)>,
    pub value: u64,
}

enum Source {
    Owned(Arc<AtomicU64>),
    Observed(Box<dyn Fn() -> u64 + Send + Sync>),
}

struct Metric {
    name: String,
    help: String,
    kind: MetricKind,
    labels: Vec<(String, String)>,
    source: Source,
}

/// Shared registry of named counters and gauges. Construct one per
/// process (or per experiment), hand `Arc<Registry>` to every subsystem
/// that should show up on the metrics endpoint.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.metrics.lock().len())
            .finish()
    }
}

/// Prometheus metric names allow `[a-zA-Z_:][a-zA-Z0-9_:]*`; label names
/// drop the colon. Registration sanitizes rather than erroring — a bad
/// name becomes a legible-but-valid one instead of a runtime failure in
/// an observability layer that must never take the pipeline down.
fn sanitize(name: &str, allow_colon: bool) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic()
            || c == '_'
            || (allow_colon && c == ':')
            || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn clean_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (sanitize(k, false), v.to_string()))
        .collect();
    out.sort();
    out
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or re-resolves) an owned counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers an owned counter. Re-registering the same
    /// `(name, labels)` returns a handle on the *existing* cell, so two
    /// subsystems (or two runs over one registry) share one count.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let cell = self.owned_cell(name, help, MetricKind::Counter, labels);
        Counter { cell }
    }

    /// Registers (or re-resolves) an owned gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers an owned gauge; same re-registration contract as
    /// [`Registry::counter_with`].
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let cell = self.owned_cell(name, help, MetricKind::Gauge, labels);
        Gauge { cell }
    }

    /// Registers a counter whose value is read from `f` at snapshot time.
    /// Re-registering the same `(name, labels)` replaces the closure (the
    /// newest underlying state wins — e.g. a fresh replay run's counters).
    pub fn observe_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.observed(name, help, MetricKind::Counter, labels, Box::new(f));
    }

    /// Gauge variant of [`Registry::observe_counter`].
    pub fn observe_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.observed(name, help, MetricKind::Gauge, labels, Box::new(f));
    }

    fn owned_cell(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
    ) -> Arc<AtomicU64> {
        let name = sanitize(name, true);
        let labels = clean_labels(labels);
        let mut metrics = self.metrics.lock();
        if let Some(m) = metrics
            .iter_mut()
            .find(|m| m.name == name && m.labels == labels)
        {
            if let Source::Owned(cell) = &m.source {
                return cell.clone();
            }
            // Was observed: promote to owned (fresh cell) below.
            let cell = Arc::new(AtomicU64::new(0));
            m.kind = kind;
            m.help = help.to_string();
            m.source = Source::Owned(cell.clone());
            return cell;
        }
        let cell = Arc::new(AtomicU64::new(0));
        metrics.push(Metric {
            name,
            help: help.to_string(),
            kind,
            labels,
            source: Source::Owned(cell.clone()),
        });
        cell
    }

    fn observed(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        f: Box<dyn Fn() -> u64 + Send + Sync>,
    ) {
        let name = sanitize(name, true);
        let labels = clean_labels(labels);
        let mut metrics = self.metrics.lock();
        if let Some(m) = metrics
            .iter_mut()
            .find(|m| m.name == name && m.labels == labels)
        {
            m.kind = kind;
            m.help = help.to_string();
            m.source = Source::Observed(f);
            return;
        }
        metrics.push(Metric {
            name,
            help: help.to_string(),
            kind,
            labels,
            source: Source::Observed(f),
        });
    }

    /// Point-in-time values of every registered metric, sorted by
    /// `(name, labels)`. Counters read under relaxed ordering, so a
    /// snapshot taken concurrently with increments sees each cell's value
    /// at *some* moment during the snapshot — never a torn or decreasing
    /// counter.
    pub fn snapshot(&self) -> Vec<Sample> {
        let metrics = self.metrics.lock();
        let mut out: Vec<Sample> = metrics
            .iter()
            .map(|m| Sample {
                name: m.name.clone(),
                help: m.help.clone(),
                kind: m.kind,
                labels: m.labels.clone(),
                value: match &m.source {
                    Source::Owned(cell) => cell.load(Ordering::Relaxed),
                    Source::Observed(f) => f(),
                },
            })
            .collect();
        drop(metrics);
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }

    /// Number of registered metrics (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.metrics.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_counter_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("ldp_test_total", "test counter");
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].value, 5);
        assert_eq!(snap[0].kind, MetricKind::Counter);
    }

    #[test]
    fn reregistration_shares_the_cell() {
        let reg = Registry::new();
        let a = reg.counter_with("ldp_shared_total", "h", &[("shard", "0")]);
        let b = reg.counter_with("ldp_shared_total", "h", &[("shard", "0")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same (name, labels) share one cell");
        assert_eq!(reg.len(), 1);
        // A different label set is a distinct metric.
        let c = reg.counter_with("ldp_shared_total", "h", &[("shard", "1")]);
        c.inc();
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn observed_metrics_read_at_snapshot_time() {
        let reg = Registry::new();
        let state = Arc::new(AtomicU64::new(7));
        let s = state.clone();
        reg.observe_gauge("ldp_depth", "queue depth", &[("shard", "2")], move || {
            s.load(Ordering::Relaxed)
        });
        assert_eq!(reg.snapshot()[0].value, 7);
        state.store(11, Ordering::Relaxed);
        assert_eq!(reg.snapshot()[0].value, 11);
    }

    #[test]
    fn snapshot_is_sorted_regardless_of_registration_order() {
        let reg = Registry::new();
        reg.counter_with("zzz_total", "z", &[]);
        reg.counter_with("aaa_total", "a", &[("shard", "1")]);
        reg.counter_with("aaa_total", "a", &[("shard", "0")]);
        let names: Vec<String> = reg
            .snapshot()
            .iter()
            .map(|s| format!("{}{:?}", s.name, s.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn bad_names_are_sanitized_not_fatal() {
        let reg = Registry::new();
        let c = reg.counter_with("9bad name-total", "h", &[("bad key", "any value ok")]);
        c.inc();
        let snap = reg.snapshot();
        assert_eq!(snap[0].name, "_bad_name_total");
        assert_eq!(snap[0].labels[0].0, "bad_key");
        assert_eq!(snap[0].labels[0].1, "any value ok", "values pass through");
    }

    #[test]
    fn snapshot_consistent_under_concurrent_increments() {
        // The satellite-3 consistency test: hammer one counter from many
        // threads while snapshotting; every snapshot must be monotone and
        // the final value exact.
        let reg = Arc::new(Registry::new());
        let c = reg.counter("ldp_concurrent_total", "hammered");
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        let mut workers = Vec::new();
        for _ in 0..THREADS {
            let c = c.clone();
            workers.push(std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            }));
        }
        let observer = {
            let reg = reg.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..200 {
                    let v = reg.snapshot()[0].value;
                    assert!(v >= last, "snapshot went backwards: {v} < {last}");
                    last = v;
                }
            })
        };
        for w in workers {
            w.join().unwrap();
        }
        observer.join().unwrap();
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD, "no lost increments");
    }
}
