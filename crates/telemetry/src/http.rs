//! Std-only HTTP endpoint serving the Prometheus text exposition.
//!
//! Deliberately not a web framework and not on the tokio runtime: one
//! dedicated OS thread, blocking `std::net`, one response shape. A scrape
//! is a snapshot + render, entirely off the replay's hot path; the
//! listener thread never touches the pipeline's runtime, so a stuck or
//! slow scraper cannot perturb send timing (the §3 fidelity concern that
//! motivated measuring send-lag in the first place).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::expose::render_prometheus;
use crate::registry::Registry;

/// A running metrics endpoint; stops (and joins its thread) on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9091`; port 0 for ephemeral) and
    /// serves `GET /metrics` — any path, in fact: the endpoint exposes
    /// exactly one document — from a dedicated thread.
    pub fn start(addr: &str, registry: Arc<Registry>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let st = stop.clone();
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if st.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Serve inline: scrapes are rare (seconds apart) and the
                // response is small, so a per-connection thread would be
                // pure overhead.
                let _ = serve_one(stream, &registry);
            }
        });
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_one(mut stream: TcpStream, registry: &Registry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request head (or the client stops
    // sending); the request body and most of the head are irrelevant.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8_192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = render_prometheus(&registry.snapshot());
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_exposition_over_http() {
        let reg = Arc::new(Registry::new());
        reg.counter_with("ldp_http_total", "served", &[("shard", "0")])
            .add(9);
        let server = MetricsServer::start("127.0.0.1:0", reg.clone()).unwrap();
        let response = get(server.addr());
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(
            response.contains("ldp_http_total{shard=\"0\"} 9"),
            "{response}"
        );
        // A second scrape sees updated values — the endpoint is live, not
        // a point-in-time dump.
        reg.counter_with("ldp_http_total", "served", &[("shard", "0")])
            .add(1);
        assert!(get(server.addr()).contains("ldp_http_total{shard=\"0\"} 10"));
    }

    #[test]
    fn drop_stops_the_listener() {
        let reg = Arc::new(Registry::new());
        let server = MetricsServer::start("127.0.0.1:0", reg).unwrap();
        let addr = server.addr();
        drop(server);
        // The port is released: either a new bind succeeds or connection
        // attempts fail fast — the listener thread is gone either way.
        let rebind = TcpListener::bind(addr);
        assert!(
            rebind.is_ok() || TcpStream::connect(addr).is_err(),
            "listener still serving after drop"
        );
    }

    #[test]
    fn bad_bind_address_errors() {
        let reg = Arc::new(Registry::new());
        assert!(MetricsServer::start("256.0.0.1:0", reg).is_err());
    }
}
