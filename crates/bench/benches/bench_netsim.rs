//! Simulator-core benchmarks: event throughput bounds how large a §5-style
//! experiment can run in wall-clock time.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ldp_netsim::{Ctx, Node, NodeEvent, Packet, Payload, Sim, SimDuration, SimTime};
use std::net::SocketAddr;

struct Echo {
    addr: SocketAddr,
}

impl Node for Echo {
    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
        if let NodeEvent::Packet(p) = event {
            if let Payload::Udp(data) = &p.payload {
                ctx.send(Packet::udp(self.addr, p.src, data.clone()));
            }
        }
    }
}

/// Ping-pongs `n` times then stops.
struct Pinger {
    addr: SocketAddr,
    target: SocketAddr,
    remaining: u64,
}

impl Node for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.send(Packet::udp(self.addr, self.target, vec![0; 64]));
    }
    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
        if let NodeEvent::Packet(p) = event {
            if self.remaining > 0 {
                self.remaining -= 1;
                if let Payload::Udp(data) = &p.payload {
                    ctx.send(Packet::udp(self.addr, p.src, data.clone()));
                }
            }
        }
    }
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/events");
    const ROUNDS: u64 = 10_000;
    g.throughput(Throughput::Elements(ROUNDS * 2));
    g.bench_function("udp_pingpong", |b| {
        b.iter(|| {
            let mut sim = Sim::new();
            let p = sim.add_node(Box::new(Pinger {
                addr: "10.0.0.1:1".parse().unwrap(),
                target: "10.0.0.2:53".parse().unwrap(),
                remaining: ROUNDS,
            }));
            let e = sim.add_node(Box::new(Echo {
                addr: "10.0.0.2:53".parse().unwrap(),
            }));
            sim.bind("10.0.0.1".parse().unwrap(), p);
            sim.bind("10.0.0.2".parse().unwrap(), e);
            sim.set_pair_delay(p, e, SimDuration::from_micros(10));
            black_box(sim.run())
        })
    });
    g.finish();
}

fn bench_timer_churn(c: &mut Criterion) {
    struct TimerHog {
        remaining: u64,
    }
    impl Node for TimerHog {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(SimDuration::from_micros(1), 0);
        }
        fn on_event(&mut self, ctx: &mut Ctx, _: NodeEvent) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
        }
    }
    let mut g = c.benchmark_group("netsim/timers");
    const N: u64 = 50_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("sequential_timers", |b| {
        b.iter(|| {
            let mut sim = Sim::new();
            sim.add_node(Box::new(TimerHog { remaining: N }));
            black_box(sim.run_until(SimTime::from_secs(3600)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_throughput, bench_timer_churn);
criterion_main!(benches);
