//! Authoritative-engine benchmarks: per-query response cost for the
//! response kinds a root server actually serves (this is the 87 k q/s
//! budget of §4.3 from the server's side).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ldp_server::auth::AuthEngine;
use ldp_wire::{Edns, Message, Name, RrType};
use ldp_workload::zones::{signed_root_zone, synthetic_root_zone};
use ldp_zone::dnssec::SigningConfig;
use ldp_zone::ZoneSet;
use std::net::IpAddr;
use std::sync::Arc;

fn engine(signed: bool) -> AuthEngine {
    let mut set = ZoneSet::new();
    if signed {
        set.insert(signed_root_zone(500, SigningConfig::zsk2048()));
    } else {
        set.insert(synthetic_root_zone(500));
    }
    AuthEngine::with_zones(Arc::new(set))
}

fn bench_respond(c: &mut Criterion) {
    let plain = engine(false);
    let signed = engine(true);
    let client: IpAddr = "10.0.0.1".parse().unwrap();
    let referral_q = Message::query(1, Name::parse("www.host.com").unwrap(), RrType::A);
    let mut do_q = referral_q.clone();
    do_q.edns = Some(Edns::with_do());
    let nx_q = Message::query(1, Name::parse("x.invalid9").unwrap(), RrType::A);

    let mut g = c.benchmark_group("server/respond");
    g.throughput(Throughput::Elements(1));
    g.bench_function("referral", |b| {
        b.iter(|| plain.respond(client, black_box(&referral_q), false))
    });
    g.bench_function("referral_signed_do", |b| {
        b.iter(|| signed.respond(client, black_box(&do_q), false))
    });
    g.bench_function("nxdomain", |b| {
        b.iter(|| plain.respond(client, black_box(&nx_q), false))
    });
    g.finish();

    // Full path: decode query + respond + encode response — the per-query
    // work a UDP server does.
    let wire_q = do_q.to_bytes().unwrap();
    let mut g = c.benchmark_group("server/full_path");
    g.throughput(Throughput::Elements(1));
    g.bench_function("decode_respond_encode", |b| {
        b.iter(|| {
            let q = Message::from_bytes(black_box(&wire_q)).unwrap();
            signed.respond(client, &q, false).to_bytes().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_respond);
criterion_main!(benches);
