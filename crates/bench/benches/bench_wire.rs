//! Wire codec microbenchmarks, including the compression ablation called
//! out in DESIGN.md: name compression costs a hash lookup per label but
//! shrinks referral responses substantially.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ldp_wire::{Edns, Message, Name, RData, Record, RrType};

fn referral_response() -> Message {
    let n = |s: &str| Name::parse(s).unwrap();
    let mut q = Message::query(1, n("www.example.com"), RrType::A);
    q.edns = Some(Edns::with_do());
    let mut m = Message::response_for(&q);
    for i in 0..13 {
        let ns = n(&format!("{}.gtld-servers.net", (b'a' + i) as char));
        m.authorities
            .push(Record::new(n("com"), 172800, RData::Ns(ns.clone())));
        m.additionals.push(Record::new(
            ns,
            172800,
            RData::A(format!("192.5.6.{}", 30 + i).parse().unwrap()),
        ));
    }
    m
}

fn bench_encode(c: &mut Criterion) {
    let msg = referral_response();
    let mut g = c.benchmark_group("wire/encode");
    g.throughput(Throughput::Elements(1));
    g.bench_function("compressed", |b| {
        b.iter(|| black_box(&msg).to_bytes().unwrap())
    });
    g.bench_function("uncompressed", |b| {
        b.iter(|| black_box(&msg).to_bytes_uncompressed().unwrap())
    });
    let compressed = msg.to_bytes().unwrap().len();
    let plain = msg.to_bytes_uncompressed().unwrap().len();
    println!("referral sizes: compressed={compressed}B uncompressed={plain}B");
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let bytes = referral_response().to_bytes().unwrap();
    let mut g = c.benchmark_group("wire/decode");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("referral", |b| {
        b.iter(|| Message::from_bytes(black_box(&bytes)).unwrap())
    });
    let query = Message::query(7, Name::parse("www.example.com").unwrap(), RrType::A)
        .to_bytes()
        .unwrap();
    g.bench_function("query", |b| {
        b.iter(|| Message::from_bytes(black_box(&query)).unwrap())
    });
    g.finish();
}

fn bench_name(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire/name");
    g.bench_function("parse", |b| {
        b.iter(|| Name::parse(black_box("www.some-long-host.example.com")).unwrap())
    });
    let a = Name::parse("www.example.com").unwrap();
    let b2 = Name::parse("mail.example.com").unwrap();
    g.bench_function("canonical_cmp", |b| {
        b.iter(|| black_box(&a).canonical_cmp(black_box(&b2)))
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_name);
criterion_main!(benches);
