//! Trace-format ablation (DESIGN.md / §2.5 of the paper): the internal
//! binary stream must decode faster than the capture format and much
//! faster than plain text — that's why the paper pre-converts before
//! replay ("so that query manipulation does not limit replay times").

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ldp_trace::{capture, stream, text, Mutation, QueryMutator, TraceRecord};
use ldp_workload::BRootConfig;

fn workload() -> Vec<TraceRecord> {
    BRootConfig {
        duration_s: 2.0,
        mean_rate_qps: 2000.0,
        clients: 1000,
        ..BRootConfig::default()
    }
    .generate()
}

fn bench_formats(c: &mut Criterion) {
    let records = workload();
    let n = records.len() as u64;
    let stream_bytes = stream::to_bytes(&records).unwrap();
    let capture_bytes = capture::to_bytes(&records).unwrap();
    let mut text_bytes = Vec::new();
    text::write_text(&mut text_bytes, &records).unwrap();

    println!(
        "sizes for {n} records: stream={}B capture={}B text={}B",
        stream_bytes.len(),
        capture_bytes.len(),
        text_bytes.len()
    );

    let mut g = c.benchmark_group("trace/read");
    g.throughput(Throughput::Elements(n));
    g.bench_function("binary_stream", |b| {
        b.iter(|| stream::from_bytes(black_box(&stream_bytes)).unwrap())
    });
    g.bench_function("capture", |b| {
        b.iter(|| capture::from_bytes(black_box(&capture_bytes)).unwrap())
    });
    g.bench_function("plain_text", |b| {
        b.iter(|| text::read_text(black_box(std::io::Cursor::new(&text_bytes))).unwrap())
    });
    g.finish();

    let mut g = c.benchmark_group("trace/write");
    g.throughput(Throughput::Elements(n));
    g.bench_function("binary_stream", |b| {
        b.iter(|| stream::to_bytes(black_box(&records)).unwrap())
    });
    g.bench_function("capture", |b| {
        b.iter(|| capture::to_bytes(black_box(&records)).unwrap())
    });
    g.finish();
}

fn bench_mutation(c: &mut Criterion) {
    let records = workload();
    let mut g = c.benchmark_group("trace/mutate");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("all_tcp_plus_do", |b| {
        b.iter_batched(
            || records.clone(),
            |mut recs| {
                QueryMutator::new(1)
                    .push(Mutation::SetProtocol(ldp_trace::Protocol::Tcp))
                    .push(Mutation::SetDoBit { fraction: 1.0 })
                    .apply_all(&mut recs);
                recs
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_formats, bench_mutation);
criterion_main!(benches);
