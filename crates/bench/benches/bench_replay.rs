//! Replay-engine component benchmarks: the sticky-affinity router (every
//! query goes through it twice) and the ΔT scheduling arithmetic (every
//! query once) — plus the affinity-vs-random ablation from DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ldp_replay::plan::{ReplayPlan, StickyBalancer};
use ldp_replay::timing::ReplayClock;
use std::net::IpAddr;

fn ips(n: u32) -> Vec<IpAddr> {
    (0..n)
        .map(|i| IpAddr::V4(std::net::Ipv4Addr::from(0x0A00_0000 + i)))
        .collect()
}

fn bench_routing(c: &mut Criterion) {
    let sources = ips(10_000);
    let mut g = c.benchmark_group("replay/route");
    g.throughput(Throughput::Elements(sources.len() as u64));
    g.bench_function("sticky_two_level", |b| {
        b.iter_batched(
            || ReplayPlan::new(4, 8),
            |mut plan| {
                for s in &sources {
                    black_box(plan.route(*s));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    // Ablation: stateless hash routing (no affinity memory). Faster per
    // query but cannot express "recent source goes where it went before"
    // once the tree is rebalanced; the sticky router is the paper's design.
    g.bench_function("stateless_hash", |b| {
        b.iter(|| {
            use std::hash::{Hash, Hasher};
            for s in &sources {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                s.hash(&mut h);
                black_box(h.finish() % 32);
            }
        })
    });
    // Warm sticky routing: all sources already assigned.
    let mut warm = ReplayPlan::new(4, 8);
    for s in &sources {
        warm.route(*s);
    }
    g.bench_function("sticky_warm", |b| {
        b.iter(|| {
            for s in &sources {
                black_box(warm.route(*s));
            }
        })
    });
    g.finish();
}

fn bench_timing(c: &mut Criterion) {
    let clock = ReplayClock::synchronize(0, 0);
    let mut g = c.benchmark_group("replay/timing");
    g.throughput(Throughput::Elements(1));
    g.bench_function("delay_us", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 27;
            black_box(clock.delay_us(black_box(t), black_box(t / 2)))
        })
    });
    g.finish();
}

fn bench_balancer_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("replay/balancer_population");
    for n in [1_000u32, 100_000, 1_000_000] {
        let sources = ips(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("{n}_sources"), |b| {
            b.iter_batched(
                || StickyBalancer::new(16),
                |mut bal| {
                    for s in &sources {
                        black_box(bal.route(*s));
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_routing, bench_timing, bench_balancer_scale);
criterion_main!(benches);
