//! Zone lookup microbenchmarks: answers, referrals, wildcards, NXDOMAIN,
//! and the effect of zone size (the meta-DNS-server hosts hundreds of
//! zones; per-lookup cost bounds server throughput).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_wire::{Name, RrType};
use ldp_workload::zones::{synthetic_root_zone, wildcard_example_zone};

fn bench_lookup_kinds(c: &mut Criterion) {
    let root = synthetic_root_zone(500);
    let wild = wildcard_example_zone();
    let mut g = c.benchmark_group("zone/lookup");
    let referral = Name::parse("www.corp.com").unwrap();
    g.bench_function("referral", |b| {
        b.iter(|| root.lookup(black_box(&referral), RrType::A, false))
    });
    let referral_do = referral.clone();
    g.bench_function("referral_dnssec", |b| {
        b.iter(|| root.lookup(black_box(&referral_do), RrType::A, true))
    });
    let nx = Name::parse("foo.invalid77").unwrap();
    g.bench_function("nxdomain", |b| {
        b.iter(|| root.lookup(black_box(&nx), RrType::A, false))
    });
    let wildcard = Name::parse("abc123.example.com").unwrap();
    g.bench_function("wildcard", |b| {
        b.iter(|| wild.lookup(black_box(&wildcard), RrType::A, false))
    });
    g.finish();
}

fn bench_zone_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("zone/size_scaling");
    for tlds in [100usize, 1000, 5000] {
        let zone = synthetic_root_zone(tlds);
        let q = Name::parse(&format!("www.x.tld{:04}", tlds - 1)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(tlds), &tlds, |b, _| {
            b.iter(|| zone.lookup(black_box(&q), RrType::A, false))
        });
    }
    g.finish();
}

fn bench_master_parse(c: &mut Criterion) {
    let zone = synthetic_root_zone(200);
    let text = ldp_zone::master::serialize_zone(&zone);
    let origin = Name::root();
    let mut g = c.benchmark_group("zone/master");
    g.bench_function("serialize", |b| {
        b.iter(|| ldp_zone::master::serialize_zone(black_box(&zone)))
    });
    g.bench_function("parse", |b| {
        b.iter(|| ldp_zone::master::parse_zone(black_box(&origin), black_box(&text)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lookup_kinds,
    bench_zone_size,
    bench_master_parse
);
criterion_main!(benches);
