//! Shared harness for the per-figure experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper, printing the
//! same rows/series the paper reports and writing text + JSON into
//! `./results/`. Experiments run at a reduced default scale (the paper's
//! traces are 137M-record DITL captures; ours are synthetic and sized to
//! finish in seconds-to-minutes) — set `LDP_SCALE` to trade runtime for
//! statistical weight, e.g. `LDP_SCALE=4 cargo run -p ldp-bench --bin
//! fig10_dnssec_bandwidth --release`.

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

use std::path::PathBuf;

pub use ldp_metrics::{Cdf, LogHistogram, Report, Summary};
pub use ldp_obs::RunManifest;

/// Experiment scale factor from `LDP_SCALE` (default 1.0, clamped to
/// [0.05, 100]).
pub fn scale() -> f64 {
    std::env::var("LDP_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 100.0)
}

/// Output directory for results (`LDP_RESULTS` or `./results`).
pub fn output_dir() -> PathBuf {
    std::env::var("LDP_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Prints the report and writes `results/<stem>.{txt,json}`.
pub fn emit(report: &Report, stem: &str) {
    print!("{}", report.to_text());
    let dir = output_dir();
    match report.write_files(&dir, stem) {
        Ok(()) => println!("\n[written: {}/{stem}.txt, {stem}.json]", dir.display()),
        Err(e) => eprintln!("warning: could not write results: {e}"),
    }
}

/// Like [`emit`], but also writes the run manifest to
/// `results/<stem>.manifest.json` — the per-run provenance artifact
/// (git rev, seed, scale, stage histograms, fault counters).
pub fn emit_with(report: &Report, stem: &str, manifest: &RunManifest) {
    emit(report, stem);
    match manifest.write(&output_dir(), stem) {
        Ok(path) => println!("[manifest: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write manifest: {e}"),
    }
}

/// Current process RSS in bytes via getrusage (ru_maxrss is KiB on Linux).
/// Used by the live throughput experiment to report real engine footprint.
pub fn max_rss_bytes() -> u64 {
    // SAFETY: getrusage with a zeroed out-param is the documented usage.
    unsafe {
        let mut usage: libc::rusage = std::mem::zeroed();
        if libc::getrusage(libc::RUSAGE_SELF, &mut usage) == 0 {
            usage.ru_maxrss as u64 * 1024
        } else {
            0
        }
    }
}

/// The scaled-down B-Root-like configs shared by several figures.
pub mod traces {
    use ldp_workload::BRootConfig;

    /// The ratio that drives every connection-oriented result: the paper's
    /// B-Root-17a has 1.17M clients at ~39k q/s — a mean per-client
    /// inter-query interval of ≈30 s, the same order as the 5–40 s idle
    /// timeouts under test. Preserving clients ≈ rate × 30 keeps the
    /// idle-close/reuse balance (and hence handshake rates, established
    /// counts, TIME_WAIT accumulation, latency mixes) faithful at any
    /// scale; scaling clients by rate alone would be a scale artifact.
    fn clients_for(rate_qps: f64) -> usize {
        ((rate_qps * 30.0) as usize).clamp(200, 500_000)
    }

    /// B-Root-16-like trace at harness scale: the fidelity experiments'
    /// workload (§4.2 replays B-Root-16).
    pub fn b16_like(scale: f64) -> BRootConfig {
        let mean_rate_qps = 2_000.0 * scale;
        BRootConfig {
            duration_s: 30.0 * scale.min(4.0),
            mean_rate_qps,
            clients: clients_for(mean_rate_qps),
            seed: 16,
            ..BRootConfig::default()
        }
    }

    /// B-Root-17a-like for the footprint experiments. The duration is
    /// *not* scaled: it must span several multiples of the largest (40 s)
    /// idle timeout or no connection ever idles out — the paper's hour-long
    /// trace reaches steady state after ~5 minutes; three minutes suffices
    /// at our rates.
    pub fn b17a_like(scale: f64) -> BRootConfig {
        let mean_rate_qps = 1_500.0 * scale;
        BRootConfig {
            duration_s: 180.0,
            mean_rate_qps,
            clients: clients_for(mean_rate_qps),
            seed: 17,
            ..BRootConfig::default()
        }
    }

    /// B-Root-17b-like cut for the latency experiments. Figure 15's
    /// non-busy latency mode (fresh connections ⇒ 2-RTT TCP medians)
    /// exists only when the clients dominating the sub-250-query cut have
    /// inter-query gaps *longer* than the 20 s idle timeout. That needs
    /// the paper's full 20-minute duration and a client population large
    /// enough for the Zipf tail to thin out (queries-per-client at the
    /// 98th client percentile must stay under duration/timeout ≈ 60).
    pub fn b17b_like(scale: f64) -> BRootConfig {
        let mean_rate_qps = 800.0 * scale;
        BRootConfig {
            duration_s: 1200.0,
            mean_rate_qps,
            clients: ((mean_rate_qps * 85.0) as usize).clamp(2_000, 725_000),
            seed: 18,
            ..BRootConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env() {
        // Not setting env here (tests run in parallel); just exercise the
        // default path and clamping helpers.
        let s = scale();
        assert!((0.05..=100.0).contains(&s));
    }

    #[test]
    fn rss_is_positive() {
        assert!(max_rss_bytes() > 0);
    }

    #[test]
    fn trace_configs_scale() {
        let small = traces::b16_like(0.1);
        let big = traces::b16_like(2.0);
        assert!(big.mean_rate_qps > small.mean_rate_qps);
        assert!(big.clients > small.clients);
    }
}
