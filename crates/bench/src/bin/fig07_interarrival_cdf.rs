//! Figure 7: cumulative distribution of inter-arrival times, original vs
//! replayed.
//!
//! For each trace the binary prints paired CDF quantiles of the original
//! and the replayed inter-arrival distribution plus their
//! Kolmogorov–Smirnov distance. The paper's shape: close agreement for
//! gaps ≥10 ms and for the irregular B-Root arrivals; visible spread for
//! fixed sub-millisecond gaps (timer/syscall jitter dominates there).

use std::sync::Arc;

use ldp_bench::{emit, scale, traces, Cdf, Report};
use ldp_replay::{LiveReplay, ReplayMode};
use ldp_server::auth::AuthEngine;
use ldp_server::live::LiveServer;
use ldp_trace::TraceRecord;
use ldp_workload::zones::{synthetic_root_zone, wildcard_example_zone};
use ldp_workload::SyntheticConfig;
use ldp_zone::ZoneSet;
use serde_json::json;

fn engine() -> Arc<AuthEngine> {
    let mut set = ZoneSet::new();
    set.insert(synthetic_root_zone(50));
    set.insert(wildcard_example_zone());
    Arc::new(AuthEngine::with_zones(Arc::new(set)))
}

fn original_interarrivals(trace: &[TraceRecord]) -> Vec<f64> {
    trace
        .windows(2)
        .map(|w| (w[1].time_us - w[0].time_us) as f64 / 1e6)
        .collect()
}

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let scale = scale();
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .expect("spawn live server");

    let mut report = Report::new("Figure 7: CDF of inter-arrival time, original vs replayed");
    let quantiles = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99];
    let secs = (6.0 * scale).clamp(4.0, 30.0);

    let mut cases: Vec<(String, Vec<TraceRecord>)> = Vec::new();
    {
        let mut cfg = traces::b16_like(scale.min(1.0));
        cfg.duration_s = secs;
        cfg.mean_rate_qps = cfg.mean_rate_qps.min(3000.0);
        cases.push(("B-Root*".into(), cfg.generate()));
    }
    for level in 1..=4u32 {
        let mut cfg = SyntheticConfig::syn(level);
        cfg.duration_s = secs as u64;
        cases.push((format!("syn-{level}"), cfg.generate()));
    }

    for (label, trace) in cases {
        if trace.len() < 3 {
            continue;
        }
        let original = Cdf::new(&original_interarrivals(&trace));
        let replay = LiveReplay {
            mode: ReplayMode::Timed { speed: 1.0 },
            ..LiveReplay::new(server.addr)
        };
        let out = replay.run(trace).await.expect("replay runs");
        let replayed = Cdf::new(&out.replayed_interarrivals_s());
        let ks = original.ks_distance(&replayed);

        let section = report.section(
            format!("{label} (KS distance {ks:.4})"),
            &["quantile", "original_s", "replayed_s"],
        );
        for q in quantiles {
            section.row(vec![
                json!(q),
                json!(original.quantile(q)),
                json!(replayed.quantile(q)),
            ]);
        }
        println!("{label:<12} KS={ks:.4}");
    }

    println!("\npaper shape: tight agreement at ≥10 ms gaps and for B-Root; spread below 1 ms");
    emit(&report, "fig07_interarrival_cdf");
}
