//! Figure 11 / §5.2.3: server CPU usage vs TCP idle-timeout window, for
//! the original trace mix (3% TCP), all-TCP, and all-TLS.
//!
//! Paper shapes: CPU is flat across timeout windows; all-TCP ≈ 5% of 48
//! cores; all-TLS ≈ 9–10% (slightly higher at 5 s timeouts from extra
//! handshakes); and — the surprise — the original mostly-UDP mix costs
//! ~10%, *more* than all-TCP (NIC offload; see the resource model's
//! documentation).

use ldp_bench::{emit, scale, traces, Report};
use ldp_trace::mutate;
use ldplayer::SimExperiment;
use serde_json::json;

fn main() {
    let scale = scale();
    let mut report = Report::new("Figure 11: overall CPU usage vs TCP time-out window");
    let section = report.section(
        format!("CPU percent of 48-core server, steady state (LDP_SCALE={scale})"),
        &[
            "workload",
            "timeout_s",
            "cpu_percent",
            "cpu_percent_at_paper_rate",
        ],
    );

    let cfg = traces::b17a_like(scale);
    // CPU is linear in query rate in the calibrated model, so scale the
    // measured utilization to the paper's ~39 k q/s B-Root-17a rate for an
    // apples-to-apples column next to the raw number.
    let paper_rate = 39_000.0;
    let timeouts = [5u64, 10, 15, 20, 25, 30, 35, 40];

    for (label, mutator) in [
        ("original (3% TCP)", None),
        ("all-TCP", Some(mutate::all_tcp(5))),
        ("all-TLS", Some(mutate::all_tls(5))),
    ] {
        for timeout in timeouts {
            let mut trace = cfg.generate();
            if let Some(m) = &mutator {
                m.clone().apply_all(&mut trace);
            }
            let result = SimExperiment::root_server(trace)
                .rtt_ms(1)
                .tcp_idle_timeout_s(timeout)
                .run();
            assert!(
                result.answer_rate() > 0.98,
                "{label} t={timeout}: rate {}",
                result.answer_rate()
            );
            let cpu = result
                .steady_state(cfg.duration_s * 0.3, |s| s.cpu_percent)
                .unwrap_or(0.0);
            let actual_rate = result.outcomes.len() as f64 / cfg.duration_s;
            let normalized = cpu * paper_rate / actual_rate.max(1.0);
            println!(
                "{label:<18} timeout {timeout:>2}s: {cpu:6.3}% CPU  ({normalized:5.2}% at paper rate)"
            );
            section.row(vec![
                json!(label),
                json!(timeout),
                json!(cpu),
                json!(normalized),
            ]);
        }
    }

    println!("\npaper shape: flat vs timeout; TCP ≈5%, TLS ≈9–10%, original mix ≈10%");
    emit(&report, "fig11_cpu");
}
