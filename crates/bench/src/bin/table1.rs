//! Table 1: the trace inventory — per-trace duration, mean ± stddev of
//! query inter-arrival, distinct client addresses, and record counts.
//!
//! The paper's table describes its captured DITL/recursive traces; this
//! binary generates the synthetic stand-ins at harness scale and reports
//! the same statistics, so every later figure's workload is documented by
//! the same table the paper leads with.

use ldp_bench::{emit, scale, traces, Report};
use ldp_trace::TraceStats;
use ldp_workload::{RecConfig, SyntheticConfig};
use serde_json::json;

fn main() {
    let scale = scale();
    let mut report = Report::new("Table 1: DNS traces used in experiments and evaluation");
    let section = report.section(
        format!("traces (LDP_SCALE={scale})"),
        &[
            "trace",
            "duration_s",
            "interarrival_mean_s",
            "interarrival_stddev_s",
            "client_ips",
            "records",
            "mean_rate_qps",
        ],
    );

    let mut add = |label: &str, stats: &TraceStats| {
        section.row(vec![
            json!(label),
            json!(stats.duration_s),
            json!(stats.interarrival_mean_s),
            json!(stats.interarrival_stddev_s),
            json!(stats.client_ips),
            json!(stats.records),
            json!(stats.mean_rate_qps),
        ]);
    };

    for (label, cfg) in [
        ("B-Root-16*", traces::b16_like(scale)),
        ("B-Root-17a*", traces::b17a_like(scale)),
        ("B-Root-17b*", traces::b17b_like(scale)),
    ] {
        let trace = cfg.generate();
        add(label, &TraceStats::compute(&trace));
    }

    {
        let rec = RecConfig {
            duration_s: 600.0 * scale.min(6.0),
            ..RecConfig::default()
        }
        .generate();
        add("Rec-17*", &TraceStats::compute(&rec));
    }

    for level in 0..=4u32 {
        // The full syn traces run 60 min; cap generation time at scale.
        let mut cfg = SyntheticConfig::syn(level);
        cfg.duration_s = ((cfg.duration_s as f64) * (scale / 10.0).min(1.0)).max(30.0) as u64;
        let trace = cfg.generate();
        add(&format!("syn-{level}"), &TraceStats::compute(&trace));
    }

    println!(
        "(* synthetic stand-ins for the paper's private captures; see DESIGN.md substitutions)\n"
    );
    emit(&report, "table1");
}
