//! Throughput regression gate for CI: compares two `BENCH_fig09.json`
//! records and fails (exit 1) when the new mean rate regresses below
//! `LDP_GATE_TOLERANCE` (default 0.98, i.e. a 2% allowance) of the
//! baseline. Records taken at different `LDP_SCALE` are incomparable, so
//! a scale mismatch skips the gate (exit 0 with a notice) instead of
//! producing a false verdict.
//!
//! Usage: `bench_gate <baseline.json> <new.json>`

use serde_json::Value;

fn read_record(path: &str) -> Result<Value, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&body).map_err(|e| format!("parse {path}: {e}"))
}

fn field_f64(v: &Value, key: &str, path: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{path}: missing numeric field `{key}`"))
}

fn tolerance() -> f64 {
    std::env::var("LDP_GATE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.98)
        .clamp(0.0, 1.0)
}

fn gate(baseline: &Value, new: &Value, args: (&str, &str)) -> Result<Option<String>, String> {
    let (bpath, npath) = args;
    let old_scale = field_f64(baseline, "scale", bpath)?;
    let new_scale = field_f64(new, "scale", npath)?;
    if old_scale != new_scale {
        return Ok(Some(format!(
            "scales differ (baseline {old_scale}, new {new_scale}) — records incomparable, gate skipped"
        )));
    }
    let old_rate = field_f64(baseline, "mean_rate_qps", bpath)?;
    let new_rate = field_f64(new, "mean_rate_qps", npath)?;
    let tol = tolerance();
    let floor = old_rate * tol;
    if new_rate < floor {
        return Err(format!(
            "throughput regression: {new_rate:.0} q/s < {floor:.0} q/s \
             (baseline {old_rate:.0} × tolerance {tol})"
        ));
    }
    println!(
        "bench gate: ok — {new_rate:.0} q/s vs baseline {old_rate:.0} q/s \
         (floor {floor:.0}, tolerance {tol})"
    );
    Ok(None)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <baseline.json> <new.json>");
        std::process::exit(2);
    }
    let run = || -> Result<Option<String>, String> {
        let baseline = read_record(&args[1])?;
        let new = read_record(&args[2])?;
        gate(&baseline, &new, (&args[1], &args[2]))
    };
    match run() {
        Ok(None) => {}
        Ok(Some(skip)) => println!("bench gate: {skip}"),
        Err(e) => {
            eprintln!("bench gate FAILED: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn passes_within_tolerance() {
        let old = json!({"scale": 0.3, "mean_rate_qps": 100_000.0});
        let new = json!({"scale": 0.3, "mean_rate_qps": 99_000.0});
        assert!(gate(&old, &new, ("a", "b")).unwrap().is_none());
    }

    #[test]
    fn fails_on_regression() {
        let old = json!({"scale": 0.3, "mean_rate_qps": 100_000.0});
        let new = json!({"scale": 0.3, "mean_rate_qps": 90_000.0});
        assert!(gate(&old, &new, ("a", "b")).is_err());
    }

    #[test]
    fn skips_on_scale_mismatch() {
        let old = json!({"scale": 0.3, "mean_rate_qps": 100_000.0});
        let new = json!({"scale": 1.0, "mean_rate_qps": 10.0});
        assert!(gate(&old, &new, ("a", "b")).unwrap().is_some());
    }

    #[test]
    fn missing_fields_are_errors() {
        let old = json!({"scale": 0.3});
        let new = json!({"scale": 0.3, "mean_rate_qps": 1.0});
        assert!(gate(&old, &new, ("a", "b")).is_err());
    }
}
