//! Figure 8: per-second query-rate difference between replayed and
//! original B-Root trace, over five trials.
//!
//! For each trial the binary buckets original and replayed send times into
//! 1-second windows and reports the CDF of the per-bucket relative
//! difference. The paper's claim: almost all windows within ±0.1%.

use std::sync::Arc;

use ldp_bench::{emit, scale, traces, Cdf, Report};
use ldp_metrics::RateSeries;
use ldp_replay::{LiveReplay, ReplayMode};
use ldp_server::auth::AuthEngine;
use ldp_server::live::LiveServer;
use ldp_workload::zones::synthetic_root_zone;
use ldp_zone::ZoneSet;
use serde_json::json;

fn engine() -> Arc<AuthEngine> {
    let mut set = ZoneSet::new();
    set.insert(synthetic_root_zone(50));
    Arc::new(AuthEngine::with_zones(Arc::new(set)))
}

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let scale = scale();
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .expect("spawn live server");

    let mut report = Report::new("Figure 8: per-second query-rate difference, replay vs original");
    let section = report.section(
        format!("five trials (LDP_SCALE={scale})"),
        &[
            "trial",
            "buckets",
            "median_rate_qps",
            "p1_diff",
            "median_diff",
            "p99_diff",
            "within_0.1pct",
            "within_1pct",
        ],
    );

    let mut cfg = traces::b16_like(scale.min(1.0));
    cfg.duration_s = (10.0 * scale).clamp(8.0, 40.0);
    cfg.mean_rate_qps = cfg.mean_rate_qps.min(3000.0);

    for trial in 1..=5u32 {
        let trace = cfg.generate(); // same seed: same original each trial
        let mut original = RateSeries::new(1.0);
        let t0 = trace[0].time_us;
        for r in &trace {
            original.record((r.time_us - t0) as f64 / 1e6);
        }
        let replay = LiveReplay {
            mode: ReplayMode::Timed { speed: 1.0 },
            ..LiveReplay::new(server.addr)
        };
        let out = replay.run(trace).await.expect("replay runs");
        let mut replayed = RateSeries::new(1.0);
        for o in &out.outcomes {
            replayed.record(o.sent_offset_us as f64 / 1e6);
        }
        let diffs = replayed.relative_difference(&original);
        let cdf = Cdf::new(&diffs);
        let within_01 =
            diffs.iter().filter(|d| d.abs() <= 0.001).count() as f64 / diffs.len().max(1) as f64;
        let within_1 =
            diffs.iter().filter(|d| d.abs() <= 0.01).count() as f64 / diffs.len().max(1) as f64;
        println!(
            "trial {trial}: buckets={} median diff={:+.5} within±0.1%={:.1}% within±1%={:.1}%",
            diffs.len(),
            cdf.quantile(0.5).unwrap_or(0.0),
            within_01 * 100.0,
            within_1 * 100.0
        );
        section.row(vec![
            json!(trial),
            json!(diffs.len()),
            json!(original.median_rate()),
            json!(cdf.quantile(0.01)),
            json!(cdf.quantile(0.5)),
            json!(cdf.quantile(0.99)),
            json!(within_01),
            json!(within_1),
        ]);
    }

    println!("\npaper shape: 95–99% of windows within ±0.1% rate difference");
    emit(&report, "fig08_rate_diff");
}
