//! Figure 9 / §4.3: single-host fast-replay throughput.
//!
//! Replays a continuous stream of identical queries (`www.example.com`)
//! over UDP with timers disabled — the paper's setup: one query generator,
//! one distributor, six queriers on one host — and samples query rate and
//! bandwidth every two seconds. The paper reached 87 k q/s (60 Mb/s) with
//! the generator saturating one core; absolute numbers here depend on the
//! host, the shape to check is a flat, CPU-bound plateau.

use std::sync::Arc;
use std::time::Instant;

use ldp_bench::{emit, max_rss_bytes, scale, Report};
use ldp_replay::{LiveReplay, ReplayMode};
use ldp_server::auth::AuthEngine;
use ldp_server::live::LiveServer;
use ldp_trace::TraceRecord;
use ldp_wire::{Name, RrType};
use ldp_workload::zones::wildcard_example_zone;
use ldp_zone::ZoneSet;
use serde_json::json;

fn engine() -> Arc<AuthEngine> {
    let mut set = ZoneSet::new();
    set.insert(wildcard_example_zone());
    Arc::new(AuthEngine::with_zones(Arc::new(set)))
}

/// The §4.3 artificial generator: identical queries, five sources.
fn generator(n: u64) -> Vec<TraceRecord> {
    let name = Name::parse("www.example.com").unwrap();
    (0..n)
        .map(|i| {
            TraceRecord::udp_query(
                0, // all at t=0: fast mode ignores timing anyway
                format!("10.0.0.{}", 1 + i % 5).parse().unwrap(),
                (1024 + i % 60_000) as u16,
                name.clone(),
                RrType::A,
            )
        })
        .collect()
}

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let scale = scale();
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .expect("spawn live server");

    let mut report = Report::new("Figure 9 / §4.3: single-host fast-replay throughput");
    let section = report.section(
        format!("2-second windows (LDP_SCALE={scale})"),
        &["window", "queries", "rate_qps", "bandwidth_mbps"],
    );

    // Windows of fast replay until the time budget is spent.
    let budget_s = (10.0 * scale).clamp(6.0, 60.0);
    let batch = (50_000.0 * scale) as u64;
    let started = Instant::now();
    let mut window = 0u32;
    let mut total_sent = 0u64;
    let mut rates = Vec::new();
    while started.elapsed().as_secs_f64() < budget_s {
        let trace = generator(batch);
        let replay = LiveReplay {
            mode: ReplayMode::Fast,
            drain: std::time::Duration::from_millis(50),
            ..LiveReplay::new(server.addr)
        };
        let t0 = Instant::now();
        let out = replay.run(trace).await.expect("replay runs");
        let secs = t0.elapsed().as_secs_f64();
        let qps = out.sent as f64 / secs;
        // Average request size ≈ 33-byte query + 28-byte UDP/IP headers.
        let mbps = qps * (33.0 + 28.0) * 8.0 / 1e6;
        total_sent += out.sent;
        window += 1;
        rates.push(qps);
        println!("window {window}: {qps:>10.0} q/s  {mbps:>7.2} Mb/s");
        section.row(vec![
            json!(window),
            json!(out.sent),
            json!(qps),
            json!(mbps),
        ]);
    }

    let mean = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
    let summary = report.section("summary", &["metric", "value"]);
    summary.row(vec![json!("total queries"), json!(total_sent)]);
    summary.row(vec![json!("mean rate (q/s)"), json!(mean)]);
    summary.row(vec![
        json!("server answers"),
        json!(server
            .stats
            .udp_queries
            .load(std::sync::atomic::Ordering::Relaxed)),
    ]);
    summary.row(vec![
        json!("replay process max RSS (MB)"),
        json!(max_rss_bytes() as f64 / 1e6),
    ]);

    println!(
        "\npaper shape: flat CPU-bound plateau; 87 k q/s (60 Mb/s) on the paper's 2.4 GHz Xeon"
    );
    emit(&report, "fig09_throughput");
}
