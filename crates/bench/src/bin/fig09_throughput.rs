//! Figure 9 / §4.3: single-host fast-replay throughput.
//!
//! Replays one *continuous* stream of identical queries
//! (`www.example.com`) over UDP with timers disabled — the paper's setup:
//! one query generator, one distributor, six queriers on one host — and
//! samples the live telemetry registry every two seconds for query rate
//! and bandwidth, exactly as the paper plots. (The window loop is a
//! [`ldp_telemetry::Sampler`] consumer: the same registry that feeds
//! `--metrics-addr` feeds the bench, and the sampled series lands in the
//! manifest's v2 `timeseries` section.) (An earlier revision ran many
//! back-to-back mini-replays and divided by the whole wall clock, which
//! silently charged each window its fixed answer-drain sleep and pipeline
//! setup — under-reporting sustained throughput by ~40%.) The paper
//! reached 87 k q/s (60 Mb/s) with the generator saturating one core;
//! absolute numbers here depend on the host, the shape to check is a
//! flat, CPU-bound plateau.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ldp_bench::{emit_with, max_rss_bytes, scale, Report, RunManifest};
use ldp_metrics::PipelineTotals;
use ldp_obs::{ReplaySpans, StageBreakdown};
use ldp_replay::{LiveReplay, ReplayMode};
use ldp_server::auth::AuthEngine;
use ldp_server::live::LiveServer;
use ldp_trace::TraceRecord;
use ldp_wire::{Name, RrType};
use ldp_workload::zones::wildcard_example_zone;
use ldp_zone::ZoneSet;
use serde_json::json;

fn engine() -> Arc<AuthEngine> {
    let mut set = ZoneSet::new();
    set.insert(wildcard_example_zone());
    Arc::new(AuthEngine::with_zones(Arc::new(set)))
}

/// The §4.3 artificial generator as a lazy stream: identical queries,
/// five sources, produced until `budget` elapses (the bounded read-ahead
/// in [`LiveReplay::run_stream`] parks it whenever the pipeline is full).
fn query_stream(
    budget: Duration,
) -> impl Iterator<Item = Result<TraceRecord, ldp_trace::TraceError>> + Send {
    let name = Name::parse("www.example.com").expect("valid name");
    let sources: [std::net::IpAddr; 5] = [
        "10.0.0.1".parse().expect("valid ip"),
        "10.0.0.2".parse().expect("valid ip"),
        "10.0.0.3".parse().expect("valid ip"),
        "10.0.0.4".parse().expect("valid ip"),
        "10.0.0.5".parse().expect("valid ip"),
    ];
    let started = Instant::now();
    (0u64..).map_while(move |i| {
        if i % 1024 == 0 && started.elapsed() >= budget {
            return None;
        }
        Some(Ok(TraceRecord::udp_query(
            0, // all at t=0: fast mode ignores timing anyway
            sources[(i % 5) as usize],
            (1024 + i % 60_000) as u16,
            name.clone(),
            RrType::A,
        )))
    })
}

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let scale = scale();
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .expect("spawn live server");

    let mut report = Report::new("Figure 9 / §4.3: single-host fast-replay throughput");
    let section = report.section(
        format!("2-second windows (LDP_SCALE={scale})"),
        &["window", "queries", "rate_qps", "bandwidth_mbps"],
    );

    // One continuous fast replay for the whole budget, sampled live via
    // the shared telemetry registry (the same plane `--metrics-addr`
    // serves; per-shard sent counters plus the server's handled totals).
    let budget_s = (10.0 * scale).clamp(6.0, 60.0);
    let window_s = (budget_s / 3.0).min(2.0);
    let registry = Arc::new(ldp_telemetry::Registry::new());
    server.register_telemetry(&registry);
    let mut replay = LiveReplay {
        mode: ReplayMode::Fast,
        drain: std::time::Duration::from_millis(50),
        telemetry: Some(registry.clone()),
        // Raw send capacity: a blast replay intentionally overruns the
        // server, and retransmitting the overrun would measure the retry
        // ladder, not the generator.
        retry: ldp_replay::RetryPolicy::disabled(),
        ..LiveReplay::new(server.addr)
    };
    // Opt-in span recording (`LDP_OBS_SAMPLE`): the manifest then carries
    // per-stage latency histograms alongside the throughput series.
    let obs = ReplaySpans::from_env(replay.distributors * replay.queriers_per_distributor);
    replay.obs = obs.clone();
    let budget = Duration::from_secs_f64(budget_s);
    let records = query_stream(budget);
    let runner = tokio::spawn(async move { replay.run_stream(records).await });

    let mut sampler = ldp_telemetry::Sampler::new(registry, 4_096);
    let started = Instant::now();
    let mut window = 0u32;
    let mut rates = Vec::new();
    let mut sampled_at = started;
    let mut sampled_total = 0u64;
    while started.elapsed() < budget {
        tokio::time::sleep(Duration::from_secs_f64(window_s)).await;
        let now = Instant::now();
        sampler.sample();
        let total = sampler
            .family_totals(ldp_telemetry::sampler::SENT_FAMILY)
            .last()
            .map_or(0, |&(_, v)| v);
        let secs = now.duration_since(sampled_at).as_secs_f64();
        let sent = total - sampled_total;
        let qps = sent as f64 / secs;
        // Average request size ≈ 33-byte query + 28-byte UDP/IP headers.
        let mbps = qps * (33.0 + 28.0) * 8.0 / 1e6;
        window += 1;
        rates.push(qps);
        println!("window {window}: {qps:>10.0} q/s  {mbps:>7.2} Mb/s");
        section.row(vec![json!(window), json!(sent), json!(qps), json!(mbps)]);
        sampled_at = now;
        sampled_total = total;
    }

    let out = runner
        .await
        .expect("replay task joins")
        .expect("replay runs");
    let total_sent = out.sent;
    let last_shards = out.shards;

    // Where the pipeline saturates: deep queues = send-bound shards,
    // postman stalls = distribution-bound, shallow queues = reader-bound.
    let shard_section = report.section(
        "per-shard saturation (whole run)",
        &[
            "shard",
            "sent",
            "answered",
            "batches",
            "stalls",
            "max_depth",
            "mean_depth",
        ],
    );
    for s in &last_shards {
        println!("{}", s.row());
        shard_section.row(vec![
            json!(s.shard),
            json!(s.sent),
            json!(s.answered),
            json!(s.batches),
            json!(s.postman_stalls),
            json!(s.max_queue_depth),
            json!(s.depths.mean()),
        ]);
    }
    let totals = PipelineTotals::from_shards(&last_shards);

    let mean = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
    let summary = report.section("summary", &["metric", "value"]);
    summary.row(vec![json!("total queries"), json!(total_sent)]);
    summary.row(vec![json!("mean rate (q/s)"), json!(mean)]);
    summary.row(vec![
        json!("server answers"),
        json!(server
            .stats
            .udp_queries
            .load(std::sync::atomic::Ordering::Relaxed)),
    ]);
    summary.row(vec![
        json!("replay process max RSS (MB)"),
        json!(max_rss_bytes() as f64 / 1e6),
    ]);

    println!(
        "\npaper shape: flat CPU-bound plateau; 87 k q/s (60 Mb/s) on the paper's 2.4 GHz Xeon"
    );
    let mut manifest = RunManifest::new("fig09_throughput")
        .scale(scale)
        .throughput(rates.clone())
        .faults(json!(totals))
        .timeseries(sampler.to_manifest_value())
        .stage("server_handle", &server.stats.handle_hist());
    if let Some(spans) = &obs {
        let breakdown = StageBreakdown::from_events(&spans.events());
        manifest = manifest
            .stage_breakdown(&breakdown)
            .extra("span_overwritten", json!(spans.overwritten()));
    }
    emit_with(&report, "fig09_throughput", &manifest);

    // Machine-readable bench record for CI smoke checks and cross-commit
    // throughput comparisons.
    let bench = json!({
        "bench": "fig09_throughput",
        "scale": scale,
        "obs_sample": ldp_obs::sample_from_env(),
        "windows": window,
        "total_queries": total_sent,
        "mean_rate_qps": mean,
        "shards": last_shards,
        "totals": totals,
    });
    let dir = ldp_bench::output_dir();
    let path = dir.join("BENCH_fig09.json");
    // ldp-lint: allow(r3) -- one-shot result write after all replays finished
    match std::fs::create_dir_all(&dir).and_then(|()| {
        // ldp-lint: allow(r3) -- one-shot result write after all replays finished
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&bench).expect("bench record serializes"),
        )
    }) {
        Ok(()) => println!("[written: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write bench record: {e}"),
    }
}
