//! Figure 14 / §5.2.2: server memory and connection footprint over time
//! with all queries over TLS, for idle timeouts 5–40 s.
//!
//! The TLS twin of Figure 13. Paper shapes: connection counts match the
//! TCP experiment (TLS rides the same connections) while memory runs ≈30%
//! higher (per-session crypto state) — ≈18 GB vs ≈15 GB at a 20 s timeout
//! at the paper's trace rate.

use ldp_bench::{emit, scale, traces, Report};
use ldp_trace::mutate;
use ldplayer::{SimExperiment, SimRunResult};
use serde_json::json;

fn run_case(tls: bool, timeout: u64, scale: f64) -> (SimRunResult, f64) {
    let cfg = traces::b17a_like(scale);
    let mut trace = cfg.generate();
    if tls {
        mutate::all_tls(5).apply_all(&mut trace);
    } else {
        mutate::all_tcp(5).apply_all(&mut trace);
    }
    let result = SimExperiment::root_server(trace)
        .rtt_ms(1)
        .tcp_idle_timeout_s(timeout)
        .grace_s(1)
        .run();
    (result, cfg.duration_s)
}

fn main() {
    let scale = scale();
    let mut report = Report::new("Figure 14: TLS memory and connection footprint vs idle timeout");

    let timeouts = [5u64, 10, 15, 20, 25, 30, 35, 40];
    let mut cases: Vec<(String, SimRunResult, f64)> = Vec::new();
    for t in timeouts {
        let (r, dur) = run_case(true, t, scale);
        assert!(
            r.answer_rate() > 0.98,
            "timeout {t}: rate {}",
            r.answer_rate()
        );
        cases.push((format!("all-TLS {t}s"), r, dur));
    }

    let summary = report.section(
        format!("steady-state means (LDP_SCALE={scale})"),
        &[
            "case",
            "memory_gb",
            "established",
            "time_wait",
            "tls_handshakes",
        ],
    );
    for (label, r, dur) in &cases {
        let from = dur * 0.4;
        let mem = r.steady_state(from, |s| s.memory_gb).unwrap_or(0.0);
        let est = r
            .steady_state(from, |s| s.established as f64)
            .unwrap_or(0.0);
        let tw = r.steady_state(from, |s| s.time_wait as f64).unwrap_or(0.0);
        println!("{label:<16} mem {mem:6.2} GB  established {est:8.0}  TIME_WAIT {tw:8.0}");
        summary.row(vec![
            json!(label),
            json!(mem),
            json!(est),
            json!(tw),
            json!(r.usage.tls_handshakes),
        ]);
    }

    for (panel, field) in [
        ("(a) memory_gb", 0usize),
        ("(b) established", 1),
        ("(c) time_wait", 2),
    ] {
        let section = report.section(panel, &["t_s", "case", "value"]);
        for (label, r, _) in &cases {
            let step = (r.samples.len() / 40).max(1);
            for s in r.samples.iter().step_by(step) {
                let v = match field {
                    0 => s.memory_gb,
                    1 => s.established as f64,
                    _ => s.time_wait as f64,
                };
                section.row(vec![json!(s.t.as_secs_f64()), json!(label), json!(v)]);
            }
        }
    }

    // The TLS-vs-TCP premium at the paper's reference timeout, compared
    // at the paper's rate: the 2 GB process baseline is rate-independent,
    // so the premium must be taken after extrapolating the connection-
    // attributable memory (same extrapolation as Figure 13's column).
    let (tcp20, dur) = run_case(false, 20, scale);
    let (ref _label, ref tls20, _) = cases[timeouts.iter().position(|&t| t == 20).unwrap()];
    let from = dur * 0.4;
    let base_gb = 2.0;
    let extrap = |r: &SimRunResult| {
        let mem = r.steady_state(from, |s| s.memory_gb).unwrap_or(0.0);
        let rate = r.outcomes.len() as f64 / dur;
        base_gb + (mem - base_gb).max(0.0) * 39_000.0 / rate.max(1.0)
    };
    let tcp_mem = extrap(&tcp20);
    let tls_mem = extrap(tls20);
    let premium = (tls_mem - tcp_mem) / tcp_mem.max(1e-9);
    let headline = report.section("TLS premium at 20 s (at paper rate)", &["metric", "value"]);
    headline.row(vec![json!("TCP memory (GB, paper ≈ 15)"), json!(tcp_mem)]);
    headline.row(vec![json!("TLS memory (GB, paper ≈ 18)"), json!(tls_mem)]);
    headline.row(vec![json!("premium (paper ≈ +30%)"), json!(premium)]);
    println!(
        "\nTLS premium at 20 s (paper rate): TCP {tcp_mem:.1} GB → TLS {tls_mem:.1} GB ({:+.0}%; paper 15 → 18 GB)",
        premium * 100.0
    );
    emit(&report, "fig14_tls_footprint");
}
