//! Extension experiment: the third leg of the paper's opening question —
//! "What if all DNS requests were made over **QUIC**, TCP or TLS?" The
//! paper's evaluation covered TCP and TLS; this binary completes the
//! triptych with DNS-over-QUIC (RFC 9250 emulation) and compares all
//! four transports on the §5.2 axes: server memory, connection/session
//! state, CPU, and latency vs RTT.
//!
//! Expected shapes: QUIC's fresh-query latency is 2 RTT (vs TCP 2, TLS 4 —
//! QUIC folds crypto into the transport handshake, so it matches plain
//! TCP while *encrypted*); per-session memory sits far below TCP (no
//! kernel socket buffers, no TIME_WAIT); CPU sits near TLS (same crypto).

use ldp_bench::{emit, scale, traces, Report, Summary};
use ldp_replay::simclient::non_busy_latencies_ms;
use ldp_trace::mutate;
use ldplayer::SimExperiment;
use serde_json::json;

fn main() {
    let scale = scale();
    let mut report = Report::new("Extension: DNS over QUIC vs UDP/TCP/TLS (the intro's what-if)");

    // Footprint + CPU at the reference 20 s timeout.
    let cfg = traces::b17a_like(scale);
    let section = report.section(
        format!("server state, all-X replays, 20 s idle timeout (LDP_SCALE={scale})"),
        &[
            "transport",
            "memory_gb",
            "sessions_or_conns",
            "time_wait",
            "handshakes",
            "cpu_percent_at_paper_rate",
        ],
    );
    for (label, mutator) in [
        (
            "udp",
            Some(
                mutate::QueryMutator::new(1)
                    .push(ldp_trace::Mutation::SetProtocol(ldp_trace::Protocol::Udp)),
            ),
        ),
        ("tcp", Some(mutate::all_tcp(1))),
        ("tls", Some(mutate::all_tls(1))),
        ("quic", Some(mutate::all_quic(1))),
    ] {
        let mut trace = cfg.generate();
        if let Some(m) = mutator {
            let mut m = m;
            m.apply_all(&mut trace);
        }
        let result = SimExperiment::root_server(trace)
            .rtt_ms(1)
            .tcp_idle_timeout_s(20)
            .run();
        assert!(
            result.answer_rate() > 0.98,
            "{label}: rate {}",
            result.answer_rate()
        );
        let mem = result
            .steady_state(cfg.duration_s * 0.4, |s| s.memory_gb)
            .unwrap_or(0.0);
        let cpu = result
            .steady_state(cfg.duration_s * 0.4, |s| s.cpu_percent)
            .unwrap_or(0.0);
        let actual_rate = result.outcomes.len() as f64 / cfg.duration_s;
        let cpu_norm = cpu * 39_000.0 / actual_rate.max(1.0);
        let sessions = result.final_tcp.established.max(result.usage.quic_sessions);
        let handshakes = result.usage.tcp_handshakes + result.usage.quic_handshakes;
        println!(
            "{label:<5} mem {mem:5.2} GB  sessions {sessions:>6}  TIME_WAIT {:>6}  handshakes {handshakes:>7}  cpu@paper {cpu_norm:5.2}%",
            result.final_tcp.time_wait
        );
        section.row(vec![
            json!(label),
            json!(mem),
            json!(sessions),
            json!(result.final_tcp.time_wait),
            json!(handshakes),
            json!(cpu_norm),
        ]);
    }

    // Latency vs RTT for the non-busy cut (the discriminating view).
    let lat_cfg = traces::b17b_like(scale.min(0.3));
    let latency = report.section(
        "non-busy-client latency vs RTT (ms)",
        &["transport", "rtt_ms", "q1", "median", "q3"],
    );
    for (label, mutator) in [
        ("tcp", mutate::all_tcp(1)),
        ("tls", mutate::all_tls(1)),
        ("quic", mutate::all_quic(1)),
    ] {
        for rtt in [20u64, 80, 160] {
            let mut trace = lat_cfg.generate();
            let mut m = mutator.clone();
            m.apply_all(&mut trace);
            let result = SimExperiment::root_server(trace)
                .rtt_ms(rtt)
                .tcp_idle_timeout_s(20)
                .grace_s(2)
                .run();
            if let Some(s) = Summary::compute(&non_busy_latencies_ms(&result.outcomes, 60)) {
                println!(
                    "{label:<5} RTT {rtt:>3} ms: non-busy median {:6.1} ms (q1 {:6.1}, q3 {:6.1})",
                    s.median, s.q1, s.q3
                );
                latency.row(vec![
                    json!(label),
                    json!(rtt),
                    json!(s.q1),
                    json!(s.median),
                    json!(s.q3),
                ]);
            }
        }
    }

    println!("\nexpected: QUIC fresh = 2 RTT (like TCP, unlike TLS's 4), no TIME_WAIT, memory ≪ TCP, CPU ≈ TLS");
    emit(&report, "ext_quic");
}
