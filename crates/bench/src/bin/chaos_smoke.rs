//! CI chaos smoke: a short replay against a deterministically lossy
//! server must finish, recover via retransmits, and keep its books
//! straight. Exits nonzero when any bound is violated, so the `check.sh` /
//! CI step fails loudly instead of letting the fault-tolerance path rot.

use std::sync::Arc;
use std::time::Duration;

use ldp_bench::RunManifest;
use ldp_obs::{ReplaySpans, StageBreakdown};
use ldp_replay::{LiveReplay, ReplayMode};
use ldp_server::auth::AuthEngine;
use ldp_server::live::LiveServer;
use ldp_server::ChaosPolicy;
use ldp_trace::TraceRecord;
use ldp_wire::{Name, RrType};
use ldp_workload::zones::wildcard_example_zone;
use ldp_zone::ZoneSet;

const QUERIES: u64 = 1_000;
const DROP_P: f64 = 0.2;
const SEED: u64 = 42;
/// With three attempts at 20% loss a query is lost with p = 0.008, so the
/// expected abandon count is ~8/1000; 2.5% is a generous determinism-safe
/// ceiling that still catches a broken retry path (which abandons ~20%).
const MAX_GAVE_UP: u64 = 25;

fn engine() -> Arc<AuthEngine> {
    let mut set = ZoneSet::new();
    set.insert(wildcard_example_zone());
    Arc::new(AuthEngine::with_zones(Arc::new(set)))
}

fn trace(n: u64) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| {
            TraceRecord::udp_query(
                0,
                format!("10.0.0.{}", 1 + i % 5).parse().expect("valid ip"),
                (1024 + i % 60_000) as u16,
                Name::parse(&format!("q{i}.example.com")).expect("valid name"),
                RrType::A,
            )
        })
        .collect()
}

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let chaos = Arc::new(ChaosPolicy::new(SEED).drop_responses(DROP_P));
    let server = LiveServer::spawn_with_chaos(
        engine(),
        "127.0.0.1:0".parse().expect("valid addr"),
        chaos.clone(),
    )
    .await
    .expect("spawn chaos server");

    let mut replay = LiveReplay::new(server.addr);
    replay.mode = ReplayMode::Fast;
    // Room for the full retry ladder; the adaptive drain exits early.
    replay.drain = Duration::from_secs(4);
    let obs = ReplaySpans::from_env(replay.distributors * replay.queriers_per_distributor);
    replay.obs = obs.clone();
    let report = replay.run(trace(QUERIES)).await.expect("replay runs");

    let dropped = chaos
        .stats
        .dropped
        .load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "chaos smoke: sent {} answered {} timeouts {} retries {} gave_up {} \
         errors {} (server dropped {dropped})",
        report.sent,
        report.answered,
        report.timeouts,
        report.retries,
        report.gave_up,
        report.errors
    );

    let mut violations = Vec::new();
    if report.sent != QUERIES {
        violations.push(format!("sent {} != {QUERIES}", report.sent));
    }
    if report.errors != 0 {
        violations.push(format!("{} records degraded to errors", report.errors));
    }
    if dropped == 0 {
        violations.push("chaos injected no loss — the smoke tests nothing".to_string());
    }
    if report.timeouts == 0 || report.retries == 0 {
        violations.push(format!(
            "loss did not surface as timeouts/retries ({}/{})",
            report.timeouts, report.retries
        ));
    }
    if report.gave_up > MAX_GAVE_UP {
        violations.push(format!(
            "gave_up {} exceeds bound {MAX_GAVE_UP} — retransmits are not recovering",
            report.gave_up
        ));
    }
    if report.answered + report.gave_up != report.sent {
        violations.push(format!(
            "accounting leak: answered {} + gave_up {} != sent {}",
            report.answered, report.gave_up, report.sent
        ));
    }

    // Manifest: the chaos policy that ran, the replay's fault ledger, and
    // (when `LDP_OBS_SAMPLE` is set) the per-stage span breakdown with its
    // retry wire segments.
    let mut manifest = RunManifest::new("chaos_smoke")
        .seed(SEED)
        .chaos_policy(serde_json::json!({
            "drop_responses": DROP_P,
            "seed": SEED,
        }))
        .faults(serde_json::json!({
            "server_dropped": dropped,
            "timeouts": report.timeouts,
            "retries": report.retries,
            "gave_up": report.gave_up,
            "errors": report.errors,
        }));
    if let Some(spans) = &obs {
        manifest = manifest.stage_breakdown(&StageBreakdown::from_events(&spans.events()));
    }
    match manifest.write(&ldp_bench::output_dir(), "chaos_smoke") {
        Ok(path) => println!("[manifest: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write manifest: {e}"),
    }

    if violations.is_empty() {
        println!("chaos smoke: ok");
    } else {
        for v in &violations {
            eprintln!("chaos smoke FAILED: {v}");
        }
        std::process::exit(1);
    }
}
