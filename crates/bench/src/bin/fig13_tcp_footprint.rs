//! Figure 13 / §5.2.2: server memory and connection footprint over time
//! with all queries over TCP, for idle timeouts 5–40 s (plus the original
//! 3%-TCP trace at 20 s as the baseline).
//!
//! Three panels, reproduced as three sections: (a) memory consumption,
//! (b) established TCP connections, (c) TIME_WAIT sockets — each as a time
//! series plus its steady-state mean. Paper shapes: all three rise with
//! the timeout and plateau after ~5 minutes; at 20 s ≈15 GB, ≈60 k
//! established, ≈120 k TIME_WAIT (scaled by trace rate here); the original
//! trace stays near the 2 GB UDP baseline.

use ldp_bench::{emit, scale, traces, Report};
use ldp_trace::mutate;
use ldplayer::{SimExperiment, SimRunResult};
use serde_json::json;

fn run_case(all_tcp: bool, timeout: u64, scale: f64) -> (SimRunResult, f64) {
    let cfg = traces::b17a_like(scale);
    let mut trace = cfg.generate();
    if all_tcp {
        mutate::all_tcp(5).apply_all(&mut trace);
    }
    let result = SimExperiment::root_server(trace)
        .rtt_ms(1)
        .tcp_idle_timeout_s(timeout)
        .grace_s(1)
        .run();
    (result, cfg.duration_s)
}

fn main() {
    let scale = scale();
    let mut report = Report::new("Figure 13: TCP memory and connection footprint vs idle timeout");

    let timeouts = [5u64, 10, 15, 20, 25, 30, 35, 40];
    let mut cases: Vec<(String, SimRunResult, f64)> = Vec::new();
    for t in timeouts {
        let (r, dur) = run_case(true, t, scale);
        assert!(
            r.answer_rate() > 0.98,
            "timeout {t}: rate {}",
            r.answer_rate()
        );
        cases.push((format!("all-TCP {t}s"), r, dur));
    }
    {
        let (r, dur) = run_case(false, 20, scale);
        cases.push(("original (3% TCP) 20s".into(), r, dur));
    }

    // Panel summaries (steady state = last 60% of the run). The
    // `memory_gb_at_paper_rate` column extrapolates the connection-
    // attributable memory linearly to the paper's ~39 k q/s (connection
    // counts scale with rate when the client/rate ratio is held, which the
    // harness traces do); the 2 GB process baseline does not scale.
    let summary = report.section(
        format!("steady-state means (LDP_SCALE={scale})"),
        &[
            "case",
            "memory_gb",
            "memory_gb_at_paper_rate",
            "established",
            "time_wait",
            "idle_closed_total",
        ],
    );
    let base_gb = 2.0;
    for (label, r, dur) in &cases {
        let from = dur * 0.4;
        let mem = r.steady_state(from, |s| s.memory_gb).unwrap_or(0.0);
        let est = r
            .steady_state(from, |s| s.established as f64)
            .unwrap_or(0.0);
        let tw = r.steady_state(from, |s| s.time_wait as f64).unwrap_or(0.0);
        let rate = r.outcomes.len() as f64 / dur;
        let f = 39_000.0 / rate.max(1.0);
        let extrap = base_gb + (mem - base_gb).max(0.0) * f;
        println!(
            "{label:<24} mem {mem:6.2} GB ({extrap:5.1} GB at paper rate)  established {est:8.0}  TIME_WAIT {tw:8.0}"
        );
        summary.row(vec![
            json!(label),
            json!(mem),
            json!(extrap),
            json!(est),
            json!(tw),
            json!(r.final_tcp.idle_closed),
        ]);
    }

    // Time series per panel (downsampled for the JSON).
    for (panel, field) in [
        ("(a) memory_gb", 0usize),
        ("(b) established", 1),
        ("(c) time_wait", 2),
    ] {
        let section = report.section(panel, &["t_s", "case", "value"]);
        for (label, r, _) in &cases {
            let step = (r.samples.len() / 40).max(1);
            for s in r.samples.iter().step_by(step) {
                let v = match field {
                    0 => s.memory_gb,
                    1 => s.established as f64,
                    _ => s.time_wait as f64,
                };
                section.row(vec![json!(s.t.as_secs_f64()), json!(label), json!(v)]);
            }
        }
    }

    // The headline monotonicity check: memory rises with the timeout.
    let mems: Vec<f64> = cases[..timeouts.len()]
        .iter()
        .map(|(_, r, dur)| r.steady_state(dur * 0.4, |s| s.memory_gb).unwrap_or(0.0))
        .collect();
    let mostly_monotone = mems.windows(2).filter(|w| w[1] >= w[0]).count() >= mems.len() - 2;
    println!(
        "\nmemory vs timeout {:?} → {}",
        mems.iter()
            .map(|m| (m * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        if mostly_monotone {
            "rises with timeout (paper shape ✓)"
        } else {
            "NOT monotone (check scale)"
        }
    );
    emit(&report, "fig13_tcp_footprint");
}
