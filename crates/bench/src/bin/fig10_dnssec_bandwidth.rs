//! Figure 10 / §5.1: bandwidth of root responses under different DNSSEC
//! ZSK sizes and DO-bit shares.
//!
//! The six bar groups of the figure: ZSK ∈ {1024, 2048, 2048-rollover} ×
//! DO-share ∈ {72.3% (2016 reality), 100% (what-if)}. Each cell replays
//! the same B-Root-like trace (mutated to the target DO share) against a
//! root zone signed with the target key configuration and reports the
//! distribution of per-second response bandwidth.
//!
//! Paper shapes to check: 1024→2048 ≈ +32%; 72.3%→100% DO at 2048 ≈ +31%;
//! rollover adds another step.

use ldp_bench::{emit, scale, traces, Report};
use ldp_trace::{Mutation, QueryMutator};
use ldp_zone::dnssec::SigningConfig;
use ldplayer::SimExperiment;
use serde_json::json;

fn main() {
    let scale = scale();
    let mut report = Report::new("Figure 10: response bandwidth vs DNSSEC ZSK size and DO share");
    let section = report.section(
        format!("steady-state response bandwidth, Mb/s (LDP_SCALE={scale})"),
        &["zsk", "do_share", "p5", "q1", "median", "q3", "p95"],
    );

    let base_cfg = traces::b16_like(scale);
    // The six bar groups of the figure, plus the paper's stated
    // future-work point (§5.1): a 4096-bit ZSK at both DO shares.
    let cases = [
        ("1024", SigningConfig::zsk1024(), 0.723),
        ("2048", SigningConfig::zsk2048(), 0.723),
        ("2048-rollover", SigningConfig::zsk2048().rollover(), 0.723),
        ("4096 (future work)", SigningConfig::zsk4096(), 0.723),
        ("1024", SigningConfig::zsk1024(), 1.0),
        ("2048", SigningConfig::zsk2048(), 1.0),
        ("2048-rollover", SigningConfig::zsk2048().rollover(), 1.0),
        ("4096 (future work)", SigningConfig::zsk4096(), 1.0),
    ];

    let mut medians = Vec::new();
    for (zsk, signing, do_share) in cases {
        let mut trace = base_cfg.generate();
        // Strip the generator's own DO assignment, then set the target
        // share so both halves of the figure share one workload.
        QueryMutator::new(99)
            .push(Mutation::ClearDoBit)
            .push(Mutation::SetDoBit { fraction: do_share })
            .apply_all(&mut trace);

        let result = SimExperiment::signed_root(trace, signing).rtt_ms(1).run();
        assert!(
            result.answer_rate() > 0.99,
            "answer rate {}",
            result.answer_rate()
        );
        let warmup = base_cfg.duration_s * 0.2;
        let s = result
            .response_bandwidth_summary(warmup)
            .expect("bandwidth samples");
        println!(
            "ZSK {zsk:<14} DO {:>5.1}%: median {:7.2} Mb/s (q1 {:6.2}, q3 {:6.2})",
            do_share * 100.0,
            s.median,
            s.q1,
            s.q3
        );
        medians.push(((zsk.to_string(), do_share), s.median));
        section.row(vec![
            json!(zsk),
            json!(do_share),
            json!(s.p5),
            json!(s.q1),
            json!(s.median),
            json!(s.q3),
            json!(s.p95),
        ]);
    }

    // Headline ratios (§5.1's +32% and +31%).
    let get = |zsk: &str, do_share: f64| {
        medians
            .iter()
            .find(|((z, d), _)| z == zsk && *d == do_share)
            .map(|(_, m)| *m)
            .unwrap_or(f64::NAN)
    };
    let key_growth = get("2048", 0.723) / get("1024", 0.723) - 1.0;
    let do_growth = get("2048", 1.0) / get("2048", 0.723) - 1.0;
    let ratios = report.section("headline ratios", &["comparison", "growth"]);
    ratios.row(vec![
        json!("ZSK 1024 → 2048 at 72.3% DO (paper: +32%)"),
        json!(key_growth),
    ]);
    ratios.row(vec![
        json!("DO 72.3% → 100% at ZSK 2048 (paper: +31%)"),
        json!(do_growth),
    ]);
    println!(
        "\nZSK 1024→2048: {:+.1}% (paper +32%)   DO 72.3%→100%: {:+.1}% (paper +31%)",
        key_growth * 100.0,
        do_growth * 100.0
    );
    emit(&report, "fig10_dnssec_bandwidth");
}
